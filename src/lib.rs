//! Workspace-level umbrella crate for the DIBS reproduction.
//!
//! This crate exists to host the repository's runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`). The actual
//! functionality lives in the member crates; the most useful entry point for
//! downstream users is the [`dibs`] crate.

pub use dibs;
pub use dibs_engine;
pub use dibs_net;
pub use dibs_stats;
pub use dibs_switch;
pub use dibs_transport;
pub use dibs_workload;
