//! Determinism regression: the same scenario with the same seed must
//! produce byte-identical results, run to run. The digest
//! ([`dibs::RunDigest`]) covers the full counter block, per-flow
//! completion times, per-query completion, and the detour-depth
//! histogram — if any event is scheduled differently, something in here
//! moves.

use dibs::{RunDigest, SimConfig, Simulation};
use dibs_engine::time::SimTime;
use dibs_harness::Executor;
use dibs_net::builders::{fat_tree, FatTreeParams};
use dibs_net::ids::HostId;
use dibs_net::topology::Topology;
use dibs_switch::DibsPolicy;
use dibs_workload::{FlowClass, FlowSpec};

fn small_fat_tree() -> Topology {
    fat_tree(FatTreeParams {
        k: 4,
        ..FatTreeParams::paper_default()
    })
}

/// Run the reference scenario once and fold everything observable into
/// a single digest string.
fn run_digest(seed: u64, policy: DibsPolicy) -> String {
    let topo = small_fat_tree();
    let hosts = topo.num_hosts();
    let mut cfg = SimConfig::dctcp_dibs().with_policy(policy).with_seed(seed);
    cfg.horizon = SimTime::from_secs(3);
    let mut sim = Simulation::new(topo, cfg);
    // A mildly congested mix: an incast onto host 0 plus background
    // cross-traffic, all with deterministic parameters.
    for i in 1..hosts {
        sim.add_flows([FlowSpec {
            start: SimTime::from_micros(7 * i as u64),
            src: HostId::from_index(i),
            dst: HostId::from_index(0),
            size: 60_000,
            class: FlowClass::Background,
        }]);
    }
    for i in 0..hosts / 2 {
        sim.add_flows([FlowSpec {
            start: SimTime::from_micros(100 + 13 * i as u64),
            src: HostId::from_index(i),
            dst: HostId::from_index(hosts - 1 - i),
            size: 250_000,
            class: FlowClass::Background,
        }]);
    }
    let r = sim.run();
    RunDigest::of(&r).as_str().to_string()
}

#[test]
fn same_seed_same_bytes() {
    let configs = [
        (1u64, DibsPolicy::Random),
        (42, DibsPolicy::Random),
        (42, DibsPolicy::Disabled),
        (7, DibsPolicy::LoadAware),
    ];
    // Both passes run through the executor — so this also guards against
    // the thread pool leaking scheduling state into results.
    let run_pass =
        || Executor::from_env().map(configs.to_vec(), |(seed, policy)| run_digest(seed, policy));
    let first = run_pass();
    let second = run_pass();
    for (i, (seed, policy)) in configs.iter().enumerate() {
        assert_eq!(
            first[i], second[i],
            "run-to-run divergence for seed {seed} policy {policy:?}"
        );
        // The scenario actually exercises the network: packets flowed
        // and (for the congested incast) DIBS or drops did something.
        assert!(
            first[i].contains("packets_delivered"),
            "digest shape: {}",
            first[i]
        );
    }
}

/// Different seeds must not trivially collide — guards against the
/// digest accidentally ignoring the interesting state.
#[test]
fn different_seed_different_schedule() {
    let a = run_digest(1, DibsPolicy::Random);
    let b = run_digest(2, DibsPolicy::Random);
    // Counters can in principle tie, but the full digest includes every
    // flow completion time; a collision would mean the seed is unused.
    assert_ne!(a, b, "seed does not influence the schedule");
}
