//! Cross-crate integration tests pinning the paper's *quantitative claims*
//! (at small, debug-friendly scale). These are the "shape" checks: who
//! wins, roughly by how much, and where the collateral damage lands.

use dibs::presets::{mixed_workload_sim, MixedWorkload};
use dibs::{RunResults, SimConfig};
use dibs_engine::time::SimDuration;
use dibs_harness::Executor;
use dibs_net::builders::FatTreeParams;

/// Run the same workload under several configs through the sweep executor
/// (one job per config when cores allow), returning results in input order.
fn run_all(wl: MixedWorkload, cfgs: Vec<SimConfig>) -> Vec<RunResults> {
    Executor::from_env().map(cfgs, |cfg| mixed_workload_sim(k8(), cfg, wl).run())
}

fn small_mixed(qps: f64) -> MixedWorkload {
    MixedWorkload {
        qps,
        duration: SimDuration::from_millis(120),
        drain: SimDuration::from_millis(400),
        ..MixedWorkload::paper_default()
    }
}

fn k8() -> FatTreeParams {
    FatTreeParams::paper_default()
}

/// §1/abstract: DIBS reduces the 99th percentile of query completion time
/// substantially (the paper reports up to 85% under heavy congestion).
#[test]
#[ignore = "tier-2 (>10 s): run via scripts/check.sh --full or --include-ignored"]
fn dibs_reduces_tail_qct() {
    let wl = small_mixed(1000.0);
    let mut runs = run_all(
        wl,
        vec![SimConfig::dctcp_baseline(), SimConfig::dctcp_dibs()],
    );
    let mut dibs = runs.pop().unwrap();
    let mut base = runs.pop().unwrap();
    let qb = base.qct_p99_ms().unwrap();
    let qd = dibs.qct_p99_ms().unwrap();
    assert!(
        qd < 0.7 * qb,
        "DIBS p99 QCT {qd:.1} ms should be well under DCTCP's {qb:.1} ms"
    );
    assert_eq!(dibs.counters.total_drops(), 0, "DIBS is near-lossless here");
    assert!(base.counters.total_drops() > 0);
}

/// §5.4.1: on average DIBS detours under 20 % of packets, over 90 % of
/// detoured packets belong to query traffic, and ~1 % of background
/// packets get detoured.
#[test]
#[ignore = "tier-2 (>10 s): run via scripts/check.sh --full or --include-ignored"]
fn collateral_damage_is_limited() {
    let wl = small_mixed(1000.0);
    let dibs = mixed_workload_sim(k8(), SimConfig::dctcp_dibs(), wl).run();
    let frac = dibs.counters.detoured_fraction();
    assert!(
        frac < 0.20,
        "detoured fraction {frac:.3} should stay below 20%"
    );
    let query_share = dibs.counters.detoured_query_share();
    assert!(
        query_share > 0.90,
        "query share of detours {query_share:.3} should exceed 90%"
    );
    let bg_frac = dibs.counters.bg_detoured_fraction();
    assert!(
        bg_frac < 0.05,
        "background detour rate {bg_frac:.4} should be tiny"
    );
}

/// §5.4.1: background-flow tail FCT rises by no more than a few
/// milliseconds under DIBS.
#[test]
#[ignore = "tier-2 (>10 s): run via scripts/check.sh --full or --include-ignored"]
fn background_fct_damage_is_bounded() {
    let wl = small_mixed(300.0);
    let mut runs = run_all(
        wl,
        vec![SimConfig::dctcp_baseline(), SimConfig::dctcp_dibs()],
    );
    let mut dibs = runs.pop().unwrap();
    let mut base = runs.pop().unwrap();
    let fb = base.bg_fct_p99_ms().unwrap();
    let fd = dibs.bg_fct_p99_ms().unwrap();
    assert!(
        fd - fb < 4.0,
        "BG FCT p99 rose from {fb:.2} to {fd:.2} ms — more than the paper's ~2 ms"
    );
}

/// §5.4.4 (burstiness): for the same total response volume, a high incast
/// degree is harder than large responses — and hurts DCTCP more than DIBS.
#[test]
#[ignore = "tier-2 (>10 s): run via scripts/check.sh --full or --include-ignored"]
fn high_degree_is_burstier_than_large_responses() {
    // 2 MB per query either way: 100 x 20 KB vs 40 x 50 KB. The first-RTT
    // burst is 1 MB vs 400 KB, so the many-senders variant hits the
    // destination port far harder. 600 qps over a 150 ms window gives
    // enough queries for a stable 90th percentile at test scale (the full
    // Fig 10/11 sweeps in dibs-bench report the 99th).
    let mk = |degree: usize, resp: u64| MixedWorkload {
        incast_degree: degree,
        response_bytes: resp,
        qps: 600.0,
        duration: SimDuration::from_millis(150),
        drain: SimDuration::from_millis(400),
        ..MixedWorkload::paper_default()
    };
    // Three independent runs: fan them out through the executor.
    let arms = vec![
        (SimConfig::dctcp_baseline(), mk(100, 20_000)),
        (SimConfig::dctcp_baseline(), mk(40, 50_000)),
        (SimConfig::dctcp_dibs(), mk(100, 20_000)),
    ];
    let mut runs =
        Executor::from_env().map(arms, |(cfg, wl)| mixed_workload_sim(k8(), cfg, wl).run());
    let dibs_many = runs.pop().unwrap();
    let mut base_big = runs.pop().unwrap();
    let mut base_many = runs.pop().unwrap();
    let bm = base_many.qct_ms.percentile(0.90).unwrap();
    let bb = base_big.qct_ms.percentile(0.90).unwrap();
    assert!(
        bm > bb,
        "DCTCP: degree-100 ({bm:.1} ms) should be worse than 50 KB responses ({bb:.1} ms)"
    );
    // And DIBS absorbs almost all of even the burstier variant: at this
    // intensity (600 qps of 1 MB first-RTT bursts) overlapping bursts can
    // momentarily exhaust every eligible buffer, so require a >100x drop
    // reduction rather than strictly zero.
    assert!(
        dibs_many.counters.total_drops() * 100 < base_many.counters.total_drops(),
        "DIBS drops {} vs DCTCP drops {}",
        dibs_many.counters.total_drops(),
        base_many.counters.total_drops()
    );
}

/// §5.4.2 at high query rates: without DIBS, background flows lose packets
/// to query bursts; with DIBS they do not.
#[test]
#[ignore = "tier-2 (>10 s): run via scripts/check.sh --full or --include-ignored"]
fn dibs_protects_background_at_high_qps() {
    let wl = small_mixed(2000.0);
    let mut runs = run_all(
        wl,
        vec![SimConfig::dctcp_baseline(), SimConfig::dctcp_dibs()],
    );
    let mut dibs = runs.pop().unwrap();
    let mut base = runs.pop().unwrap();
    assert!(base.counters.total_drops() > 0);
    assert_eq!(dibs.counters.total_drops(), 0);
    let fb = base.bg_fct_p99_ms().unwrap();
    let fd = dibs.bg_fct_p99_ms().unwrap();
    assert!(
        fd <= fb + 1.0,
        "at 2000 qps DIBS should not be worse for background: {fd:.2} vs {fb:.2} ms"
    );
}

/// Every query eventually completes in both configurations at moderate
/// load, and DIBS never leaves a flow hanging.
#[test]
#[ignore = "tier-2 (>10 s): run via scripts/check.sh --full or --include-ignored"]
fn all_queries_complete_at_moderate_load() {
    let wl = small_mixed(500.0);
    for r in run_all(
        wl,
        vec![SimConfig::dctcp_baseline(), SimConfig::dctcp_dibs()],
    ) {
        assert!(
            r.query_completion_rate() > 0.99,
            "completion rate {}",
            r.query_completion_rate()
        );
    }
}
