//! Property-based cross-crate tests: random small topologies and traffic
//! must satisfy the simulator's global invariants.

use dibs::{SimConfig, Simulation};
use dibs_engine::rng::SimRng;
use dibs_engine::time::SimTime;
use dibs_net::builders::{
    dumbbell, fat_tree, jellyfish, single_switch, FatTreeParams, JellyfishParams,
};
use dibs_net::ids::HostId;
use dibs_net::topology::{LinkSpec, Topology};
use dibs_switch::DibsPolicy;
use dibs_workload::{FlowClass, FlowSpec};
use proptest::prelude::*;

/// A small random topology drawn from the generator family.
fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (4usize..10).prop_map(|n| single_switch(n, LinkSpec::gbit(1))),
        Just(fat_tree(FatTreeParams {
            k: 4,
            ..FatTreeParams::paper_default()
        })),
        (2usize..5, 2usize..5).prop_map(|(l, r)| dumbbell(
            l,
            r,
            LinkSpec::gbit(1),
            LinkSpec::gbit(5)
        )),
        (0u64..1000).prop_map(|seed| {
            let mut rng = SimRng::new(seed);
            jellyfish(
                JellyfishParams {
                    switches: 8,
                    degree: 3,
                    hosts_per_switch: 2,
                    host_link: LinkSpec::gbit(1),
                    fabric_link: LinkSpec::gbit(1),
                },
                &mut rng,
            )
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation: every completed flow delivered exactly its size; no
    /// flow over-delivers; and with DIBS enabled on these mild workloads
    /// drops stay at zero while flows all complete.
    #[test]
    fn flows_conserve_bytes(
        topo in arb_topology(),
        seed in 0u64..10_000,
        n_flows in 1usize..12,
        size in 1u64..200_000,
    ) {
        let hosts = topo.num_hosts();
        prop_assume!(hosts >= 2);
        let mut cfg = SimConfig::dctcp_dibs().with_seed(seed);
        cfg.horizon = SimTime::from_secs(4);
        let mut sim = Simulation::new(topo, cfg);
        let mut rng = SimRng::new(seed);
        for _ in 0..n_flows {
            let src = rng.below(hosts);
            let mut dst = rng.below(hosts - 1);
            if dst >= src {
                dst += 1;
            }
            sim.add_flows([FlowSpec {
                start: SimTime::from_micros(rng.range_u64(0, 3000)),
                src: HostId::from_index(src),
                dst: HostId::from_index(dst),
                size,
                class: FlowClass::Background,
            }]);
        }
        let results = sim.run();
        for f in &results.flows {
            prop_assert!(f.bytes_delivered <= f.size, "over-delivery");
            prop_assert!(f.fct.is_some(), "flow did not complete");
            prop_assert_eq!(f.bytes_delivered, f.size);
        }
        // Histogram mass equals delivered packet count.
        let hist: u64 = results.detour_histogram.iter().sum();
        prop_assert_eq!(hist, results.counters.packets_delivered);
    }

    /// Determinism across policies: running twice with the same seed gives
    /// identical event counts and counters, for every detour policy.
    #[test]
    fn determinism_for_every_policy(
        seed in 0u64..1000,
        policy_idx in 0usize..4,
    ) {
        let policy = [
            DibsPolicy::Disabled,
            DibsPolicy::Random,
            DibsPolicy::LoadAware,
            DibsPolicy::FlowBased,
        ][policy_idx];
        let run = || {
            let topo = single_switch(6, LinkSpec::gbit(1));
            let mut cfg = SimConfig::dctcp_dibs().with_policy(policy).with_seed(seed);
            cfg.horizon = SimTime::from_secs(2);
            let mut sim = Simulation::new(topo, cfg);
            for i in 1..6u32 {
                sim.add_flows([FlowSpec {
                    start: SimTime::ZERO,
                    src: HostId(i),
                    dst: HostId(0),
                    size: 150_000,
                    class: FlowClass::Background,
                }]);
            }
            let r = sim.run();
            (r.events_dispatched, r.counters)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
    }

    /// Packet-level sanity under congestion: sent >= delivered, and the
    /// difference is fully explained by drops plus packets still in flight
    /// at the horizon (zero here, since flows complete).
    #[test]
    fn packet_accounting_balances(seed in 0u64..1000) {
        let topo = single_switch(8, LinkSpec::gbit(1));
        let mut cfg = SimConfig::dctcp_baseline().with_seed(seed);
        cfg.horizon = SimTime::from_secs(4);
        let mut sim = Simulation::new(topo, cfg);
        for i in 1..8u32 {
            sim.add_flows([FlowSpec {
                start: SimTime::ZERO,
                src: HostId(i),
                dst: HostId(0),
                size: 100_000,
                class: FlowClass::Background,
            }]);
        }
        let r = sim.run();
        prop_assert!(r.flows.iter().all(|f| f.fct.is_some()));
        prop_assert_eq!(
            r.counters.packets_sent,
            r.counters.packets_delivered + r.counters.total_drops(),
            "sent = delivered + dropped once the network drains"
        );
    }
}
