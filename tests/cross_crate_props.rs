//! Property-based cross-crate tests: random small topologies and traffic
//! must satisfy the simulator's global invariants. Driven by the
//! deterministic harness in `dibs_engine::testkit`.

use dibs::{SimConfig, Simulation};
use dibs_engine::rng::SimRng;
use dibs_engine::testkit::cases_n;
use dibs_engine::time::SimTime;
use dibs_net::builders::{
    dumbbell, fat_tree, jellyfish, single_switch, FatTreeParams, JellyfishParams,
};
use dibs_net::ids::HostId;
use dibs_net::topology::{LinkSpec, Topology};
use dibs_switch::DibsPolicy;
use dibs_workload::{FlowClass, FlowSpec};

/// A small random topology drawn from the generator family.
fn gen_topology(rng: &mut SimRng) -> Topology {
    match rng.below(4) {
        0 => single_switch(rng.below(6) + 4, LinkSpec::gbit(1)),
        1 => fat_tree(FatTreeParams {
            k: 4,
            ..FatTreeParams::paper_default()
        }),
        2 => dumbbell(
            rng.below(3) + 2,
            rng.below(3) + 2,
            LinkSpec::gbit(1),
            LinkSpec::gbit(5),
        ),
        _ => {
            let seed = rng.range_u64(0, 1000);
            let mut jelly_rng = SimRng::new(seed);
            jellyfish(
                JellyfishParams {
                    switches: 8,
                    degree: 3,
                    hosts_per_switch: 2,
                    host_link: LinkSpec::gbit(1),
                    fabric_link: LinkSpec::gbit(1),
                },
                &mut jelly_rng,
            )
        }
    }
}

/// Conservation: every completed flow delivered exactly its size; no
/// flow over-delivers; and with DIBS enabled on these mild workloads
/// drops stay at zero while flows all complete.
#[test]
fn flows_conserve_bytes() {
    cases_n("flows-conserve", 12, |rng, _| {
        let topo = gen_topology(rng);
        let seed = rng.range_u64(0, 10_000);
        let n_flows = rng.below(11) + 1;
        let size = rng.range_u64(1, 200_000);
        let hosts = topo.num_hosts();
        assert!(hosts >= 2, "generator produced a degenerate topology");
        let mut cfg = SimConfig::dctcp_dibs().with_seed(seed);
        cfg.horizon = SimTime::from_secs(4);
        let mut sim = Simulation::new(topo, cfg);
        let mut flow_rng = SimRng::new(seed);
        for _ in 0..n_flows {
            let src = flow_rng.below(hosts);
            let mut dst = flow_rng.below(hosts - 1);
            if dst >= src {
                dst += 1;
            }
            sim.add_flows([FlowSpec {
                start: SimTime::from_micros(flow_rng.range_u64(0, 3000)),
                src: HostId::from_index(src),
                dst: HostId::from_index(dst),
                size,
                class: FlowClass::Background,
            }]);
        }
        let results = sim.run();
        for f in &results.flows {
            assert!(f.bytes_delivered <= f.size, "over-delivery");
            assert!(f.fct.is_some(), "flow did not complete");
            assert_eq!(f.bytes_delivered, f.size);
        }
        // Histogram mass equals delivered packet count.
        let hist: u64 = results.detour_histogram.iter().sum();
        assert_eq!(hist, results.counters.packets_delivered);
    });
}

/// Determinism across policies: running twice with the same seed gives
/// identical event counts and counters, for every detour policy.
#[test]
fn determinism_for_every_policy() {
    cases_n("determinism-policies", 8, |rng, i| {
        let seed = rng.range_u64(0, 1000);
        let policy = [
            DibsPolicy::Disabled,
            DibsPolicy::Random,
            DibsPolicy::LoadAware,
            DibsPolicy::FlowBased,
        ][i % 4];
        let run = || {
            let topo = single_switch(6, LinkSpec::gbit(1));
            let mut cfg = SimConfig::dctcp_dibs().with_policy(policy).with_seed(seed);
            cfg.horizon = SimTime::from_secs(2);
            let mut sim = Simulation::new(topo, cfg);
            for i in 1..6u32 {
                sim.add_flows([FlowSpec {
                    start: SimTime::ZERO,
                    src: HostId(i),
                    dst: HostId(0),
                    size: 150_000,
                    class: FlowClass::Background,
                }]);
            }
            let r = sim.run();
            (r.events_dispatched, r.counters)
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0, "policy {policy:?} seed {seed}");
        assert_eq!(a.1, b.1, "policy {policy:?} seed {seed}");
    });
}

/// Packet-level sanity under congestion: sent >= delivered, and the
/// difference is fully explained by drops plus packets still in flight
/// at the horizon (zero here, since flows complete).
#[test]
fn packet_accounting_balances() {
    cases_n("packet-accounting", 8, |rng, _| {
        let seed = rng.range_u64(0, 1000);
        let topo = single_switch(8, LinkSpec::gbit(1));
        let mut cfg = SimConfig::dctcp_baseline().with_seed(seed);
        cfg.horizon = SimTime::from_secs(4);
        let mut sim = Simulation::new(topo, cfg);
        for i in 1..8u32 {
            sim.add_flows([FlowSpec {
                start: SimTime::ZERO,
                src: HostId(i),
                dst: HostId(0),
                size: 100_000,
                class: FlowClass::Background,
            }]);
        }
        let r = sim.run();
        assert!(r.flows.iter().all(|f| f.fct.is_some()));
        assert_eq!(
            r.counters.packets_sent,
            r.counters.packets_delivered + r.counters.total_drops(),
            "sent = delivered + dropped once the network drains"
        );
    });
}
