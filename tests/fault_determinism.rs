//! Fault injection must not cost any determinism: the same seed and fault
//! spec give byte-identical [`RunDigest`]s at every `--jobs` value, with
//! tracing on or off, and a zero-probability drop profile is completely
//! unobservable in the digest.

use dibs::presets::testbed_incast_sim;
use dibs::{FaultSpec, RunDescriptor, RunDigest, SimConfig, TraceSpec, Tracer};
use dibs_harness::Executor;

const MASTER_SEED: u64 = 0xD1B5_2014;

/// A schedule touching every fault mechanism: a recovering link flap, a
/// late switch crash, both probabilistic profiles, and a random budget.
const SPEC: &str = "link-down:t=2ms:edge0-aggr1:dur=500us;\
                    switch-crash:t=4ms:aggr0;\
                    drop:p=1e-3:kind=detoured;corrupt:p=5e-4;\
                    random:2";

fn sweep() -> Vec<RunDescriptor> {
    (0..6)
        .map(|r| RunDescriptor::new("fault_contract_incast", "dibs", 5, r))
        .collect()
}

fn run_one(desc: &RunDescriptor, spec: &str, traced: bool) -> String {
    let cfg = SimConfig::dctcp_dibs().with_seed(desc.seed(MASTER_SEED));
    let mut sim = testbed_incast_sim(cfg, 5, 4, 32_000);
    if traced {
        sim.set_tracer(Tracer::from_spec(&TraceSpec::parse("all").expect("valid")));
    }
    let spec: FaultSpec = spec.parse().expect("valid spec");
    sim.set_faults(&spec)
        .expect("spec resolves on mini testbed");
    let results = sim.run();
    format!("## {}\n{}", desc.label(), RunDigest::of(&results).as_str())
}

fn merged_at(jobs: usize, traced: bool) -> String {
    Executor::new(jobs)
        .map(sweep(), |desc| run_one(&desc, SPEC, traced))
        .concat()
}

#[test]
fn faulted_sweep_is_identical_at_jobs_1_2_8() {
    let at1 = merged_at(1, false);
    let at2 = merged_at(2, false);
    let at8 = merged_at(8, false);
    assert!(at1.contains("drops_fault"), "faults never fired:\n{at1}");
    assert_eq!(at1, at2, "--jobs 2 diverged under fault injection");
    assert_eq!(at1, at8, "--jobs 8 diverged under fault injection");
}

#[test]
fn tracing_does_not_perturb_faulted_digests() {
    assert_eq!(
        merged_at(4, false),
        merged_at(4, true),
        "installing a tracer changed a faulted run's digest"
    );
}

#[test]
fn faults_actually_change_behavior() {
    let desc = &sweep()[0];
    assert_ne!(
        run_one(desc, SPEC, false),
        run_one(desc, "off", false),
        "the fault schedule was a no-op"
    );
}

#[test]
fn zero_probability_profiles_are_digest_neutral() {
    // `chance(0)` consumes no randomness, so a p=0 profile must be
    // byte-for-byte invisible — the cheap proof that the fault RNG lives
    // on an isolated stream.
    let desc = &sweep()[1];
    assert_eq!(
        run_one(desc, "drop:p=0;corrupt:p=0:kind=data", false),
        run_one(desc, "off", false),
        "a zero-probability profile perturbed the digest"
    );
}

#[test]
fn reexecution_reproduces_the_digest() {
    let first = merged_at(8, false);
    let again = merged_at(8, false);
    assert_eq!(first, again, "same process, same sweep, different bytes");
}
