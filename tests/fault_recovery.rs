//! Recovery behavior under injected faults on the §5.2 mini testbed:
//! routing reconverges around link flaps, TCP rides out a full edge
//! outage, and DIBS's detouring delivers more of an incast than plain
//! drop-tail while an uplink is dark.

use dibs::presets::testbed_incast_sim;
use dibs::{FaultSpec, RunDescriptor, SimConfig, Simulation};
use dibs_engine::time::SimTime;
use dibs_net::builders::mini_testbed;
use dibs_net::ids::HostId;
use dibs_net::topology::LinkSpec;
use dibs_workload::{FlowClass, FlowSpec};

const MASTER_SEED: u64 = 0xD1B5_2014;

fn flow(src: usize, dst: usize, size: u64) -> FlowSpec {
    FlowSpec {
        start: SimTime::ZERO,
        src: HostId::from_index(src),
        dst: HostId::from_index(dst),
        size,
        class: FlowClass::Background,
    }
}

fn testbed_sim(config: SimConfig, fault: &str) -> Simulation {
    let mut config = config;
    config.horizon = SimTime::from_millis(200);
    let mut sim = Simulation::new(mini_testbed(LinkSpec::gbit(1)), config);
    let spec: FaultSpec = fault.parse().expect("valid fault spec");
    sim.set_faults(&spec)
        .expect("spec resolves on mini testbed");
    sim
}

#[test]
fn fib_reconverges_around_a_single_uplink_flap() {
    // edge0 keeps its aggr1 uplink while edge0-aggr0 is down, so
    // cross-edge traffic must keep flowing in both directions — if the
    // FIB were not recomputed, packets would keep chasing the dead link.
    let mut sim = testbed_sim(
        SimConfig::dctcp_dibs().with_seed(1),
        "link-down:t=500us:edge0-aggr0:dur=2ms",
    );
    // Hosts 0..1 sit on edge0, 2..3 on edge1, 4..5 on edge2.
    sim.add_flows([flow(0, 4, 64_000), flow(5, 1, 64_000), flow(1, 2, 64_000)]);
    let results = sim.run();
    for f in &results.flows {
        assert!(
            f.fct.is_some(),
            "flow {:?}->{:?} never completed across the flap",
            f.src,
            f.dst
        );
    }
}

#[test]
fn flows_ride_out_a_full_edge_isolation() {
    // Both of edge0's uplinks go dark for 3 ms: hosts 0-1 are unreachable
    // from the rest of the testbed. TCP must retransmit through the
    // outage and still finish once the links return.
    let outage_end = SimTime::from_millis(4);
    let mut sim = testbed_sim(
        SimConfig::dctcp_dibs().with_seed(2),
        "link-down:t=1ms:edge0-aggr0:dur=3ms;link-down:t=1ms:edge0-aggr1:dur=3ms",
    );
    sim.add_flows([flow(0, 2, 256_000)]);
    let results = sim.run();
    let f = &results.flows[0];
    let fct = f.fct.expect("flow must finish after the links recover");
    assert!(
        f.start + fct > outage_end,
        "a 256 KB flow cannot have finished before the outage ended"
    );
    assert_eq!(f.bytes_delivered, 256_000, "bytes lost across recovery");
}

#[test]
fn dibs_delivers_more_than_drop_tail_during_an_uplink_outage() {
    // The §5.2 incast with one aggregation uplink dark through the burst.
    // Drop-tail queues toward the dead port overflow and shed packets;
    // DIBS detours those packets to the surviving aggregation switch
    // instead. Paired seeds, summed over replicates so one lucky draw
    // cannot decide the comparison.
    let fault = "link-down:t=0ns:edge2-aggr0:dur=10ms";
    let mut dibs_delivered = 0u64;
    let mut baseline_delivered = 0u64;
    let mut dibs_drops = 0u64;
    let mut baseline_drops = 0u64;
    for replicate in 0..4u64 {
        let seed = RunDescriptor::new("fault_recovery_incast", "paired", 0, replicate)
            .paired_seed(MASTER_SEED);
        for dibs_on in [true, false] {
            let cfg = if dibs_on {
                SimConfig::dctcp_dibs()
            } else {
                SimConfig::dctcp_baseline()
            }
            .with_seed(seed);
            let mut sim = testbed_incast_sim(cfg, 5, 8, 32_000);
            sim.set_faults(&fault.parse::<FaultSpec>().expect("valid"))
                .expect("resolves");
            let results = sim.run();
            if dibs_on {
                dibs_delivered += results.counters.packets_delivered;
                dibs_drops += results.counters.total_drops();
            } else {
                baseline_delivered += results.counters.packets_delivered;
                baseline_drops += results.counters.total_drops();
            }
        }
    }
    assert!(
        dibs_delivered >= baseline_delivered,
        "DIBS delivered {dibs_delivered} < drop-tail {baseline_delivered} during the outage"
    );
    assert!(
        dibs_drops < baseline_drops,
        "DIBS dropped {dibs_drops}, not fewer than drop-tail's {baseline_drops}"
    );
}
