//! Golden-digest regression tests for the figure pipeline.
//!
//! One small-scale point per figure family, with the expected digest
//! fingerprint pinned in the test. A silent behavior change anywhere in
//! the switch/transport/engine stack — an extra event, a different detour
//! choice, a shifted timestamp — moves the fingerprint and fails loudly.
//!
//! If a change is *intentional* (you changed simulation semantics on
//! purpose), rerun with `--nocapture`, copy the printed fingerprint into
//! the constant, and say so in the commit message. These pins are the
//! reason a refactor can claim "no behavior change" with a straight face.

use dibs::presets::{single_incast_sim, testbed_incast_sim};
use dibs::{FaultSpec, RunDescriptor, RunDigest, SimConfig};
use dibs_net::builders::FatTreeParams;
use dibs_switch::BufferConfig;

fn with_faults(mut sim: dibs::Simulation, spec: &str) -> dibs::Simulation {
    sim.set_faults(&spec.parse::<FaultSpec>().expect("valid fault spec"))
        .expect("fault spec resolves");
    sim
}

/// Master seed shared by all golden runs; mirrors the bench default.
const MASTER_SEED: u64 = 0xD1B5_2014;

fn k4() -> FatTreeParams {
    FatTreeParams {
        k: 4,
        ..FatTreeParams::paper_default()
    }
}

fn check(family: &str, digest: &RunDigest, expected: u64) {
    let got = digest.fingerprint();
    assert_eq!(
        got,
        expected,
        "{family}: digest fingerprint changed — got {got:#018x}, pinned {expected:#018x}.\n\
         If this behavior change is intentional, update the pin.\n\
         Digest:\n{}",
        digest.as_str()
    );
}

/// Fig 6 family: the §5.2 testbed incast under DIBS.
#[test]
fn golden_testbed_incast() {
    let d = RunDescriptor::new("golden_testbed_incast", "dibs", 5, 0);
    let cfg = SimConfig::dctcp_dibs().with_seed(d.seed(MASTER_SEED));
    let results = testbed_incast_sim(cfg, 5, 4, 32_000).run();
    assert_eq!(results.counters.total_drops(), 0, "DIBS incast is lossless");
    check(
        "testbed_incast",
        &RunDigest::of(&results),
        GOLDEN_TESTBED_INCAST,
    );
}

/// Fig 7/12 family: one small-buffer sweep point (25-packet buffers).
#[test]
fn golden_buffer_sweep_point() {
    let d = RunDescriptor::new("golden_buffer_sweep", "dibs", 25, 0);
    let mut cfg = SimConfig::dctcp_dibs().with_seed(d.seed(MASTER_SEED));
    cfg.switch.buffer = BufferConfig::StaticPerPort { packets: 25 };
    cfg.switch.ecn_threshold = Some(20);
    let results = single_incast_sim(k4(), cfg, 8, 20_000).run();
    check(
        "buffer_sweep",
        &RunDigest::of(&results),
        GOLDEN_BUFFER_SWEEP,
    );
}

/// Fig 13 family: one TTL sweep point (TTL 12 — ~3 backward detours).
#[test]
fn golden_ttl_sweep_point() {
    let d = RunDescriptor::new("golden_ttl_sweep", "dibs", 12, 0);
    let mut cfg = SimConfig::dctcp_dibs().with_seed(d.seed(MASTER_SEED));
    cfg.tcp.initial_ttl = 12;
    let results = single_incast_sim(k4(), cfg, 8, 20_000).run();
    check("ttl_sweep", &RunDigest::of(&results), GOLDEN_TTL_SWEEP);
}

/// Fault family: the testbed incast riding out a mid-burst uplink flap.
#[test]
fn golden_incast_link_flap() {
    let d = RunDescriptor::new("golden_incast_link_flap", "dibs", 5, 0);
    let cfg = SimConfig::dctcp_dibs().with_seed(d.seed(MASTER_SEED));
    let sim = with_faults(
        testbed_incast_sim(cfg, 5, 4, 32_000),
        "link-down:t=1ms:edge2-aggr0:dur=2ms",
    );
    check(
        "incast_link_flap",
        &RunDigest::of(&sim.run()),
        GOLDEN_INCAST_LINK_FLAP,
    );
}

/// Fault family: small buffers under pressure, then an aggregation switch
/// crashes mid-run (buffered packets freed, routes recomputed).
#[test]
fn golden_buffer_pressure_switch_crash() {
    let d = RunDescriptor::new("golden_buffer_crash", "dibs", 25, 0);
    let mut cfg = SimConfig::dctcp_dibs().with_seed(d.seed(MASTER_SEED));
    cfg.switch.buffer = BufferConfig::StaticPerPort { packets: 25 };
    cfg.switch.ecn_threshold = Some(20);
    let sim = with_faults(
        single_incast_sim(k4(), cfg, 8, 20_000),
        "switch-crash:t=2ms:aggr[0][0]",
    );
    let results = sim.run();
    check(
        "buffer_pressure_switch_crash",
        &RunDigest::of(&results),
        GOLDEN_BUFFER_CRASH,
    );
}

/// Fault family: the probabilistic soak profile — random flaps plus a
/// light detour-targeted drop rate.
#[test]
fn golden_random_drop_soak() {
    let d = RunDescriptor::new("golden_random_drop_soak", "dibs", 8, 0);
    let cfg = SimConfig::dctcp_dibs().with_seed(d.seed(MASTER_SEED));
    let sim = with_faults(
        single_incast_sim(k4(), cfg, 8, 20_000),
        "drop:p=1e-3;random:4",
    );
    check(
        "random_drop_soak",
        &RunDigest::of(&sim.run()),
        GOLDEN_RANDOM_SOAK,
    );
}

// The pinned fingerprints. These change ONLY when simulation semantics
// change; the parallel executor, jobs count, and merge order must never
// move them.
//
// Re-pinned when the digest text gained the `drops_fault` counter and the
// `in_flight` line: the runs themselves are unchanged (all three still
// show zero fault drops and zero in-flight packets), only the digest's
// rendered text moved.
const GOLDEN_TESTBED_INCAST: u64 = 0xdf96_3f56_11fe_1ffb;
const GOLDEN_BUFFER_SWEEP: u64 = 0x00ca_e3df_8442_959d;
const GOLDEN_TTL_SWEEP: u64 = 0x177c_befd_1697_2573;

// Fault-scenario pins: a deliberate fault-injection change moves these
// three without touching the fault-free pins above.
const GOLDEN_INCAST_LINK_FLAP: u64 = 0xa3d8_aa6e_ad6b_91a1;
const GOLDEN_BUFFER_CRASH: u64 = 0x6a59_908d_0bba_c125;
const GOLDEN_RANDOM_SOAK: u64 = 0x6ba2_5988_d5f8_fa69;
