//! Golden-digest regression tests for the figure pipeline.
//!
//! One small-scale point per figure family, with the expected digest
//! fingerprint pinned in the test. A silent behavior change anywhere in
//! the switch/transport/engine stack — an extra event, a different detour
//! choice, a shifted timestamp — moves the fingerprint and fails loudly.
//!
//! If a change is *intentional* (you changed simulation semantics on
//! purpose), rerun with `--nocapture`, copy the printed fingerprint into
//! the constant, and say so in the commit message. These pins are the
//! reason a refactor can claim "no behavior change" with a straight face.

use dibs::presets::{single_incast_sim, testbed_incast_sim};
use dibs::{RunDescriptor, RunDigest, SimConfig};
use dibs_net::builders::FatTreeParams;
use dibs_switch::BufferConfig;

/// Master seed shared by all golden runs; mirrors the bench default.
const MASTER_SEED: u64 = 0xD1B5_2014;

fn k4() -> FatTreeParams {
    FatTreeParams {
        k: 4,
        ..FatTreeParams::paper_default()
    }
}

fn check(family: &str, digest: &RunDigest, expected: u64) {
    let got = digest.fingerprint();
    assert_eq!(
        got,
        expected,
        "{family}: digest fingerprint changed — got {got:#018x}, pinned {expected:#018x}.\n\
         If this behavior change is intentional, update the pin.\n\
         Digest:\n{}",
        digest.as_str()
    );
}

/// Fig 6 family: the §5.2 testbed incast under DIBS.
#[test]
fn golden_testbed_incast() {
    let d = RunDescriptor::new("golden_testbed_incast", "dibs", 5, 0);
    let cfg = SimConfig::dctcp_dibs().with_seed(d.seed(MASTER_SEED));
    let results = testbed_incast_sim(cfg, 5, 4, 32_000).run();
    assert_eq!(results.counters.total_drops(), 0, "DIBS incast is lossless");
    check(
        "testbed_incast",
        &RunDigest::of(&results),
        GOLDEN_TESTBED_INCAST,
    );
}

/// Fig 7/12 family: one small-buffer sweep point (25-packet buffers).
#[test]
fn golden_buffer_sweep_point() {
    let d = RunDescriptor::new("golden_buffer_sweep", "dibs", 25, 0);
    let mut cfg = SimConfig::dctcp_dibs().with_seed(d.seed(MASTER_SEED));
    cfg.switch.buffer = BufferConfig::StaticPerPort { packets: 25 };
    cfg.switch.ecn_threshold = Some(20);
    let results = single_incast_sim(k4(), cfg, 8, 20_000).run();
    check(
        "buffer_sweep",
        &RunDigest::of(&results),
        GOLDEN_BUFFER_SWEEP,
    );
}

/// Fig 13 family: one TTL sweep point (TTL 12 — ~3 backward detours).
#[test]
fn golden_ttl_sweep_point() {
    let d = RunDescriptor::new("golden_ttl_sweep", "dibs", 12, 0);
    let mut cfg = SimConfig::dctcp_dibs().with_seed(d.seed(MASTER_SEED));
    cfg.tcp.initial_ttl = 12;
    let results = single_incast_sim(k4(), cfg, 8, 20_000).run();
    check("ttl_sweep", &RunDigest::of(&results), GOLDEN_TTL_SWEEP);
}

// The pinned fingerprints. These change ONLY when simulation semantics
// change; the parallel executor, jobs count, and merge order must never
// move them.
const GOLDEN_TESTBED_INCAST: u64 = 0xd3da_11b4_69d7_8c65;
const GOLDEN_BUFFER_SWEEP: u64 = 0x999f_d885_16eb_253a;
const GOLDEN_TTL_SWEEP: u64 = 0xd7b3_05d9_6f8a_1961;
