//! Tracing must be provably non-perturbing: a traced run and an untraced
//! run of the same scenario produce byte-identical digests, at any
//! executor width. This is the contract that lets `--trace` be used on
//! real experiments without invalidating their numbers.
//!
//! Each golden scenario from `golden_digests.rs` is run four ways —
//! {untraced, fully traced} x {--jobs 1, --jobs 8} — and every digest
//! string must match the untraced single-threaded reference exactly.

use dibs::presets::{single_incast_sim, testbed_incast_sim};
use dibs::{RunDescriptor, RunDigest, SimConfig, Simulation, TraceSpec, Tracer};
use dibs_harness::Executor;
use dibs_net::builders::FatTreeParams;
use dibs_switch::BufferConfig;

/// Master seed shared by all golden runs; mirrors the bench default.
const MASTER_SEED: u64 = 0xD1B5_2014;

const SCENARIOS: usize = 3;

fn k4() -> FatTreeParams {
    FatTreeParams {
        k: 4,
        ..FatTreeParams::paper_default()
    }
}

/// Builds golden scenario `idx` (fresh simulation each call).
fn build(idx: usize) -> Simulation {
    match idx {
        0 => {
            let d = RunDescriptor::new("golden_testbed_incast", "dibs", 5, 0);
            let cfg = SimConfig::dctcp_dibs().with_seed(d.seed(MASTER_SEED));
            testbed_incast_sim(cfg, 5, 4, 32_000)
        }
        1 => {
            let d = RunDescriptor::new("golden_buffer_sweep", "dibs", 25, 0);
            let mut cfg = SimConfig::dctcp_dibs().with_seed(d.seed(MASTER_SEED));
            cfg.switch.buffer = BufferConfig::StaticPerPort { packets: 25 };
            cfg.switch.ecn_threshold = Some(20);
            single_incast_sim(k4(), cfg, 8, 20_000)
        }
        2 => {
            let d = RunDescriptor::new("golden_ttl_sweep", "dibs", 12, 0);
            let mut cfg = SimConfig::dctcp_dibs().with_seed(d.seed(MASTER_SEED));
            cfg.tcp.initial_ttl = 12;
            single_incast_sim(k4(), cfg, 8, 20_000)
        }
        other => unreachable!("no golden scenario {other}"),
    }
}

#[test]
fn traced_runs_digest_identically_at_any_jobs_width() {
    // (scenario, traced?) pairs; "all" exercises every emission site plus
    // the flight recorder's sibling code paths through the Full tracer.
    let spec: TraceSpec = "all".parse().expect("valid spec");
    let mut pairs: Vec<(usize, bool)> = Vec::new();
    for idx in 0..SCENARIOS {
        pairs.push((idx, false));
        pairs.push((idx, true));
    }

    let mut reference: Vec<Option<String>> = vec![None; SCENARIOS];
    for jobs in [1, 8] {
        let outcomes = Executor::new(jobs).map(pairs.clone(), move |(idx, traced)| {
            let mut sim = build(idx);
            if traced {
                sim.set_tracer(Tracer::from_spec(&spec));
            }
            let results = sim.run();
            let digest = RunDigest::of(&results).as_str().to_string();
            (idx, traced, digest, results.trace.is_some())
        });
        for (idx, traced, digest, has_trace) in outcomes {
            assert_eq!(
                traced, has_trace,
                "scenario {idx}: trace report presence must track the tracer"
            );
            match &reference[idx] {
                None => reference[idx] = Some(digest),
                Some(expected) => assert_eq!(
                    expected, &digest,
                    "scenario {idx} (traced={traced}, jobs={jobs}): digest \
                     diverged from the untraced --jobs 1 reference — tracing \
                     perturbed the simulation"
                ),
            }
        }
    }
}

/// The flight recorder (bounded ring, a different record path than the
/// unbounded Full buffer) must be equally invisible.
#[test]
fn flight_recorder_is_non_perturbing() {
    let reference = RunDigest::of(&build(1).run()).fingerprint();
    let spec: TraceSpec = "flight:64:enqueue,detour,drop".parse().expect("valid spec");
    let mut sim = build(1);
    sim.set_tracer(Tracer::from_spec(&spec));
    let results = sim.run();
    assert_eq!(
        RunDigest::of(&results).fingerprint(),
        reference,
        "flight recorder perturbed the run"
    );
    let report = results.trace.expect("flight recorder attached");
    assert!(
        report.events.len() <= 64,
        "ring kept {} events, cap is 64",
        report.events.len()
    );
    assert!(
        report.dropped > 0,
        "a 64-slot ring on a full incast must overwrite"
    );
}
