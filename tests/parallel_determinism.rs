//! The contract test for the parallel sweep executor: one sweep, run at
//! `--jobs` 1, 2, and 8, must merge to **byte-identical** output.
//!
//! Each run's RNG stream is derived from its [`dibs::RunDescriptor`]
//! hashed against the sweep master seed — never from thread identity or
//! completion order — and results are merged in descriptor order, so the
//! worker count is unobservable in the output.

use dibs::presets::single_incast_sim;
use dibs::{RunDescriptor, RunDigest, SimConfig};
use dibs_harness::Executor;
use dibs_net::builders::FatTreeParams;

const MASTER_SEED: u64 = 0xD1B5_2014;

/// The sweep: (incast degree × scheme × replicate), 8 independent runs.
fn sweep() -> Vec<RunDescriptor> {
    let mut runs = Vec::new();
    for degree in [3u64, 5] {
        for variant in ["dctcp", "dibs"] {
            for replicate in [0u64, 1] {
                runs.push(RunDescriptor::new(
                    "parallel_contract_incast",
                    variant,
                    degree,
                    replicate,
                ));
            }
        }
    }
    runs
}

fn run_one(desc: &RunDescriptor) -> String {
    let cfg = match desc.variant.as_str() {
        "dctcp" => SimConfig::dctcp_baseline(),
        "dibs" => SimConfig::dctcp_dibs(),
        other => panic!("unknown variant {other}"),
    }
    .with_seed(desc.seed(MASTER_SEED));
    // K=4 fat-tree keeps each run well under 100 ms; the incast target and
    // responders are drawn from the run's seed, so every replicate sees
    // different traffic.
    let tree = FatTreeParams {
        k: 4,
        ..FatTreeParams::paper_default()
    };
    #[allow(clippy::cast_possible_truncation)]
    let degree = desc.point as usize;
    let results = single_incast_sim(tree, cfg, degree, 20_000).run();
    format!("## {}\n{}", desc.label(), RunDigest::of(&results).as_str())
}

/// The whole sweep merged into one transcript, in descriptor order.
fn merged_at(jobs: usize) -> String {
    Executor::new(jobs)
        .map(sweep(), |desc| run_one(&desc))
        .concat()
}

#[test]
fn jobs_1_2_8_merge_to_identical_bytes() {
    let at1 = merged_at(1);
    let at2 = merged_at(2);
    let at8 = merged_at(8);
    assert!(!at1.is_empty() && at1.contains("packets_delivered"));
    assert_eq!(at1, at2, "--jobs 2 diverged from the sequential sweep");
    assert_eq!(at1, at8, "--jobs 8 diverged from the sequential sweep");
}

#[test]
fn runs_in_a_sweep_are_actually_distinct() {
    // Guard against every run accidentally sharing one RNG stream: each
    // descriptor must produce its own digest.
    let digests = Executor::new(4).map(sweep(), |desc| run_one(&desc));
    for i in 0..digests.len() {
        for j in (i + 1)..digests.len() {
            assert_ne!(digests[i], digests[j], "runs {i} and {j} collided");
        }
    }
}
