//! End-to-end checks on the trace itself: a traced incast exports valid
//! Chrome-trace JSON, and the post-hoc query helpers can reconstruct a
//! detoured packet's full hop sequence from the event stream.

use dibs::presets::single_incast_sim;
use dibs::{RunDescriptor, SimConfig, TraceSpec, Tracer};
use dibs_net::builders::FatTreeParams;
use dibs_switch::BufferConfig;
use dibs_trace::{
    detour_loop_packets, flow_packets, is_chrome_trace, packet_hops, packet_lifecycle,
    per_flow_hops, TraceKind, TraceReport,
};

/// The golden buffer-sweep point: 25-packet buffers force heavy
/// detouring, so the trace is guaranteed to contain detoured packets.
fn traced_incast() -> TraceReport {
    let d = RunDescriptor::new("golden_buffer_sweep", "dibs", 25, 0);
    let mut cfg = SimConfig::dctcp_dibs().with_seed(d.seed(0xD1B5_2014));
    cfg.switch.buffer = BufferConfig::StaticPerPort { packets: 25 };
    cfg.switch.ecn_threshold = Some(20);
    let params = FatTreeParams {
        k: 4,
        ..FatTreeParams::paper_default()
    };
    let mut sim = single_incast_sim(params, cfg, 8, 20_000);
    let spec: TraceSpec = "all".parse().expect("valid spec");
    sim.set_tracer(Tracer::from_spec(&spec));
    sim.run().trace.expect("tracer was installed")
}

#[test]
fn traced_incast_exports_valid_chrome_json() {
    let report = traced_incast();
    assert!(
        !report.events.is_empty(),
        "full trace of an incast is never empty"
    );

    let json = report.chrome_trace();
    assert!(
        is_chrome_trace(&json),
        "exporter emitted a non-Chrome shape"
    );

    // Round-trip: the rendered text must re-parse as JSON and keep shape.
    let rendered = json.render_pretty();
    let reparsed = dibs_json::Json::parse(&rendered).expect("rendered Chrome JSON re-parses");
    assert!(is_chrome_trace(&reparsed));

    // The text dump and its fingerprint are deterministic over the report.
    assert_eq!(report.fingerprint(), report.fingerprint());
    assert!(report.text_dump().starts_with("trace mode"));
}

#[test]
fn packet_lifecycle_reconstructs_a_detoured_packet() {
    let report = traced_incast();
    let events = &report.events;

    // Find a detoured data packet that was eventually delivered.
    let detoured: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == TraceKind::Detour)
        .map(|e| e.packet)
        .collect();
    assert!(!detoured.is_empty(), "25-packet buffers must detour");
    let delivered = detoured
        .iter()
        .copied()
        .find(|&p| {
            let life = packet_lifecycle(events, p);
            life.first().is_some_and(|e| e.kind == TraceKind::Send)
                && life.last().is_some_and(|e| e.kind == TraceKind::Deliver)
        })
        .expect("some detoured packet was sent and delivered");

    let life = packet_lifecycle(events, delivered);
    assert!(life.iter().any(|e| e.kind == TraceKind::Detour));
    assert!(
        life.windows(2).all(|w| w[0].t_ns <= w[1].t_ns),
        "lifecycle must be time-ordered"
    );

    // The hop list covers every switch the packet visited, in order, and
    // marks which hops were detours.
    let hops = packet_hops(events, delivered);
    assert!(hops.len() >= 2, "a detoured packet crosses several queues");
    assert!(hops.iter().any(|h| h.detour), "detour hop must be marked");
    assert!(hops.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));

    // Flow-level views agree with the packet-level ones.
    let flow = life[0].flow;
    let pkts = flow_packets(events, flow);
    assert!(pkts.contains(&delivered));
    let by_pkt = per_flow_hops(events, flow);
    assert_eq!(by_pkt.get(&delivered), Some(&hops));

    // Loop detection only ever reports packets that actually detoured.
    let loopers = detour_loop_packets(events);
    assert!(loopers.iter().all(|p| detoured.contains(p)));
}
