//! The tree must stay clean under `dibs-lint`: any finding that is not
//! explicitly allowlisted in `lint.toml` fails this test, which makes
//! the static-analysis pass part of `cargo test` rather than a separate
//! ritual.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = dibs_lint::scan_workspace(root).expect("scan succeeds");
    assert!(
        findings.is_empty(),
        "dibs-lint found {} problem(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn allowlist_has_no_stale_entries() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let toml = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml readable");
    let allows = dibs_lint::parse_allowlist(&toml).expect("lint.toml parses");

    // Re-scan without the allowlist by collecting raw findings: scan the
    // workspace and add back what the allowlist would have removed. The
    // library applies `lint.toml` internally, so compare against a scan
    // where every allow entry must have matched at least one raw finding.
    let filtered = dibs_lint::scan_workspace(root).expect("scan succeeds");
    // With a clean tree, every raw finding was removed by some allow
    // entry. Reconstruct raw findings per allow by checking that each
    // entry's (rule, path) pair still points at real code patterns.
    assert!(filtered.is_empty(), "tree not clean; fix that first");
    for a in &allows {
        let path = root.join(&a.path);
        assert!(
            path.exists(),
            "stale allowlist entry: {} no longer exists (rule {})",
            a.path,
            a.rule
        );
    }
}
