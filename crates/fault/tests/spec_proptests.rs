//! Property tests for the fault-spec grammar, driven by `SimRng` so every
//! run exercises the same pseudo-random population of specs.
//!
//! Three families:
//!
//! * parse → format → parse is a fixed point for generated valid specs;
//! * overlapping link-down windows are rejected no matter how the
//!   endpoints are spelled or ordered;
//! * `random:<budget>` expansion is a pure function of `(spec, topology,
//!   rng seed)`.

use dibs_engine::rng::SimRng;
use dibs_engine::time::{SimDuration, SimTime};
use dibs_fault::{FaultClause, FaultError, FaultSpec};
use dibs_net::builders::{fat_tree, mini_testbed, FatTreeParams};
use dibs_net::topology::{LinkSpec, Topology};

const CASES: usize = 400;

fn testbed() -> Topology {
    mini_testbed(LinkSpec::gbit(5))
}

/// Node-name pairs that are real links in the mini testbed, in both the
/// builders' bracketed spelling and the flattened one.
const LINK_PAIRS: &[(&str, &str)] = &[
    ("edge[0]", "aggr[0]"),
    ("edge0", "aggr1"),
    ("edge[1]", "aggr0"),
    ("edge2", "aggr[1]"),
];

const SWITCHES: &[&str] = &["edge[0]", "edge1", "edge2", "aggr[0]", "aggr1"];

/// One random valid spec: non-overlapping link-down windows per pair,
/// distinct crash targets, at most one drop/corrupt per kind, at most one
/// `random:` clause.
fn gen_spec(rng: &mut SimRng) -> FaultSpec {
    let mut clauses = Vec::new();

    // Sequential windows on one link pair never overlap by construction.
    let (a, b) = *rng.pick(LINK_PAIRS);
    let mut cursor = 0u64;
    for _ in 0..rng.below(3) {
        cursor += 1 + rng.range_u64(0, 2_000_000);
        let at = SimTime::from_nanos(cursor);
        let dur = if rng.chance(0.75) {
            let d = 1 + rng.range_u64(0, 800_000);
            cursor += d;
            Some(SimDuration::from_nanos(d))
        } else {
            None
        };
        let forever = dur.is_none();
        clauses.push(FaultClause::LinkDown {
            at,
            a: a.to_string(),
            b: b.to_string(),
            dur,
        });
        if forever {
            break; // anything after an unrecovered outage would overlap
        }
    }

    if rng.chance(0.4) {
        clauses.push(FaultClause::SwitchCrash {
            at: SimTime::from_micros(1 + rng.range_u64(0, 20_000)),
            node: rng.pick(SWITCHES).to_string(),
        });
    }
    if rng.chance(0.5) {
        clauses.push(FaultClause::Drop {
            p: rng.uniform(),
            kind: *rng.pick(&[
                dibs_fault::DropKind::Any,
                dibs_fault::DropKind::Detoured,
                dibs_fault::DropKind::Data,
                dibs_fault::DropKind::Ack,
            ]),
        });
    }
    if rng.chance(0.35) {
        clauses.push(FaultClause::Corrupt {
            p: rng.uniform(),
            kind: *rng.pick(&[dibs_fault::DropKind::Any, dibs_fault::DropKind::Data]),
        });
    }
    if rng.chance(0.5) {
        clauses.push(FaultClause::Random {
            budget: 1 + u32::try_from(rng.below(6)).expect("small budget"),
        });
    }
    FaultSpec { clauses }
}

#[test]
fn parse_format_parse_is_a_fixed_point() {
    let mut rng = SimRng::new(0xFA17_5EED);
    let mut nonempty = 0;
    for case in 0..CASES {
        let spec = gen_spec(&mut rng);
        spec.validate()
            .unwrap_or_else(|e| panic!("case {case}: generator made invalid spec: {e}"));
        if !spec.is_off() {
            nonempty += 1;
        }

        let text = spec.to_string();
        let reparsed: FaultSpec = text
            .parse()
            .unwrap_or_else(|e| panic!("case {case}: `{text}` does not re-parse: {e}"));
        assert_eq!(reparsed, spec, "case {case}: parse(format(spec)) != spec");
        assert_eq!(
            reparsed.to_string(),
            text,
            "case {case}: format is not a fixed point"
        );
    }
    assert!(nonempty > CASES / 2, "generator is degenerate");
}

#[test]
fn every_generated_spec_resolves_against_the_testbed() {
    let topo = testbed();
    let horizon = SimTime::from_millis(30);
    let mut rng = SimRng::new(0x0DD5_0FF5);
    for case in 0..CASES {
        let spec = gen_spec(&mut rng);
        let mut plan_rng = SimRng::new(case as u64).fork("fault/plan");
        spec.resolve(&topo, horizon, &mut plan_rng)
            .unwrap_or_else(|e| panic!("case {case}: `{spec}` failed to resolve: {e}"));
    }
}

#[test]
fn overlapping_windows_are_rejected_in_any_spelling() {
    let mut rng = SimRng::new(0x0E71_AB00);
    let spellings = [
        ("edge0", "aggr1"),
        ("edge[0]", "aggr[1]"),
        ("aggr1", "edge0"),
    ];
    for case in 0..CASES {
        // A window [start, start+dur) and a second window starting inside it.
        let start = rng.range_u64(0, 5_000_000);
        let dur = 1 + rng.range_u64(0, 2_000_000);
        let inside = start + rng.range_u64(0, dur);
        let first = *rng.pick(&spellings);
        let second = *rng.pick(&spellings);
        let spec = FaultSpec {
            clauses: vec![
                FaultClause::LinkDown {
                    at: SimTime::from_nanos(start),
                    a: first.0.to_string(),
                    b: first.1.to_string(),
                    dur: Some(SimDuration::from_nanos(dur)),
                },
                FaultClause::LinkDown {
                    at: SimTime::from_nanos(inside),
                    a: second.0.to_string(),
                    b: second.1.to_string(),
                    // Open-ended or bounded: overlaps either way.
                    dur: rng
                        .chance(0.5)
                        .then(|| SimDuration::from_nanos(1 + rng.range_u64(0, 1_000_000))),
                },
            ],
        };
        match spec.validate() {
            Err(FaultError::Invalid(msg)) => {
                assert!(
                    msg.contains("overlapping"),
                    "case {case}: wrong error: {msg}"
                );
            }
            other => panic!("case {case}: overlap accepted: {other:?}"),
        }
    }
}

#[test]
fn touching_windows_do_not_overlap() {
    // [t, t+d) then [t+d, ...) is legal: the windows are half-open.
    let spec: FaultSpec = "link-down:t=1ms:edge0-aggr0:dur=1ms;\
                           link-down:t=2ms:edge0-aggr0:dur=1ms"
        .parse()
        .expect("touching windows are valid");
    assert_eq!(spec.clauses.len(), 2);
}

#[test]
fn random_budget_expansion_is_seed_deterministic() {
    let topos = [
        testbed(),
        fat_tree(FatTreeParams {
            k: 4,
            host_link: LinkSpec::gbit(1),
            fabric_link: LinkSpec::gbit(1),
        }),
    ];
    let horizon = SimTime::from_millis(30);
    for topo in &topos {
        for budget in 1..=6u32 {
            let spec: FaultSpec = format!("random:{budget}").parse().expect("valid");
            for seed in 0..32u64 {
                let mut r1 = SimRng::new(seed).fork("fault/plan");
                let mut r2 = SimRng::new(seed).fork("fault/plan");
                let p1 = spec.resolve(topo, horizon, &mut r1).expect("resolves");
                let p2 = spec.resolve(topo, horizon, &mut r2).expect("resolves");
                assert_eq!(p1, p2, "seed {seed} budget {budget}: expansion diverged");
                assert!(
                    !p1.is_empty(),
                    "seed {seed} budget {budget}: random expanded to nothing"
                );
            }
        }
    }
}

#[test]
fn random_expansion_varies_across_seeds() {
    // Not a determinism requirement, but if every seed gave the same plan
    // the soak harness would explore nothing.
    let topo = testbed();
    let horizon = SimTime::from_millis(30);
    let spec: FaultSpec = "random:4".parse().expect("valid");
    let mut distinct = std::collections::BTreeSet::new();
    for seed in 0..32u64 {
        let mut rng = SimRng::new(seed).fork("fault/plan");
        let plan = spec.resolve(&topo, horizon, &mut rng).expect("resolves");
        distinct.insert(format!("{plan:?}"));
    }
    assert!(distinct.len() > 8, "only {} distinct plans", distinct.len());
}
