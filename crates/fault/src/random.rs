//! Expansion of `random:<budget>` clauses into concrete fault schedules.
//!
//! This module is the *sampler definition site* for randomized fault
//! schedules: the mixture weights and probability menus below are the one
//! place raw numeric probabilities are allowed to appear (see the
//! `raw-probability` lint allow in `lint.toml`). Everything downstream
//! draws through the caller's [`SimRng`], so a given seed always expands
//! to the same [`FaultPlan`].

use crate::{DropKind, DropProfile, FaultAction, FaultPlan, TimedFault};
use dibs_engine::rng::SimRng;
use dibs_engine::time::SimTime;
use dibs_net::ids::LinkId;
use dibs_net::topology::Topology;
use std::collections::BTreeMap;

/// The menu of background drop rates a random schedule picks from.
const DROP_RATE_MENU: [f64; 3] = [1e-3, 5e-4, 1e-4];

/// Expands one `random:<budget>` clause into `plan`.
///
/// Attempts `budget` link flaps on fabric (switch-to-switch) links: each
/// picks a link, a start inside the first 80% of the horizon, and a
/// bounded outage; attempts whose window would overlap an already-placed
/// window on the same link are skipped (deterministically), keeping the
/// expanded schedule valid by construction. A topology with no fabric
/// links (e.g. `single_switch`) degrades to a pure drop profile.
pub(crate) fn expand(
    budget: u32,
    topo: &Topology,
    horizon: SimTime,
    rng: &mut SimRng,
    plan: &mut FaultPlan,
) {
    let h = horizon.as_nanos().max(1_000);
    let fabric: Vec<LinkId> = topo
        .links()
        .iter()
        .enumerate()
        .filter(|(_, l)| !topo.is_host(l.a.node) && !topo.is_host(l.b.node))
        .map(|(i, _)| LinkId::from_index(i))
        .collect();
    if fabric.is_empty() {
        plan.drops.push(DropProfile {
            p: *rng.pick(&DROP_RATE_MENU),
            kind: DropKind::Any,
        });
        return;
    }
    let mut taken: BTreeMap<usize, Vec<(u64, u64)>> = BTreeMap::new();
    for _ in 0..budget {
        let link = *rng.pick(&fabric);
        let at = rng.range_u64(0, h.saturating_mul(4) / 5 + 1);
        let dur = rng.range_u64(h / 64 + 1, h / 8 + 2);
        let end = at.saturating_add(dur);
        let wins = taken.entry(link.index()).or_default();
        if wins.iter().any(|&(s, e)| at < e && s < end) {
            continue; // keep per-link windows disjoint; skip is seeded too
        }
        wins.push((at, end));
        plan.timed.push(TimedFault {
            at: SimTime::from_nanos(at),
            action: FaultAction::LinkDown(link),
        });
        plan.timed.push(TimedFault {
            at: SimTime::from_nanos(end),
            action: FaultAction::LinkUp(link),
        });
    }
    // Mixture weight: one schedule in four also carries a drop profile.
    if rng.chance(0.25) {
        plan.drops.push(DropProfile {
            p: *rng.pick(&DROP_RATE_MENU),
            kind: DropKind::Any,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibs_net::builders::single_switch;
    use dibs_net::topology::LinkSpec;

    #[test]
    fn no_fabric_links_degrades_to_drop_profile() {
        let topo = single_switch(4, LinkSpec::gbit(5));
        let mut plan = FaultPlan::default();
        expand(
            3,
            &topo,
            SimTime::from_millis(10),
            &mut SimRng::new(1),
            &mut plan,
        );
        assert!(plan.timed.is_empty());
        assert_eq!(plan.drops.len(), 1);
        assert!(DROP_RATE_MENU.contains(&plan.drops[0].p));
    }

    #[test]
    fn windows_never_overlap_per_link() {
        let topo = dibs_net::builders::mini_testbed(LinkSpec::gbit(5));
        for seed in 0..32 {
            let mut plan = FaultPlan::default();
            expand(
                8,
                &topo,
                SimTime::from_millis(20),
                &mut SimRng::new(seed),
                &mut plan,
            );
            // Reconstruct per-link windows from the down/up pairs.
            let mut downs: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
            let mut ups: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
            for tf in &plan.timed {
                match tf.action {
                    FaultAction::LinkDown(l) => {
                        downs.entry(l.index()).or_default().push(tf.at.as_nanos());
                    }
                    FaultAction::LinkUp(l) => {
                        ups.entry(l.index()).or_default().push(tf.at.as_nanos());
                    }
                    FaultAction::SwitchCrash(_) => panic!("no crashes from random"),
                }
            }
            for (link, mut starts) in downs {
                let mut ends = ups.remove(&link).expect("every down has an up");
                assert_eq!(starts.len(), ends.len());
                starts.sort_unstable();
                ends.sort_unstable();
                for i in 1..starts.len() {
                    assert!(ends[i - 1] <= starts[i], "windows overlap on link {link}");
                }
            }
        }
    }
}
