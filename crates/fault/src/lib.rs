//! Deterministic, schedule-driven fault injection.
//!
//! A [`FaultSpec`] is parsed from a small textual grammar and later
//! *resolved* against a concrete [`Topology`] into a [`FaultPlan`]: a
//! time-sorted list of link/switch state changes plus always-on
//! probabilistic drop/corrupt profiles. The core simulator consumes the
//! plan; this crate knows nothing about queues or packets.
//!
//! # Spec grammar
//!
//! Clauses are joined with `;` (whitespace around clauses is ignored):
//!
//! ```text
//! link-down:t=2ms:edge3-aggr1:dur=500us   take a link down (forever if no dur)
//! switch-crash:t=5ms:core0                permanently blackhole a switch
//! drop:p=1e-4:kind=detoured               probabilistic drop at routing time
//! corrupt:p=1e-5:kind=data                probabilistic corruption at dequeue
//! random:4                                seeded random schedule, budget 4
//! off                                     the empty spec
//! ```
//!
//! Times are an integer plus a unit (`ns`, `us`, `ms`, `s`); probabilities
//! are plain floats in `[0, 1]`. Node names accept both the builders'
//! bracketed form (`edge[1]`) and the flattened form (`edge1`).
//!
//! Everything is deterministic: `random:<budget>` expands through the
//! caller-supplied [`SimRng`], and [`Display`](std::fmt::Display) output
//! re-parses to an equal spec (a fixed point, exercised by the proptests).

use dibs_engine::rng::SimRng;
use dibs_engine::time::{SimDuration, SimTime};
use dibs_net::ids::{LinkId, NodeId};
use dibs_net::topology::Topology;
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

mod random;

/// Which packets a probabilistic [`DropProfile`] applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DropKind {
    /// Every packet.
    Any,
    /// Only packets that have taken at least one detour.
    Detoured,
    /// Only data packets.
    Data,
    /// Only acks (non-data packets).
    Ack,
}

impl DropKind {
    /// Whether a packet with the given properties is subject to this kind.
    pub fn applies(self, detoured: bool, is_data: bool) -> bool {
        match self {
            DropKind::Any => true,
            DropKind::Detoured => detoured,
            DropKind::Data => is_data,
            DropKind::Ack => !is_data,
        }
    }

    fn parse(s: &str) -> Result<DropKind, String> {
        match s {
            "any" => Ok(DropKind::Any),
            "detoured" => Ok(DropKind::Detoured),
            "data" => Ok(DropKind::Data),
            "ack" => Ok(DropKind::Ack),
            other => Err(format!("unknown kind `{other}` (any|detoured|data|ack)")),
        }
    }

    fn name(self) -> &'static str {
        match self {
            DropKind::Any => "any",
            DropKind::Detoured => "detoured",
            DropKind::Data => "data",
            DropKind::Ack => "ack",
        }
    }
}

/// One clause of a fault spec, still in terms of node *names*.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultClause {
    /// Take the `a`–`b` link down at `at`, back up after `dur` (forever
    /// when `dur` is `None`).
    LinkDown {
        /// When the link goes down.
        at: SimTime,
        /// One endpoint, by node name.
        a: String,
        /// The other endpoint, by node name.
        b: String,
        /// Outage length; `None` means the link never recovers.
        dur: Option<SimDuration>,
    },
    /// Permanently crash a switch at `at`: its buffered packets are freed
    /// and every packet addressed through it blackholes.
    SwitchCrash {
        /// When the switch dies.
        at: SimTime,
        /// The switch, by node name.
        node: String,
    },
    /// Drop matching packets with probability `p` at the routing step.
    Drop {
        /// Per-packet drop probability in `[0, 1]`.
        p: f64,
        /// Which packets the profile applies to.
        kind: DropKind,
    },
    /// Corrupt (and therefore discard) matching packets with probability
    /// `p` as they leave a switch queue.
    Corrupt {
        /// Per-packet corruption probability in `[0, 1]`.
        p: f64,
        /// Which packets the profile applies to.
        kind: DropKind,
    },
    /// A seeded random schedule: `budget` link flaps on fabric links,
    /// possibly plus a light drop profile, expanded deterministically from
    /// the [`SimRng`] handed to [`FaultSpec::resolve`].
    Random {
        /// How many random link flaps to attempt.
        budget: u32,
    },
}

/// A parsed fault specification: an ordered list of clauses.
///
/// Construct with [`str::parse`] (which validates) and turn back into the
/// grammar with [`Display`](std::fmt::Display). The empty spec prints as
/// `off`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    /// The clauses, in spec order.
    pub clauses: Vec<FaultClause>,
}

/// Errors from parsing, validating, or resolving a fault spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// A clause did not match the grammar.
    Parse {
        /// The offending clause text.
        clause: String,
        /// What was wrong with it.
        reason: String,
    },
    /// The spec parsed but is self-contradictory.
    Invalid(String),
    /// The spec names something the topology does not have.
    Resolve(String),
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::Parse { clause, reason } => {
                write!(f, "bad fault clause `{clause}`: {reason}")
            }
            FaultError::Invalid(m) => write!(f, "invalid fault spec: {m}"),
            FaultError::Resolve(m) => write!(f, "cannot resolve fault spec: {m}"),
        }
    }
}

impl std::error::Error for FaultError {}

/// A state change scheduled at a point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Disable a link in both directions.
    LinkDown(LinkId),
    /// Re-enable a previously disabled link.
    LinkUp(LinkId),
    /// Permanently crash a switch.
    SwitchCrash(NodeId),
}

/// A [`FaultAction`] with its firing time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedFault {
    /// When the action fires.
    pub at: SimTime,
    /// What happens.
    pub action: FaultAction,
}

/// An always-on probabilistic drop or corruption profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropProfile {
    /// Per-packet probability in `[0, 1]`.
    pub p: f64,
    /// Which packets the profile applies to.
    pub kind: DropKind,
}

/// A spec resolved against a concrete topology: everything the simulator
/// needs, with names bound to ids and `random:` clauses expanded.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Scheduled state changes, sorted by time (ties keep spec order).
    pub timed: Vec<TimedFault>,
    /// Drop profiles checked at the routing step, in spec order.
    pub drops: Vec<DropProfile>,
    /// Corruption profiles checked at dequeue, in spec order.
    pub corrupts: Vec<DropProfile>,
}

impl FaultPlan {
    /// Whether the plan does nothing at all.
    pub fn is_empty(&self) -> bool {
        self.timed.is_empty() && self.drops.is_empty() && self.corrupts.is_empty()
    }
}

impl FaultSpec {
    /// The empty spec: inject nothing.
    pub fn off() -> FaultSpec {
        FaultSpec::default()
    }

    /// Whether the spec injects nothing.
    pub fn is_off(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Parses and validates a spec. `off`, the empty string, and pure
    /// whitespace all give the empty spec.
    pub fn parse(s: &str) -> Result<FaultSpec, FaultError> {
        let spec = FaultSpec::parse_syntax(s)?;
        spec.validate()?;
        Ok(spec)
    }

    fn parse_syntax(s: &str) -> Result<FaultSpec, FaultError> {
        let trimmed = s.trim();
        if trimmed.is_empty() || trimmed == "off" {
            return Ok(FaultSpec::off());
        }
        let mut clauses = Vec::new();
        for raw in trimmed.split(';') {
            let clause = raw.trim();
            if clause.is_empty() {
                continue;
            }
            clauses.push(parse_clause(clause)?);
        }
        Ok(FaultSpec { clauses })
    }

    /// Checks the spec for internal contradictions: out-of-range
    /// probabilities, overlapping outage windows on one link, duplicate
    /// switch crashes, duplicate drop/corrupt profiles per kind, and more
    /// than one `random:` clause.
    pub fn validate(&self) -> Result<(), FaultError> {
        // Outage windows per normalized (order- and bracket-insensitive)
        // endpoint pair: [start, end) with `None` = never recovers.
        type Windows = BTreeMap<(String, String), Vec<(u64, Option<u64>)>>;
        let mut windows: Windows = BTreeMap::new();
        let mut crashes: Vec<String> = Vec::new();
        let mut drop_kinds: Vec<DropKind> = Vec::new();
        let mut corrupt_kinds: Vec<DropKind> = Vec::new();
        let mut randoms = 0u32;
        for clause in &self.clauses {
            match clause {
                FaultClause::LinkDown { at, a, b, dur } => {
                    let (sa, sb) = (strip_brackets(a), strip_brackets(b));
                    if sa == sb {
                        return Err(FaultError::Invalid(format!(
                            "link-down endpoints must differ, got `{a}-{b}`"
                        )));
                    }
                    let key = if sa <= sb { (sa, sb) } else { (sb, sa) };
                    let start = at.as_nanos();
                    let end = dur.map(|d| (*at + d).as_nanos());
                    let wins = windows.entry(key).or_default();
                    for &(s0, e0) in wins.iter() {
                        // Two half-open windows [s, e) overlap iff each
                        // starts before the other ends; `None` = never
                        // recovers = an infinite right edge.
                        let overlap = match (end, e0) {
                            (Some(e1), Some(e0)) => s0 < e1 && start < e0,
                            (Some(e1), None) => s0 < e1,
                            (None, Some(e0)) => start < e0,
                            (None, None) => true,
                        };
                        if overlap {
                            return Err(FaultError::Invalid(format!(
                                "overlapping link-down windows on `{a}-{b}`"
                            )));
                        }
                    }
                    wins.push((start, end));
                }
                FaultClause::SwitchCrash { node, .. } => {
                    let key = strip_brackets(node);
                    if crashes.contains(&key) {
                        return Err(FaultError::Invalid(format!(
                            "duplicate switch-crash for `{node}`"
                        )));
                    }
                    crashes.push(key);
                }
                FaultClause::Drop { p, kind } => {
                    check_probability(*p)?;
                    if drop_kinds.contains(kind) {
                        return Err(FaultError::Invalid(format!(
                            "duplicate drop clause for kind `{}`",
                            kind.name()
                        )));
                    }
                    drop_kinds.push(*kind);
                }
                FaultClause::Corrupt { p, kind } => {
                    check_probability(*p)?;
                    if corrupt_kinds.contains(kind) {
                        return Err(FaultError::Invalid(format!(
                            "duplicate corrupt clause for kind `{}`",
                            kind.name()
                        )));
                    }
                    corrupt_kinds.push(*kind);
                }
                FaultClause::Random { .. } => {
                    randoms += 1;
                    if randoms > 1 {
                        return Err(FaultError::Invalid(
                            "at most one random:<budget> clause".to_string(),
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Binds names to a concrete topology and expands `random:` clauses,
    /// producing the executable [`FaultPlan`].
    ///
    /// `horizon` bounds where random faults are placed; `rng` should be a
    /// dedicated fork so the expansion never perturbs other streams.
    /// Resolution is a pure function of `(spec, topology, rng seed)`.
    pub fn resolve(
        &self,
        topo: &Topology,
        horizon: SimTime,
        rng: &mut SimRng,
    ) -> Result<FaultPlan, FaultError> {
        let names = NameMap::build(topo);
        let mut plan = FaultPlan::default();
        for clause in &self.clauses {
            match clause {
                FaultClause::LinkDown { at, a, b, dur } => {
                    let na = names.lookup(a)?;
                    let nb = names.lookup(b)?;
                    let link = find_link(topo, na, nb).ok_or_else(|| {
                        FaultError::Resolve(format!("no link between `{a}` and `{b}`"))
                    })?;
                    plan.timed.push(TimedFault {
                        at: *at,
                        action: FaultAction::LinkDown(link),
                    });
                    if let Some(d) = dur {
                        plan.timed.push(TimedFault {
                            at: *at + *d,
                            action: FaultAction::LinkUp(link),
                        });
                    }
                }
                FaultClause::SwitchCrash { at, node } => {
                    let n = names.lookup(node)?;
                    if topo.is_host(n) {
                        return Err(FaultError::Resolve(format!(
                            "switch-crash target `{node}` is a host"
                        )));
                    }
                    plan.timed.push(TimedFault {
                        at: *at,
                        action: FaultAction::SwitchCrash(n),
                    });
                }
                FaultClause::Drop { p, kind } => {
                    plan.drops.push(DropProfile { p: *p, kind: *kind })
                }
                FaultClause::Corrupt { p, kind } => {
                    plan.corrupts.push(DropProfile { p: *p, kind: *kind });
                }
                FaultClause::Random { budget } => {
                    random::expand(*budget, topo, horizon, rng, &mut plan);
                }
            }
        }
        // Stable: simultaneous actions keep spec order (down before up for
        // a zero-length window, matching the grammar's reading).
        plan.timed.sort_by_key(|t| t.at);
        Ok(plan)
    }
}

impl FromStr for FaultSpec {
    type Err = FaultError;
    fn from_str(s: &str) -> Result<FaultSpec, FaultError> {
        FaultSpec::parse(s)
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "off");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, ";")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl fmt::Display for FaultClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultClause::LinkDown { at, a, b, dur } => {
                write!(f, "link-down:t=")?;
                fmt_ns(at.as_nanos(), f)?;
                write!(f, ":{a}-{b}")?;
                if let Some(d) = dur {
                    write!(f, ":dur=")?;
                    fmt_ns(d.as_nanos(), f)?;
                }
                Ok(())
            }
            FaultClause::SwitchCrash { at, node } => {
                write!(f, "switch-crash:t=")?;
                fmt_ns(at.as_nanos(), f)?;
                write!(f, ":{node}")
            }
            FaultClause::Drop { p, kind } => {
                write!(f, "drop:p={p}")?;
                if *kind != DropKind::Any {
                    write!(f, ":kind={}", kind.name())?;
                }
                Ok(())
            }
            FaultClause::Corrupt { p, kind } => {
                write!(f, "corrupt:p={p}")?;
                if *kind != DropKind::Any {
                    write!(f, ":kind={}", kind.name())?;
                }
                Ok(())
            }
            FaultClause::Random { budget } => write!(f, "random:{budget}"),
        }
    }
}

fn check_probability(p: f64) -> Result<(), FaultError> {
    if p.is_finite() && (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(FaultError::Invalid(format!(
            "probability {p} outside [0, 1]"
        )))
    }
}

/// Flattens the builders' bracketed names: `edge[1]` ⇒ `edge1`.
fn strip_brackets(name: &str) -> String {
    name.chars().filter(|&c| c != '[' && c != ']').collect()
}

struct NameMap {
    exact: BTreeMap<String, NodeId>,
    stripped: BTreeMap<String, NodeId>,
}

impl NameMap {
    fn build(topo: &Topology) -> NameMap {
        let mut exact = BTreeMap::new();
        let mut stripped = BTreeMap::new();
        for (i, node) in topo.nodes().iter().enumerate() {
            let id = NodeId::from_index(i);
            exact.insert(node.name.clone(), id);
            // First writer wins on collisions; exact names take priority
            // at lookup anyway.
            stripped.entry(strip_brackets(&node.name)).or_insert(id);
        }
        NameMap { exact, stripped }
    }

    fn lookup(&self, name: &str) -> Result<NodeId, FaultError> {
        self.exact
            .get(name)
            .or_else(|| self.stripped.get(&strip_brackets(name)))
            .copied()
            .ok_or_else(|| FaultError::Resolve(format!("no node named `{name}`")))
    }
}

/// The undirected link joining two nodes, if any (first match wins).
fn find_link(topo: &Topology, a: NodeId, b: NodeId) -> Option<LinkId> {
    topo.links().iter().enumerate().find_map(|(i, l)| {
        let (x, y) = (l.a.node, l.b.node);
        ((x == a && y == b) || (x == b && y == a)).then(|| LinkId::from_index(i))
    })
}

fn parse_clause(s: &str) -> Result<FaultClause, FaultError> {
    let fail = |reason: String| FaultError::Parse {
        clause: s.to_string(),
        reason,
    };
    let mut parts = s.split(':');
    let head = parts.next().unwrap_or("");
    let clause = match head {
        "link-down" => {
            let t = parse_ns(kv(parts.next(), "t").map_err(fail)?).map_err(fail)?;
            let ep = parts
                .next()
                .ok_or_else(|| fail("missing endpoints `a-b`".to_string()))?;
            let (a, b) = ep
                .split_once('-')
                .filter(|(a, b)| !a.is_empty() && !b.is_empty())
                .ok_or_else(|| fail(format!("endpoints `{ep}` must be `a-b`")))?;
            let dur = match parts.next() {
                None => None,
                Some(part) => Some(SimDuration::from_nanos(
                    parse_ns(kv(Some(part), "dur").map_err(fail)?).map_err(fail)?,
                )),
            };
            FaultClause::LinkDown {
                at: SimTime::from_nanos(t),
                a: a.to_string(),
                b: b.to_string(),
                dur,
            }
        }
        "switch-crash" => {
            let t = parse_ns(kv(parts.next(), "t").map_err(fail)?).map_err(fail)?;
            let node = parts
                .next()
                .filter(|n| !n.is_empty())
                .ok_or_else(|| fail("missing switch name".to_string()))?;
            FaultClause::SwitchCrash {
                at: SimTime::from_nanos(t),
                node: node.to_string(),
            }
        }
        "drop" | "corrupt" => {
            let p = parse_probability(kv(parts.next(), "p").map_err(fail)?).map_err(fail)?;
            let kind = match parts.next() {
                None => DropKind::Any,
                Some(part) => {
                    DropKind::parse(kv(Some(part), "kind").map_err(fail)?).map_err(fail)?
                }
            };
            if head == "drop" {
                FaultClause::Drop { p, kind }
            } else {
                FaultClause::Corrupt { p, kind }
            }
        }
        "random" => {
            let budget = parts
                .next()
                .ok_or_else(|| fail("missing budget".to_string()))?;
            let budget: u32 = budget
                .parse()
                .map_err(|_| fail(format!("bad budget `{budget}`")))?;
            FaultClause::Random { budget }
        }
        other => return Err(fail(format!("unknown fault kind `{other}`"))),
    };
    if let Some(extra) = parts.next() {
        return Err(fail(format!("unexpected trailing `:{extra}`")));
    }
    Ok(clause)
}

fn kv<'a>(part: Option<&'a str>, key: &str) -> Result<&'a str, String> {
    let part = part.ok_or_else(|| format!("missing `{key}=...`"))?;
    part.strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .filter(|v| !v.is_empty())
        .ok_or_else(|| format!("expected `{key}=...`, got `{part}`"))
}

/// Parses `<integer><unit>` into nanoseconds; units are `ns|us|ms|s`.
fn parse_ns(s: &str) -> Result<u64, String> {
    let (digits, mult) = if let Some(d) = s.strip_suffix("ns") {
        (d, 1)
    } else if let Some(d) = s.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        return Err(format!("time `{s}` needs a unit (ns|us|ms|s)"));
    };
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return Err(format!("time `{s}` must be a whole number plus unit"));
    }
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("time value `{s}` out of range"))?;
    n.checked_mul(mult)
        .ok_or_else(|| format!("time `{s}` overflows"))
}

/// Prints nanoseconds with the largest unit that divides them exactly, so
/// `parse_ns(fmt_ns(x)) == x` always (the round-trip fixed point).
fn fmt_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns == 0 {
        write!(f, "0ns")
    } else if ns.is_multiple_of(1_000_000_000) {
        write!(f, "{}s", ns / 1_000_000_000)
    } else if ns.is_multiple_of(1_000_000) {
        write!(f, "{}ms", ns / 1_000_000)
    } else if ns.is_multiple_of(1_000) {
        write!(f, "{}us", ns / 1_000)
    } else {
        write!(f, "{ns}ns")
    }
}

/// Parses a probability; `{}`-formatting an `f64` re-parses exactly
/// (shortest-round-trip printing), giving the Display fixed point.
fn parse_probability(s: &str) -> Result<f64, String> {
    let p: f64 = s.parse().map_err(|_| format!("bad probability `{s}`"))?;
    if p.is_finite() && (0.0..=1.0).contains(&p) {
        Ok(p)
    } else {
        Err(format!("probability `{s}` outside [0, 1]"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibs_net::builders::mini_testbed;
    use dibs_net::topology::LinkSpec;

    fn testbed() -> Topology {
        mini_testbed(LinkSpec::gbit(5))
    }

    #[test]
    fn parse_and_display_round_trip() {
        let cases = [
            "link-down:t=2ms:edge0-aggr1:dur=500us",
            "link-down:t=0ns:edge0-aggr1",
            "switch-crash:t=5ms:aggr0",
            "drop:p=0.0001:kind=detoured",
            "corrupt:p=0.5",
            "random:4",
            "drop:p=0.001;random:2;switch-crash:t=1s:edge2",
        ];
        for case in cases {
            let spec: FaultSpec = case.parse().unwrap();
            assert_eq!(spec.to_string(), case, "display is canonical");
            let again: FaultSpec = spec.to_string().parse().unwrap();
            assert_eq!(again, spec);
        }
    }

    #[test]
    fn off_and_empty_specs() {
        for s in ["off", "", "  ", ";"] {
            let spec: FaultSpec = s.parse().unwrap();
            assert!(spec.is_off(), "`{s}` should be off");
        }
        assert_eq!(FaultSpec::off().to_string(), "off");
    }

    #[test]
    fn syntax_errors_are_rejected() {
        for bad in [
            "link-down:t=2ms",
            "link-down:t=2:edge0-aggr1",
            "link-down:t=2ms:edge0aggr1",
            "link-down:t=2ms:edge0-aggr1:dur=500us:extra",
            "switch-crash:t=1ms",
            "drop:p=1.5",
            "drop:p=x",
            "drop:p=0.1:kind=bogus",
            "random:",
            "random:many",
            "frobnicate:t=1ms:x",
        ] {
            assert!(bad.parse::<FaultSpec>().is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn overlapping_windows_are_rejected() {
        // Same link, intersecting outages — including bracket/order aliases.
        for bad in [
            "link-down:t=1ms:edge0-aggr0:dur=2ms;link-down:t=2ms:edge0-aggr0:dur=2ms",
            "link-down:t=1ms:edge0-aggr0:dur=2ms;link-down:t=2ms:aggr0-edge0:dur=1ms",
            "link-down:t=1ms:edge[0]-aggr[0]:dur=2ms;link-down:t=2ms:edge0-aggr0:dur=2ms",
            "link-down:t=1ms:edge0-aggr0;link-down:t=5ms:edge0-aggr0:dur=1ms",
            "link-down:t=5ms:edge0-aggr0:dur=1ms;link-down:t=1ms:edge0-aggr0",
        ] {
            assert!(matches!(
                bad.parse::<FaultSpec>(),
                Err(FaultError::Invalid(_))
            ));
        }
        // Disjoint windows on the same link are fine.
        let ok = "link-down:t=1ms:edge0-aggr0:dur=1ms;link-down:t=3ms:edge0-aggr0:dur=1ms";
        assert!(ok.parse::<FaultSpec>().is_ok());
    }

    #[test]
    fn contradictory_clauses_are_rejected() {
        for bad in [
            "switch-crash:t=1ms:aggr0;switch-crash:t=2ms:aggr[0]",
            "drop:p=0.1;drop:p=0.2",
            "drop:p=0.1:kind=data;drop:p=0.2:kind=data",
            "corrupt:p=0.1:kind=ack;corrupt:p=0.2:kind=ack",
            "random:1;random:2",
            "link-down:t=1ms:edge0-edge[0]:dur=1ms",
        ] {
            assert!(matches!(
                bad.parse::<FaultSpec>(),
                Err(FaultError::Invalid(_))
            ));
        }
        // Different kinds may coexist.
        assert!("drop:p=0.1:kind=data;drop:p=0.2:kind=ack"
            .parse::<FaultSpec>()
            .is_ok());
    }

    #[test]
    fn resolve_binds_names_and_sorts() {
        let topo = testbed();
        let spec: FaultSpec =
            "switch-crash:t=3ms:aggr1;link-down:t=1ms:edge[0]-aggr[0]:dur=1ms;drop:p=0.25:kind=ack"
                .parse()
                .unwrap();
        let mut rng = SimRng::new(7);
        let plan = spec
            .resolve(&topo, SimTime::from_millis(10), &mut rng)
            .unwrap();
        assert_eq!(plan.timed.len(), 3);
        assert_eq!(plan.timed[0].at, SimTime::from_millis(1));
        assert!(matches!(plan.timed[0].action, FaultAction::LinkDown(_)));
        assert_eq!(plan.timed[1].at, SimTime::from_millis(2));
        assert!(matches!(plan.timed[1].action, FaultAction::LinkUp(_)));
        assert!(matches!(plan.timed[2].action, FaultAction::SwitchCrash(_)));
        assert_eq!(plan.drops.len(), 1);
        assert_eq!(plan.drops[0].kind, DropKind::Ack);
        assert!(plan.corrupts.is_empty());
    }

    #[test]
    fn resolve_rejects_unknown_names_and_host_crashes() {
        let topo = testbed();
        let mut rng = SimRng::new(7);
        let horizon = SimTime::from_millis(10);
        for bad in [
            "switch-crash:t=1ms:nosuch",
            "switch-crash:t=1ms:h00",      // hosts cannot crash
            "link-down:t=1ms:edge0-edge1", // no direct link
            "link-down:t=1ms:edge0-nosuch",
        ] {
            let spec: FaultSpec = bad.parse().unwrap();
            assert!(
                matches!(
                    spec.resolve(&topo, horizon, &mut rng),
                    Err(FaultError::Resolve(_))
                ),
                "`{bad}` should fail to resolve"
            );
        }
    }

    #[test]
    fn random_expansion_is_reproducible() {
        let topo = testbed();
        let spec: FaultSpec = "random:4".parse().unwrap();
        let horizon = SimTime::from_millis(50);
        let a = spec.resolve(&topo, horizon, &mut SimRng::new(42)).unwrap();
        let b = spec.resolve(&topo, horizon, &mut SimRng::new(42)).unwrap();
        assert_eq!(a, b);
        let c = spec.resolve(&topo, horizon, &mut SimRng::new(43)).unwrap();
        assert_ne!(a, c, "different seeds give different schedules");
        // Flaps land on fabric (switch-switch) links, inside the horizon.
        assert!(!a.timed.is_empty());
        for tf in &a.timed {
            match tf.action {
                FaultAction::LinkDown(l) | FaultAction::LinkUp(l) => {
                    let link = topo.links()[l.index()];
                    assert!(!topo.is_host(link.a.node));
                    assert!(!topo.is_host(link.b.node));
                }
                FaultAction::SwitchCrash(_) => panic!("random never crashes switches"),
            }
        }
    }

    #[test]
    fn drop_kind_applicability() {
        assert!(DropKind::Any.applies(false, true));
        assert!(DropKind::Any.applies(true, false));
        assert!(DropKind::Detoured.applies(true, true));
        assert!(!DropKind::Detoured.applies(false, true));
        assert!(DropKind::Data.applies(false, true));
        assert!(!DropKind::Data.applies(false, false));
        assert!(DropKind::Ack.applies(false, false));
        assert!(!DropKind::Ack.applies(false, true));
    }

    #[test]
    fn time_formats_pick_exact_units() {
        // Exercised through Display of clauses.
        let spec: FaultSpec = "switch-crash:t=1500us:aggr0".parse().unwrap();
        assert_eq!(spec.to_string(), "switch-crash:t=1500us:aggr0");
        let spec: FaultSpec = "switch-crash:t=2000us:aggr0".parse().unwrap();
        assert_eq!(spec.to_string(), "switch-crash:t=2ms:aggr0");
        let spec: FaultSpec = "switch-crash:t=0ns:aggr0".parse().unwrap();
        assert_eq!(spec.to_string(), "switch-crash:t=0ns:aggr0");
        let spec: FaultSpec = "switch-crash:t=999ns:aggr0".parse().unwrap();
        assert_eq!(spec.to_string(), "switch-crash:t=999ns:aggr0");
    }
}
