// Fixture: stdio printing in library code. Every macro line below must
// trip `println-in-lib`; a `writeln!` into a caller-supplied buffer (the
// sanctioned shape) must not.

pub fn report_totals(delivered: u64, dropped: u64) {
    println!("delivered {delivered}");
    eprintln!("dropped {dropped}");
    print!("delivered {delivered} ");
    eprint!("dropped {dropped} ");
}
