// Fixture: the `panic-hygiene` lint must fire on unwrap/expect in
// hot-path code.
fn route(table: &std::collections::BTreeMap<u32, u32>, dst: u32) -> u32 {
    *table.get(&dst).unwrap()
}
