// Fixture: the `wall-clock` lint must fire on host-time reads in
// simulation code.
fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
