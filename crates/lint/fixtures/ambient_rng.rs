// Fixture: the `ambient-rng` lint must fire on OS-seeded randomness.
fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
