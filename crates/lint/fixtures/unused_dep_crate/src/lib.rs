// This crate never references its declared dependency.
pub fn nothing() {}
