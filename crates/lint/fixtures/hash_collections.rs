// Fixture: the `hash-collections` lint must fire on hash-based
// collections in simulation code.
use std::collections::HashMap;

fn route_table() -> HashMap<u32, u32> {
    HashMap::new()
}
