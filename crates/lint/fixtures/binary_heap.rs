// Fixture: the `binary-heap` lint must fire on ad-hoc priority queues in
// simulation code; all scheduling goes through the engine's timing wheel.
use std::collections::BinaryHeap;

fn event_list() -> BinaryHeap<u64> {
    BinaryHeap::new()
}
