// Fixture: the `raw-probability` lint must fire on probability literals
// fed straight into chance decisions.
fn should_drop(rng: &mut SimRng) -> bool {
    rng.chance(1e-4)
}
fn should_corrupt(rng: &mut SimRng) -> bool {
    rng.uniform() < 0.01
}
