// Fixture: the `truncating-cast` lint must fire on narrowing `as`
// casts of counter-like values.
fn compress(byte_count: u64) -> u32 {
    byte_count as u32
}
