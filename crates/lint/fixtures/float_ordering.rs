// Fixture: the `float-ordering` lint must fire on float comparisons in
// event/time ordering code.
fn earlier(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
}
