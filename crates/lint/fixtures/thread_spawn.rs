// Fixture: the `thread-spawn` lint must fire on ad-hoc threads.
fn fan_out(work: Vec<u64>) -> Vec<u64> {
    let handle = std::thread::spawn(move || work.into_iter().map(|w| w * 2).collect());
    handle.join().unwrap_or_default()
}
