// Fixture: the `unchecked-sub` lint must fire on raw subtraction of
// accounting state.
struct Pool {
    buffered_bytes: u64,
}

impl Pool {
    fn release(&mut self, n: u64) {
        self.buffered_bytes -= n;
    }
}
