//! `dibs-lint`: simulation-safety static analysis for the DIBS workspace.
//!
//! A discrete-event network simulator lives or dies by three properties
//! that the Rust compiler does not check for us:
//!
//! 1. **Determinism** — the same scenario and seed must produce the same
//!    packet trace, byte for byte. Hash-based collections iterate in a
//!    randomized order, wall-clock reads smuggle host time into results,
//!    and ambient RNGs (`thread_rng`) are seeded from the OS. Any of
//!    these silently breaks replayability.
//! 2. **Accounting soundness** — counters of packets, bytes, and buffer
//!    occupancy are `u64`s that must never underflow or truncate. An
//!    unchecked `a - b` or a narrowing `as` cast turns an off-by-one
//!    into a 2^64 buffer occupancy instead of a panic.
//! 3. **Panic hygiene** — `unwrap()`/`expect()` on the switch, transport
//!    and engine hot paths must be deliberate, documented invariants,
//!    not conveniences. Each one is either removed or allowlisted in
//!    `lint.toml` with a reason.
//!
//! This crate is a line-oriented scanner: no rustc plumbing, no external
//! dependencies, std only. It understands just enough Rust to skip
//! `#[cfg(test)]` modules and comments, which keeps it fast and makes
//! its findings easy to predict. False positives are handled explicitly
//! through the `lint.toml` allowlist, never by weakening a rule.
//!
//! Run it as `cargo run -p dibs-lint -- crates` from the workspace root;
//! it exits nonzero if any finding survives the allowlist.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Machine-readable identifier of a lint rule.
///
/// Every rule has a stable kebab-case name used in diagnostics and in
/// `lint.toml` `[[allow]]` entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet` in simulation crates: iteration order is
    /// randomized per process, which breaks trace determinism.
    HashCollections,
    /// `Instant::now`/`SystemTime` outside `cli`/`bench`: wall-clock
    /// reads leak host time into simulation results.
    WallClock,
    /// `thread_rng`/`rand::random` anywhere: OS-seeded randomness is
    /// unreproducible; all randomness must flow from `SimRng`.
    AmbientRng,
    /// Float comparison (`.partial_cmp`/`.total_cmp`) in event/time
    /// ordering modules: ties and NaNs make event order unstable.
    FloatOrdering,
    /// Unchecked `-`/`-=` on counter-like values in accounting modules:
    /// a `u64` underflow corrupts occupancy and byte counts silently
    /// in release builds.
    UncheckedSub,
    /// Truncating `as` cast on time/byte/count values in accounting
    /// modules: high bits are dropped silently.
    TruncatingCast,
    /// `unwrap()`/`expect()` in hot-path crates (switch, transport,
    /// engine) outside tests and outside the `lint.toml` allowlist.
    PanicHygiene,
    /// `std::thread` spawning (`spawn`/`scope`/`Builder`) outside
    /// `crates/harness`: ad-hoc threads bypass the deterministic sweep
    /// executor and reintroduce schedule-dependent output.
    ThreadSpawn,
    /// `BinaryHeap` in simulation crates outside `crates/engine`: the
    /// engine's timing wheel (with its heap oracle) is the one sanctioned
    /// priority queue; ad-hoc heaps reintroduce the O(log n) hot path and
    /// risk unstable tie-breaking.
    BinaryHeap,
    /// A dependency declared in `Cargo.toml` that no source file of the
    /// crate references.
    UnusedDep,
    /// `println!`/`eprintln!` (and the no-newline forms) in library
    /// sources: libraries return data; stdio belongs to binary targets
    /// (`src/bin/`, `main.rs`). Stray prints corrupt `--json` output and
    /// the digest lines `scripts/check.sh` diffs.
    PrintlnInLib,
    /// A raw numeric probability literal fed straight into a chance
    /// decision (`rng.chance(0.25)`, `rng.uniform() < 0.1`) in
    /// fault-decision files (`crates/fault`, the core event loop). Drop
    /// and corruption rates must flow from the parsed `FaultSpec`; a
    /// sampler definition site may carry an explicit `lint.toml` allow.
    RawProbability,
}

impl Rule {
    /// The stable kebab-case name used in diagnostics and `lint.toml`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashCollections => "hash-collections",
            Rule::WallClock => "wall-clock",
            Rule::AmbientRng => "ambient-rng",
            Rule::FloatOrdering => "float-ordering",
            Rule::UncheckedSub => "unchecked-sub",
            Rule::TruncatingCast => "truncating-cast",
            Rule::PanicHygiene => "panic-hygiene",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::BinaryHeap => "binary-heap",
            Rule::UnusedDep => "unused-dep",
            Rule::PrintlnInLib => "println-in-lib",
            Rule::RawProbability => "raw-probability",
        }
    }

    /// All rules, in reporting order.
    pub fn all() -> &'static [Rule] {
        &[
            Rule::HashCollections,
            Rule::WallClock,
            Rule::AmbientRng,
            Rule::FloatOrdering,
            Rule::UncheckedSub,
            Rule::TruncatingCast,
            Rule::PanicHygiene,
            Rule::ThreadSpawn,
            Rule::BinaryHeap,
            Rule::UnusedDep,
            Rule::PrintlnInLib,
            Rule::RawProbability,
        ]
    }
}

/// One diagnostic produced by the scanner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// Path of the offending file, relative to the scan root when
    /// possible.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// One `[[allow]]` entry from `lint.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Rule name the entry silences (kebab-case, e.g. `panic-hygiene`).
    pub rule: String,
    /// Path suffix the entry applies to, e.g. `crates/engine/src/lib.rs`.
    pub path: String,
    /// Why the finding is acceptable. Required: an allowlist entry
    /// without a rationale is a bug waiting to be forgotten.
    pub reason: String,
}

impl Allow {
    /// Does this entry silence `finding`?
    pub fn matches(&self, finding: &Finding) -> bool {
        self.rule == finding.rule.name()
            && (finding.path.ends_with(&self.path) || finding.path == self.path)
    }
}

/// Parse the `lint.toml` allowlist.
///
/// The accepted grammar is the TOML subset we actually use: `[[allow]]`
/// array-of-table headers followed by `key = "string"` pairs, with `#`
/// comments and blank lines. Every entry must provide `rule`, `path`,
/// and `reason`.
pub fn parse_allowlist(text: &str) -> Result<Vec<Allow>, String> {
    let mut allows: Vec<Allow> = Vec::new();
    let mut current: Option<(Option<String>, Option<String>, Option<String>)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(entry) = current.take() {
                allows.push(finish_allow(entry, lineno)?);
            }
            current = Some((None, None, None));
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("lint.toml:{lineno}: unknown table {line}"));
        }
        let (key, value) = parse_kv(line)
            .ok_or_else(|| format!("lint.toml:{lineno}: expected `key = \"value\"`, got {line}"))?;
        let entry = current
            .as_mut()
            .ok_or_else(|| format!("lint.toml:{lineno}: `{key}` outside an [[allow]] entry"))?;
        match key {
            "rule" => entry.0 = Some(value),
            "path" => entry.1 = Some(value),
            "reason" => entry.2 = Some(value),
            other => return Err(format!("lint.toml:{lineno}: unknown key `{other}`")),
        }
    }
    if let Some(entry) = current.take() {
        allows.push(finish_allow(entry, text.lines().count())?);
    }
    Ok(allows)
}

fn finish_allow(
    entry: (Option<String>, Option<String>, Option<String>),
    lineno: usize,
) -> Result<Allow, String> {
    match entry {
        (Some(rule), Some(path), Some(reason)) => {
            if !Rule::all().iter().any(|r| r.name() == rule) {
                return Err(format!(
                    "lint.toml (entry ending near line {lineno}): unknown rule `{rule}`"
                ));
            }
            Ok(Allow { rule, path, reason })
        }
        (rule, path, reason) => {
            let mut missing = Vec::new();
            if rule.is_none() {
                missing.push("rule");
            }
            if path.is_none() {
                missing.push("path");
            }
            if reason.is_none() {
                missing.push("reason");
            }
            Err(format!(
                "lint.toml (entry ending near line {lineno}): missing {}",
                missing.join(", ")
            ))
        }
    }
}

fn parse_kv(line: &str) -> Option<(&str, String)> {
    let eq = line.find('=')?;
    let key = line[..eq].trim();
    let rest = line[eq + 1..].trim();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some((key, rest[..end].to_string()))
}

/// Where a file sits in the workspace, which decides which rules apply.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Package name from the owning crate's `Cargo.toml`
    /// (e.g. `dibs-switch`), or `fixture` for loose files.
    pub crate_name: String,
    /// Path as reported in diagnostics, e.g.
    /// `crates/switch/src/buffer.rs`.
    pub rel_path: String,
}

impl FileCtx {
    /// Context for a loose file outside the workspace layout (fixtures,
    /// ad-hoc scans): every rule applies.
    pub fn strict(rel_path: &str) -> FileCtx {
        FileCtx {
            crate_name: "fixture".to_string(),
            rel_path: rel_path.to_string(),
        }
    }

    fn is_strict(&self) -> bool {
        self.crate_name == "fixture"
    }

    /// Crates whose sources must be deterministic: everything that can
    /// run inside a simulation.
    fn is_sim_crate(&self) -> bool {
        matches!(
            self.crate_name.as_str(),
            "dibs"
                | "dibs-engine"
                | "dibs-net"
                | "dibs-switch"
                | "dibs-transport"
                | "dibs-workload"
                | "dibs-stats"
                | "dibs-repro"
        ) || self.is_strict()
    }

    /// Crates allowed to read the wall clock (interactive frontends and
    /// benchmark harnesses measure real elapsed time by design).
    fn may_read_wall_clock(&self) -> bool {
        matches!(
            self.crate_name.as_str(),
            "dibs-cli" | "dibs-bench" | "dibs-lint"
        ) && !self.is_strict()
    }

    /// Hot-path crates where panics must be allowlisted invariants.
    fn is_hot_path(&self) -> bool {
        matches!(
            self.crate_name.as_str(),
            "dibs-switch" | "dibs-transport" | "dibs-engine"
        ) || self.is_strict()
    }

    /// Files that implement event/time ordering: float comparisons here
    /// can reorder the event loop.
    fn is_ordering_file(&self) -> bool {
        let p = &self.rel_path;
        self.is_strict()
            || ((p.ends_with("queue.rs") || p.ends_with("time.rs") || p.ends_with("sim.rs"))
                && self.is_sim_crate())
    }

    /// The one crate allowed to spawn OS threads: the deterministic
    /// sweep executor. Everyone else must go through it.
    fn may_spawn_threads(&self) -> bool {
        self.crate_name == "dibs-harness" && !self.is_strict()
    }

    /// Library sources, where stdio printing is forbidden. Binary
    /// targets (`src/bin/…`, `src/main.rs`) own stdout/stderr.
    fn is_library_source(&self) -> bool {
        let p = &self.rel_path;
        self.is_strict() || !(p.contains("/bin/") || p.ends_with("main.rs"))
    }

    /// Files that make probabilistic fault decisions: the fault crate
    /// and the core event loop that executes its plans. A raw probability
    /// literal here bypasses the `FaultSpec` grammar, so the rate neither
    /// appears in the run's spec nor survives a round-trip through it.
    fn is_fault_decision_file(&self) -> bool {
        self.is_strict()
            || self.crate_name == "dibs-fault"
            || (self.rel_path.ends_with("sim.rs") && self.is_sim_crate())
    }

    /// Files that account for packets, bytes, or buffer occupancy.
    fn is_accounting_file(&self) -> bool {
        let p = &self.rel_path;
        self.is_strict()
            || ((p.contains("buffer")
                || p.contains("counters")
                || p.ends_with("sim.rs")
                || p.ends_with("time.rs"))
                && self.is_sim_crate())
    }
}

/// Scan one Rust source string under the given context.
///
/// `#[cfg(test)]` items (modules, functions) and comment lines are
/// skipped; the allowlist is *not* applied here — callers that want it
/// filter with [`apply_allowlist`].
pub fn scan_str(src: &str, ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut skip_depth: i64 = -1; // -1: not skipping; >=0: brace depth of a cfg(test) region
    let mut awaiting_open = false;
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let code = strip_line_comment(raw);
        let trimmed = code.trim();

        // --- #[cfg(test)] region skipping -------------------------------
        if skip_depth >= 0 || awaiting_open {
            let opens = trimmed.matches('{').count() as i64;
            let closes = trimmed.matches('}').count() as i64;
            if awaiting_open {
                if opens > 0 {
                    awaiting_open = false;
                    skip_depth = opens - closes;
                    if skip_depth <= 0 {
                        skip_depth = -1; // single-line item
                    }
                }
                continue;
            }
            skip_depth += opens - closes;
            if skip_depth <= 0 {
                skip_depth = -1;
            }
            continue;
        }
        if trimmed.contains("#[cfg(test)]") {
            awaiting_open = true;
            continue;
        }
        if trimmed.is_empty() {
            continue;
        }

        let mut push = |rule: Rule, message: String| {
            out.push(Finding {
                rule,
                path: ctx.rel_path.clone(),
                line: lineno,
                message,
            });
        };

        // --- determinism ------------------------------------------------
        if ctx.is_sim_crate() && (trimmed.contains("HashMap") || trimmed.contains("HashSet")) {
            push(
                Rule::HashCollections,
                "hash-based collection in a simulation crate; iteration order is \
                 nondeterministic — use BTreeMap/BTreeSet or a Vec arena"
                    .to_string(),
            );
        }
        if !ctx.may_read_wall_clock()
            && (trimmed.contains("Instant::now") || trimmed.contains("SystemTime"))
        {
            push(
                Rule::WallClock,
                "wall-clock read outside cli/bench; simulation time must come from \
                 the engine clock"
                    .to_string(),
            );
        }
        if trimmed.contains("thread_rng") || trimmed.contains("rand::random") {
            push(
                Rule::AmbientRng,
                "ambient OS-seeded RNG; all randomness must flow from a seeded SimRng".to_string(),
            );
        }
        if ctx.is_fault_decision_file() && has_raw_probability(trimmed) {
            push(
                Rule::RawProbability,
                "raw probability literal in fault-decision code; rates must \
                 come from the parsed FaultSpec — or allowlist the sampler \
                 definition site in lint.toml with a reason"
                    .to_string(),
            );
        }
        if ctx.is_ordering_file()
            && (trimmed.contains(".partial_cmp(") || trimmed.contains(".total_cmp("))
        {
            push(
                Rule::FloatOrdering,
                "float comparison in event/time ordering code; order ties and NaNs \
                 make the event loop unstable — compare integer nanoseconds"
                    .to_string(),
            );
        }

        // --- accounting -------------------------------------------------
        if ctx.is_accounting_file() && has_unchecked_sub(trimmed) {
            push(
                Rule::UncheckedSub,
                "unchecked subtraction on accounting state; underflow wraps silently \
                 in release builds — use checked_sub/saturating_sub with an explicit \
                 policy"
                    .to_string(),
            );
        }
        if ctx.is_accounting_file() {
            if let Some(cast) = find_truncating_cast(trimmed) {
                push(
                    Rule::TruncatingCast,
                    format!(
                        "truncating `as {cast}` cast on counter-like value; high bits \
                         are dropped silently — use try_from or widen the type"
                    ),
                );
            }
        }

        if ctx.is_sim_crate() && trimmed.contains("BinaryHeap") {
            push(
                Rule::BinaryHeap,
                "BinaryHeap outside crates/engine; the engine's timing wheel is \
                 the one sanctioned priority queue — schedule through \
                 dibs_engine::EventQueue (the oracle heap in engine/queue.rs is \
                 allowlisted)"
                    .to_string(),
            );
        }

        // --- parallelism ------------------------------------------------
        if !ctx.may_spawn_threads()
            && (trimmed.contains("thread::spawn")
                || trimmed.contains("thread::scope")
                || trimmed.contains("thread::Builder"))
        {
            push(
                Rule::ThreadSpawn,
                "ad-hoc thread spawn outside crates/harness; all parallelism must \
                 go through dibs_harness::Executor so sweeps stay deterministic"
                    .to_string(),
            );
        }

        // --- stdio hygiene ----------------------------------------------
        // Checked longest-name-first: `eprintln!` contains `println!` as a
        // substring, so one line reports one macro, not two.
        if ctx.is_library_source() {
            let stdio_macro = if trimmed.contains("eprintln!") {
                Some("eprintln!")
            } else if trimmed.contains("println!") {
                Some("println!")
            } else if trimmed.contains("eprint!") {
                Some("eprint!")
            } else if trimmed.contains("print!") {
                Some("print!")
            } else {
                None
            };
            if let Some(mac) = stdio_macro {
                push(
                    Rule::PrintlnInLib,
                    format!(
                        "`{mac}` in library code; return data and let a binary \
                         target (src/bin, main.rs) print it, or allowlist the \
                         harness file in lint.toml with a reason"
                    ),
                );
            }
        }

        // --- panic hygiene ----------------------------------------------
        if ctx.is_hot_path() && (trimmed.contains(".unwrap()") || trimmed.contains(".expect(")) {
            push(
                Rule::PanicHygiene,
                "unwrap/expect on a hot path; either handle the case or allowlist \
                 the invariant in lint.toml with a reason"
                    .to_string(),
            );
        }
    }
    out
}

/// A chance decision fed a numeric literal: `.chance(` directly followed
/// by a digit or `.`, or `uniform()` compared (`<`/`<=`) against one.
/// Variables and spec-derived fields (`rng.chance(prof.p)`) never match.
fn has_raw_probability(code: &str) -> bool {
    let starts_with_number = |s: &str| matches!(s.trim_start().chars().next(), Some(c) if c.is_ascii_digit() || c == '.');
    for (i, pat) in code.match_indices(".chance(") {
        if starts_with_number(&code[i + pat.len()..]) {
            return true;
        }
    }
    for (i, pat) in code.match_indices("uniform()") {
        let rest = code[i + pat.len()..].trim_start();
        let operand = rest.strip_prefix("<=").or_else(|| rest.strip_prefix('<'));
        if operand.is_some_and(starts_with_number) {
            return true;
        }
    }
    false
}

/// Strip a trailing `//` line comment, approximately: the cut happens at
/// the first `//` that is not inside a string literal.
fn strip_line_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' if !in_str => in_str = true,
            b'"' if in_str && (i == 0 || bytes[i - 1] != b'\\') => in_str = false,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

/// Identifiers whose subtraction we treat as accounting-sensitive.
const COUNTERY: &[&str] = &[
    "bytes",
    "pkts",
    "packets",
    "count",
    "occupancy",
    "buffered",
    "in_flight",
    "nanos",
    "len",
];

fn mentions_countery(s: &str) -> bool {
    COUNTERY.iter().any(|w| s.contains(w))
}

/// Detect a raw binary `-` / `-=` on counter-like operands, excluding
/// lines that already use a checked/saturating form or guard with an
/// assert.
fn has_unchecked_sub(code: &str) -> bool {
    if !mentions_countery(code) {
        return false;
    }
    const EXEMPT: &[&str] = &[
        "checked_sub",
        "saturating_sub",
        "wrapping_sub",
        "debug_assert",
        "assert!",
        "assert_eq!",
        "assert_ne!",
    ];
    if EXEMPT.iter().any(|e| code.contains(e)) {
        return false;
    }
    if code.contains("-=") {
        return true;
    }
    // Binary minus: previous non-space char ends an operand, next
    // non-space char starts one, and it is not `->` or a negative literal.
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'-' {
            continue;
        }
        if i + 1 < bytes.len() && (bytes[i + 1] == b'>' || bytes[i + 1] == b'=') {
            continue;
        }
        let prev = code[..i].trim_end().chars().last();
        let next = code[i + 1..].trim_start().chars().next();
        let prev_operand = matches!(prev, Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == ')' || c == ']');
        let next_operand =
            matches!(next, Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '(');
        if prev_operand && next_operand {
            return true;
        }
    }
    false
}

/// Detect `as u8` / `as u16` / `as u32` / `as i32` on a counter-like line.
fn find_truncating_cast(code: &str) -> Option<&'static str> {
    if !mentions_countery(code) {
        return None;
    }
    for narrow in ["u8", "u16", "u32", "i8", "i16", "i32"] {
        // Require a word boundary after the type name so `as u32` does not
        // match inside `as u32x4` or similar.
        let pat = format!("as {narrow}");
        if let Some(pos) = code.find(&pat) {
            let after = code[pos + pat.len()..].chars().next();
            let boundary = !matches!(after, Some(c) if c.is_ascii_alphanumeric() || c == '_');
            if boundary {
                return Some(match narrow {
                    "u8" => "u8",
                    "u16" => "u16",
                    "u32" => "u32",
                    "i8" => "i8",
                    "i16" => "i16",
                    _ => "i32",
                });
            }
        }
    }
    None
}

/// Scan a crate's `Cargo.toml` for declared-but-unused dependencies.
///
/// A dependency counts as used if its snake_case ident appears anywhere
/// in a `.rs` file under the crate directory (src, tests, benches,
/// examples). Path self-references and the `[workspace]` tables of a
/// virtual manifest are ignored.
pub fn scan_manifest(crate_dir: &Path, display_prefix: &str) -> Vec<Finding> {
    let manifest = crate_dir.join("Cargo.toml");
    let Ok(text) = fs::read_to_string(&manifest) else {
        return Vec::new();
    };
    let deps = declared_deps(&text);
    if deps.is_empty() {
        return Vec::new();
    }
    let mut sources = String::new();
    for sub in ["src", "tests", "benches", "examples"] {
        collect_rs_sources(&crate_dir.join(sub), &mut sources);
    }
    let mut out = Vec::new();
    for (name, line) in deps {
        let ident = name.replace('-', "_");
        if !sources.contains(&ident) {
            out.push(Finding {
                rule: Rule::UnusedDep,
                path: format!("{display_prefix}Cargo.toml"),
                line,
                message: format!(
                    "dependency `{name}` is declared but `{ident}` never appears in \
                     this crate's sources"
                ),
            });
        }
    }
    out
}

/// Extract `(dep_name, line_number)` pairs from the `[dependencies]`,
/// `[dev-dependencies]` and `[build-dependencies]` tables of a manifest.
fn declared_deps(manifest: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for (idx, raw) in manifest.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_deps = matches!(
                line,
                "[dependencies]" | "[dev-dependencies]" | "[build-dependencies]"
            );
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let key = line[..eq].trim().trim_matches('"');
        // Dotted keys (`dep.workspace = true`, `dep.version = "1"`) name
        // the dependency in their first segment.
        let name = key.split('.').next().unwrap_or(key).trim_matches('"');
        if name.is_empty() {
            continue;
        }
        if out.iter().any(|(n, _): &(String, usize)| n == name) {
            continue;
        }
        out.push((name.to_string(), idx + 1));
    }
    out
}

fn collect_rs_sources(dir: &Path, into: &mut String) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs_sources(&p, into);
        } else if p.extension().is_some_and(|e| e == "rs") {
            if let Ok(s) = fs::read_to_string(&p) {
                into.push_str(&s);
                into.push('\n');
            }
        }
    }
}

/// Drop findings silenced by the allowlist.
pub fn apply_allowlist(findings: Vec<Finding>, allows: &[Allow]) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| !allows.iter().any(|a| a.matches(f)))
        .collect()
}

/// Scan a whole workspace rooted at `root`.
///
/// Walks every crate under `root/crates` plus the root package itself,
/// scans all non-test Rust sources under each crate's `src/`, checks
/// each manifest for unused dependencies, and filters the result
/// through `root/lint.toml` (if present).
pub fn scan_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let allows = match fs::read_to_string(root.join("lint.toml")) {
        Ok(text) => parse_allowlist(&text)?,
        Err(_) => Vec::new(),
    };
    let mut findings = Vec::new();

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir() && p.join("Cargo.toml").exists())
        .collect();
    crate_dirs.sort();

    for crate_dir in &crate_dirs {
        scan_crate(root, crate_dir, &mut findings)?;
    }
    // The root package: manifest hygiene plus its `src/` sources.
    scan_crate(root, root, &mut findings)?;

    Ok(apply_allowlist(findings, &allows))
}

fn scan_crate(root: &Path, crate_dir: &Path, findings: &mut Vec<Finding>) -> Result<(), String> {
    let manifest = fs::read_to_string(crate_dir.join("Cargo.toml"))
        .map_err(|e| format!("cannot read {}/Cargo.toml: {e}", crate_dir.display()))?;
    let crate_name = package_name(&manifest).unwrap_or_else(|| "unknown".to_string());
    let prefix = display_prefix(root, crate_dir);

    // The linter's own sources spell out the very patterns it hunts for;
    // scanning them is pure self-reference. Manifest hygiene still applies.
    if crate_name == "dibs-lint" {
        findings.extend(scan_manifest(crate_dir, &prefix));
        return Ok(());
    }

    let mut files = Vec::new();
    collect_rs_files(&crate_dir.join("src"), &mut files);
    files.sort();
    for file in files {
        let rel = format!(
            "{prefix}{}",
            file.strip_prefix(crate_dir)
                .unwrap_or(&file)
                .to_string_lossy()
        );
        let src = fs::read_to_string(&file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let ctx = FileCtx {
            crate_name: crate_name.clone(),
            rel_path: rel,
        };
        findings.extend(scan_str(&src, &ctx));
    }
    findings.extend(scan_manifest(crate_dir, &prefix));
    Ok(())
}

fn display_prefix(root: &Path, crate_dir: &Path) -> String {
    match crate_dir.strip_prefix(root) {
        Ok(rel) if rel.as_os_str().is_empty() => String::new(),
        Ok(rel) => format!("{}/", rel.to_string_lossy()),
        Err(_) => format!("{}/", crate_dir.to_string_lossy()),
    }
}

fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for raw in manifest.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package && line.starts_with("name") {
            let (_, v) = parse_kv(line)?;
            return Some(v);
        }
    }
    None
}

fn collect_rs_files(dir: &Path, into: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let p = entry.path();
        if p.is_dir() {
            collect_rs_files(&p, into);
        } else if p.extension().is_some_and(|e| e == "rs") {
            into.push(p);
        }
    }
}

/// Scan a single crate directory (its `src/` sources plus manifest
/// hygiene) without applying any allowlist. Used by the CLI when
/// pointed at one crate, e.g. a fixture crate.
pub fn scan_single_crate(crate_dir: &Path) -> Result<Vec<Finding>, String> {
    let root = crate_dir.parent().unwrap_or_else(|| Path::new("."));
    let mut findings = Vec::new();
    scan_crate(root, crate_dir, &mut findings)?;
    Ok(findings)
}

/// Scan a loose `.rs` file with the strict context (all rules apply).
/// Used by the CLI on fixture files.
pub fn scan_loose_file(path: &Path) -> Result<Vec<Finding>, String> {
    let src =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let ctx = FileCtx::strict(&path.to_string_lossy());
    Ok(scan_str(&src, &ctx))
}

/// Sanity check on the allowlist itself: report entries that silence
/// nothing, so stale allows do not accumulate.
pub fn stale_allows(allows: &[Allow], raw_findings: &[Finding]) -> Vec<Allow> {
    allows
        .iter()
        .filter(|a| !raw_findings.iter().any(|f| a.matches(f)))
        .cloned()
        .collect()
}

/// Distinct rule names that fired in `findings`, for summary output.
pub fn rules_fired(findings: &[Finding]) -> BTreeSet<&'static str> {
    findings.iter().map(|f| f.rule.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_ctx() -> FileCtx {
        FileCtx {
            crate_name: "dibs-switch".to_string(),
            rel_path: "crates/switch/src/buffer.rs".to_string(),
        }
    }

    #[test]
    fn flags_hashmap_in_sim_crate() {
        let f = scan_str("use std::collections::HashMap;\n", &sim_ctx());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::HashCollections);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn ignores_hashmap_in_cli() {
        let ctx = FileCtx {
            crate_name: "dibs-cli".to_string(),
            rel_path: "crates/cli/src/main.rs".to_string(),
        };
        assert!(scan_str("use std::collections::HashMap;\n", &ctx).is_empty());
    }

    #[test]
    fn println_flagged_in_lib_but_not_in_bin() {
        let lib = FileCtx {
            crate_name: "dibs-cli".to_string(),
            rel_path: "crates/cli/src/report.rs".to_string(),
        };
        let f = scan_str("    eprintln!(\"oops\");\n    println!(\"hi\");\n", &lib);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == Rule::PrintlnInLib));
        assert!(f[0].message.contains("eprintln!"), "{}", f[0].message);
        assert!(f[1].message.contains("println!"), "{}", f[1].message);

        for bin_path in ["crates/cli/src/bin/dibs_sim.rs", "crates/cli/src/main.rs"] {
            let bin = FileCtx {
                crate_name: "dibs-cli".to_string(),
                rel_path: bin_path.to_string(),
            };
            assert!(scan_str("println!(\"hi\");\n", &bin).is_empty());
        }
    }

    #[test]
    fn skips_cfg_test_regions() {
        let src = "\
fn real() {}
#[cfg(test)]
mod tests {
    fn helper() { x.unwrap(); let t = std::time::Instant::now(); }
}
fn after() { y.unwrap(); }
";
        let f = scan_str(src, &sim_ctx());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::PanicHygiene);
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn skips_comments() {
        let src = "// a.unwrap() inside a comment\nlet x = 1; // Instant::now\n";
        assert!(scan_str(src, &sim_ctx()).is_empty());
    }

    #[test]
    fn unchecked_sub_detection() {
        assert!(has_unchecked_sub("self.bytes -= pkt.len;"));
        assert!(has_unchecked_sub("let free = capacity_bytes - used_bytes;"));
        assert!(!has_unchecked_sub(
            "self.bytes = self.bytes.checked_sub(n).expect(\"x\");"
        ));
        assert!(!has_unchecked_sub("fn take(&mut self) -> u64 {"));
        assert!(!has_unchecked_sub("let x = a - b;"), "no countery ident");
        assert!(!has_unchecked_sub("let d = -5;"));
    }

    #[test]
    fn raw_probability_detection() {
        assert!(has_raw_probability("if rng.chance(0.25) {"));
        assert!(has_raw_probability("if rng.chance(.5) {"));
        assert!(has_raw_probability("rng.chance( 1e-3 )"));
        assert!(has_raw_probability("if rng.uniform() < 0.1 {"));
        assert!(has_raw_probability("rng.uniform() <= .01"));
        assert!(!has_raw_probability("rng.chance(prof.p)"));
        assert!(!has_raw_probability("rng.chance(DROP_WEIGHT)"));
        assert!(!has_raw_probability("let u = rng.uniform();"));
        assert!(!has_raw_probability("rng.uniform() < threshold"));
    }

    #[test]
    fn raw_probability_scoped_to_fault_decision_files() {
        let src = "fn f(rng: &mut SimRng) -> bool { rng.chance(0.25) }\n";
        let fault = FileCtx {
            crate_name: "dibs-fault".to_string(),
            rel_path: "crates/fault/src/random.rs".to_string(),
        };
        let core_sim = FileCtx {
            crate_name: "dibs".to_string(),
            rel_path: "crates/core/src/sim.rs".to_string(),
        };
        let harness = FileCtx {
            crate_name: "dibs-harness".to_string(),
            rel_path: "crates/harness/src/simtest.rs".to_string(),
        };
        for ctx in [&fault, &core_sim] {
            let f = scan_str(src, ctx);
            assert_eq!(f.len(), 1, "{}: {f:?}", ctx.rel_path);
            assert_eq!(f[0].rule, Rule::RawProbability);
        }
        assert!(
            scan_str(src, &harness).is_empty(),
            "workload generators may use inline mixture weights"
        );
    }

    #[test]
    fn truncating_cast_detection() {
        assert_eq!(
            find_truncating_cast("let x = byte_count as u32;"),
            Some("u32")
        );
        assert_eq!(find_truncating_cast("let x = nanos as u16;"), Some("u16"));
        assert_eq!(find_truncating_cast("let x = count as u64;"), None);
        assert_eq!(
            find_truncating_cast("let x = flag as u32;"),
            None,
            "no countery ident"
        );
    }

    #[test]
    fn allowlist_roundtrip() {
        let toml = "\
# comment
[[allow]]
rule = \"panic-hygiene\"
path = \"crates/engine/src/lib.rs\"
reason = \"pop follows a successful peek\"

[[allow]]
rule = \"unchecked-sub\"
path = \"crates/switch/src/buffer.rs\"
reason = \"guarded\"
";
        let allows = parse_allowlist(toml).unwrap();
        assert_eq!(allows.len(), 2);
        let finding = Finding {
            rule: Rule::PanicHygiene,
            path: "crates/engine/src/lib.rs".to_string(),
            line: 115,
            message: String::new(),
        };
        assert!(allows[0].matches(&finding));
        assert!(!allows[1].matches(&finding));
        assert_eq!(apply_allowlist(vec![finding], &allows).len(), 0);
    }

    #[test]
    fn allowlist_requires_reason() {
        let toml = "[[allow]]\nrule = \"panic-hygiene\"\npath = \"x.rs\"\n";
        let err = parse_allowlist(toml).unwrap_err();
        assert!(err.contains("missing reason"), "{err}");
    }

    #[test]
    fn allowlist_rejects_unknown_rule() {
        let toml = "[[allow]]\nrule = \"no-such\"\npath = \"x.rs\"\nreason = \"y\"\n";
        assert!(parse_allowlist(toml).is_err());
    }

    #[test]
    fn declared_deps_parses_tables() {
        let manifest = "\
[package]
name = \"x\"

[dependencies]
dibs-net = { workspace = true }
serde = \"1\"

[dev-dependencies]
proptest = \"1\"

[lints]
workspace = true
";
        let deps = declared_deps(manifest);
        let names: Vec<&str> = deps.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["dibs-net", "serde", "proptest"]);
    }

    #[test]
    fn flags_binary_heap_in_sim_crate() {
        let f = scan_str("use std::collections::BinaryHeap;\n", &sim_ctx());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::BinaryHeap);
    }

    #[test]
    fn ignores_binary_heap_in_cli() {
        let ctx = FileCtx {
            crate_name: "dibs-cli".to_string(),
            rel_path: "crates/cli/src/main.rs".to_string(),
        };
        assert!(scan_str("use std::collections::BinaryHeap;\n", &ctx).is_empty());
    }

    #[test]
    fn float_ordering_only_on_call_sites() {
        let ctx = FileCtx {
            crate_name: "dibs-engine".to_string(),
            rel_path: "crates/engine/src/queue.rs".to_string(),
        };
        // Definition delegating to Ord: fine.
        assert!(scan_str(
            "fn partial_cmp(&self, other: &Self) -> Option<Ordering> {\n",
            &ctx
        )
        .is_empty());
        // Call site: flagged.
        let f = scan_str("let o = a.partial_cmp(&b);\n", &ctx);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::FloatOrdering);
    }
}
