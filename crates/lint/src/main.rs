//! Command-line entry point for `dibs-lint`.
//!
//! Usage, from the workspace root:
//!
//! ```text
//! cargo run -p dibs-lint -- crates          # scan the workspace
//! cargo run -p dibs-lint -- path/to/file.rs # scan one loose file (strict)
//! ```
//!
//! Exits 0 when no finding survives the `lint.toml` allowlist, 1 when
//! findings are printed, 2 on usage or I/O errors.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let targets: Vec<&str> = if args.is_empty() {
        vec!["crates"]
    } else {
        args.iter().map(String::as_str).collect()
    };

    let mut findings = Vec::new();
    for target in targets {
        let path = Path::new(target);
        let result = if path.is_file() {
            dibs_lint::scan_loose_file(path)
        } else if path.is_dir() {
            if path.join("Cargo.toml").is_file() && !path.join("crates").is_dir() {
                // A single crate directory (e.g. a fixture crate).
                dibs_lint::scan_single_crate(path)
            } else {
                // `crates` (or any crate-collection dir) is scanned relative
                // to its parent so diagnostics read `crates/…` from the
                // repo root.
                let root = path.parent().filter(|p| !p.as_os_str().is_empty());
                dibs_lint::scan_workspace(root.unwrap_or_else(|| Path::new(".")))
            }
        } else {
            Err(format!("no such file or directory: {target}"))
        };
        match result {
            Ok(f) => findings.extend(f),
            Err(e) => {
                eprintln!("dibs-lint: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if findings.is_empty() {
        println!("dibs-lint: clean");
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    let rules: Vec<&str> = dibs_lint::rules_fired(&findings).into_iter().collect();
    println!(
        "dibs-lint: {} finding(s) across rule(s): {}",
        findings.len(),
        rules.join(", ")
    );
    ExitCode::FAILURE
}
