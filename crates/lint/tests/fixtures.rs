//! Every fixture under `fixtures/` pins that its lint actually fires.
//! If a rule regresses into silence, the matching test here fails.

use std::path::{Path, PathBuf};

use dibs_lint::{scan_loose_file, scan_manifest, Rule};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

/// Assert that scanning the fixture yields at least one finding and that
/// every finding carries the expected rule (fixtures are crafted to
/// trip exactly one rule).
fn assert_fires(name: &str, rule: Rule) {
    let findings = scan_loose_file(&fixture(name)).expect("fixture readable");
    assert!(
        !findings.is_empty(),
        "fixture {name} produced no findings; rule {} went silent",
        rule.name()
    );
    for f in &findings {
        assert_eq!(f.rule, rule, "fixture {name} tripped unexpected rule: {f}");
    }
}

#[test]
fn hash_collections_fires() {
    assert_fires("hash_collections.rs", Rule::HashCollections);
}

#[test]
fn wall_clock_fires() {
    assert_fires("wall_clock.rs", Rule::WallClock);
}

#[test]
fn ambient_rng_fires() {
    assert_fires("ambient_rng.rs", Rule::AmbientRng);
}

#[test]
fn float_ordering_fires() {
    assert_fires("float_ordering.rs", Rule::FloatOrdering);
}

#[test]
fn unchecked_sub_fires() {
    assert_fires("unchecked_sub.rs", Rule::UncheckedSub);
}

#[test]
fn truncating_cast_fires() {
    assert_fires("truncating_cast.rs", Rule::TruncatingCast);
}

#[test]
fn panic_hygiene_fires() {
    assert_fires("panic_hygiene.rs", Rule::PanicHygiene);
}

#[test]
fn thread_spawn_fires() {
    assert_fires("thread_spawn.rs", Rule::ThreadSpawn);
}

#[test]
fn println_in_lib_fires() {
    assert_fires("println_in_lib.rs", Rule::PrintlnInLib);
}

#[test]
fn binary_heap_fires() {
    assert_fires("binary_heap.rs", Rule::BinaryHeap);
}

#[test]
fn raw_probability_fires() {
    assert_fires("raw_probability.rs", Rule::RawProbability);
}

#[test]
fn unused_dep_fires() {
    let dir = fixture("unused_dep_crate");
    let findings = scan_manifest(&dir, "fixtures/unused_dep_crate/");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::UnusedDep);
    assert!(
        findings[0].message.contains("leftpad"),
        "message names the dep: {}",
        findings[0].message
    );
}

/// The CLI contract: a fixture scan must exit nonzero. Exercised
/// through the library (`scan_loose_file` + nonempty findings is what
/// the binary maps to exit code 1); a process-spawn here would need the
/// binary pre-built, which `cargo test` does not guarantee.
#[test]
fn every_rs_fixture_is_covered() {
    let dir = fixture("");
    let mut rs_fixtures: Vec<String> = std::fs::read_dir(&dir)
        .expect("fixtures dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "rs"))
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    rs_fixtures.sort();
    assert_eq!(
        rs_fixtures,
        [
            "ambient_rng.rs",
            "binary_heap.rs",
            "float_ordering.rs",
            "hash_collections.rs",
            "panic_hygiene.rs",
            "println_in_lib.rs",
            "raw_probability.rs",
            "thread_spawn.rs",
            "truncating_cast.rs",
            "unchecked_sub.rs",
            "wall_clock.rs",
        ],
        "new fixture files need a matching assert_fires test"
    );
}
