//! Human- and machine-readable run reports for `dibs-sim`.

use dibs::RunResults;
use dibs_json::{Json, ToJson};
use dibs_stats::Summary;

/// The serializable run report.
#[derive(Debug)]
pub struct Report {
    /// Query completion time summary (ms), if queries ran.
    pub qct_ms: Option<Summary>,
    /// Short (1–10 KB) background flow FCT summary (ms).
    pub bg_short_fct_ms: Option<Summary>,
    /// All background flow FCT summary (ms).
    pub bg_all_fct_ms: Option<Summary>,
    /// Flow completion statistics.
    pub flows_total: usize,
    /// Flows fully delivered by the horizon.
    pub flows_completed: usize,
    /// Queries issued.
    pub queries_total: usize,
    /// Queries fully answered.
    pub queries_completed: usize,
    /// Network counters.
    pub counters: dibs_stats::NetCounters,
    /// Jain's fairness index over long-lived flows, if any ran.
    pub jain: Option<f64>,
    /// PFC pause events.
    pub pfc_pause_events: u64,
    /// Engine events dispatched.
    pub events: u64,
    /// Simulated seconds at stop.
    pub finished_at_s: f64,
}

impl Report {
    /// Builds the report (consumes percentile queries on `results`).
    pub fn from_results(results: &mut RunResults) -> Self {
        Report {
            qct_ms: results.qct_ms.summarize(),
            bg_short_fct_ms: results.bg_short_fct_ms.summarize(),
            bg_all_fct_ms: results.bg_all_fct_ms.summarize(),
            flows_total: results.flows.len(),
            flows_completed: results.flows.iter().filter(|f| f.fct.is_some()).count(),
            queries_total: results.queries.len(),
            queries_completed: results.queries.iter().filter(|q| q.qct.is_some()).count(),
            counters: results.counters,
            jain: results.jain(),
            pfc_pause_events: results.pfc_pause_events,
            events: results.events_dispatched,
            finished_at_s: results.finished_at.as_secs_f64(),
        }
    }

    /// Renders the human-readable summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let line = |out: &mut String, s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        line(
            &mut out,
            format!(
                "flows: {}/{} completed   queries: {}/{} completed",
                self.flows_completed, self.flows_total, self.queries_completed, self.queries_total
            ),
        );
        if let Some(q) = &self.qct_ms {
            line(
                &mut out,
                format!(
                    "QCT ms      p50 {:>9.3}  p99 {:>9.3}  max {:>9.3}  (n={})",
                    q.p50, q.p99, q.max, q.count
                ),
            );
        }
        if let Some(f) = &self.bg_short_fct_ms {
            line(
                &mut out,
                format!(
                    "BG FCT ms   p50 {:>9.3}  p99 {:>9.3}  max {:>9.3}  (short flows, n={})",
                    f.p50, f.p99, f.max, f.count
                ),
            );
        }
        let c = &self.counters;
        line(
            &mut out,
            format!(
                "packets: sent {}  delivered {}  drops {} (buffer {} / ttl {} / displaced {} / nic {} / fault {})",
                c.packets_sent,
                c.packets_delivered,
                c.total_drops(),
                c.drops_buffer,
                c.drops_ttl,
                c.drops_displaced,
                c.drops_host_nic,
                c.drops_fault
            ),
        );
        line(
            &mut out,
            format!(
                "detours: {} events, {:.2}% of delivered packets detoured; ECN marks {}",
                c.detours,
                100.0 * c.detoured_fraction(),
                c.ecn_marks
            ),
        );
        line(
            &mut out,
            format!(
                "recovery: {} timeouts ({} spurious), {} fast retransmits",
                c.rto_timeouts, c.spurious_timeouts, c.fast_retransmits
            ),
        );
        if let Some(j) = self.jain {
            line(&mut out, format!("Jain fairness index: {j:.4}"));
        }
        if self.pfc_pause_events > 0 {
            line(&mut out, format!("PFC pauses: {}", self.pfc_pause_events));
        }
        line(
            &mut out,
            format!(
                "engine: {} events over {:.3} simulated seconds",
                self.events, self.finished_at_s
            ),
        );
        out
    }

    /// Renders JSON.
    pub fn render_json(&self) -> String {
        self.to_json().render_pretty()
    }
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("qct_ms".to_string(), self.qct_ms.to_json()),
            (
                "bg_short_fct_ms".to_string(),
                self.bg_short_fct_ms.to_json(),
            ),
            ("bg_all_fct_ms".to_string(), self.bg_all_fct_ms.to_json()),
            ("flows_total".to_string(), self.flows_total.to_json()),
            (
                "flows_completed".to_string(),
                self.flows_completed.to_json(),
            ),
            ("queries_total".to_string(), self.queries_total.to_json()),
            (
                "queries_completed".to_string(),
                self.queries_completed.to_json(),
            ),
            ("counters".to_string(), self.counters.to_json()),
            ("jain".to_string(), self.jain.to_json()),
            (
                "pfc_pause_events".to_string(),
                self.pfc_pause_events.to_json(),
            ),
            ("events".to_string(), self.events.to_json()),
            ("finished_at_s".to_string(), self.finished_at_s.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn tiny_report() -> Report {
        let s = Scenario::from_json(
            r#"{
                "topology": { "type": "mini_testbed" },
                "duration_ms": 5,
                "drain_ms": 400,
                "workloads": [
                    { "type": "incast", "target": 5, "degree": 20, "response_bytes": 20000 }
                ]
            }"#,
        )
        .unwrap();
        let mut results = s.build().unwrap().run();
        Report::from_results(&mut results)
    }

    #[test]
    fn report_fields_consistent() {
        let r = tiny_report();
        assert_eq!(r.flows_total, 20);
        assert_eq!(r.flows_completed, 20);
        assert_eq!(r.queries_completed, 1);
        assert!(r.qct_ms.is_some());
        assert!(r.events > 0);
    }

    #[test]
    fn text_and_json_render() {
        let r = tiny_report();
        let text = r.render_text();
        assert!(text.contains("queries: 1/1 completed"));
        assert!(text.contains("QCT ms"));
        let json = r.render_json();
        let parsed = Json::parse(&json).unwrap();
        assert_eq!(
            parsed.get("queries_completed").and_then(Json::as_u64),
            Some(1)
        );
    }
}
