//! JSON scenario schema for the `dibs-sim` command-line runner.
//!
//! A scenario bundles a topology, a scheme (switch + host configuration),
//! traffic, and output options:
//!
//! ```json
//! {
//!   "seed": 1,
//!   "topology": { "type": "fat_tree", "k": 8 },
//!   "scheme": "dctcp_dibs",
//!   "duration_ms": 400,
//!   "drain_ms": 600,
//!   "workloads": [
//!     { "type": "background", "interarrival_ms": 120 },
//!     { "type": "query", "qps": 300, "degree": 40, "response_bytes": 20000 }
//!   ]
//! }
//! ```

use dibs_engine::rng::SimRng;
use dibs_engine::time::{SimDuration, SimTime};
use dibs_json::{FromJson, Json, JsonError, ObjReader};
use dibs_net::builders::{
    dumbbell, fat_tree, hyperx, jellyfish, linear, mini_testbed, single_switch, FatTreeParams,
    HyperXParams, JellyfishParams,
};
use dibs_net::ids::HostId;
use dibs_net::topology::{LinkSpec, Topology};
use dibs_switch::{BufferConfig, DibsPolicy};
use dibs_transport::FastRetransmit;
use dibs_workload::{BackgroundTraffic, FlowClass, FlowSpec, QuerySpec, QueryTraffic};

/// Top-level scenario file. Unknown fields are rejected so typos in
/// scenario files fail loudly instead of silently using defaults.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Root random seed (default 1).
    pub seed: u64,
    /// The network to simulate.
    pub topology: TopologySpec,
    /// Base scheme: `dctcp`, `dctcp_dibs`, or `pfabric`.
    pub scheme: Scheme,
    /// Fine-grained overrides applied on top of the scheme.
    pub overrides: Overrides,
    /// Traffic-generation window in milliseconds.
    pub duration_ms: u64,
    /// Drain time after the generation window, in milliseconds.
    pub drain_ms: u64,
    /// Traffic to offer.
    pub workloads: Vec<WorkloadSpec>,
    /// Link-utilization sampling interval in milliseconds (0 = off).
    pub sample_interval_ms: u64,
}

impl FromJson for Scenario {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut r = ObjReader::new(v, "scenario")?;
        let s = Scenario {
            seed: r.optional("seed", 1)?,
            topology: r.required("topology")?,
            scheme: r.optional("scheme", Scheme::default())?,
            overrides: r.optional("overrides", Overrides::default())?,
            duration_ms: r.optional("duration_ms", 400)?,
            drain_ms: r.optional("drain_ms", 600)?,
            workloads: r.required("workloads")?,
            sample_interval_ms: r.optional("sample_interval_ms", 0)?,
        };
        r.deny_unknown()?;
        Ok(s)
    }
}

/// Topology selection, tagged by a `"type"` field in JSON.
#[derive(Debug, Clone)]
pub enum TopologySpec {
    /// K-ary fat-tree (K even).
    FatTree {
        /// Arity (8 = the paper's 128-host fabric).
        k: usize,
        /// Divide inter-switch capacity by this factor (default 1).
        oversubscription: u64,
    },
    /// The §5.2 testbed: 2 aggregation, 3 edge, 6 hosts.
    MiniTestbed,
    /// `hosts` hosts on one switch.
    SingleSwitch {
        /// Number of hosts.
        hosts: usize,
    },
    /// Random regular graph.
    Jellyfish {
        /// Switch count.
        switches: usize,
        /// Inter-switch degree.
        degree: usize,
        /// Hosts per switch.
        hosts_per_switch: usize,
    },
    /// Full mesh along each lattice dimension.
    Hyperx {
        /// Lattice shape, e.g. `[4, 4]`.
        shape: Vec<usize>,
        /// Hosts per switch.
        hosts_per_switch: usize,
    },
    /// A chain of switches.
    Linear {
        /// Switch count.
        switches: usize,
        /// Hosts per switch.
        hosts_per_switch: usize,
    },
    /// Two switches joined by a bottleneck link.
    Dumbbell {
        /// Hosts on each side.
        hosts_per_side: usize,
        /// Bottleneck rate in Gbit/s (default 1).
        bottleneck_gbps: u64,
    },
}

impl FromJson for TopologySpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut r = ObjReader::new(v, "topology")?;
        let kind: String = r.required("type")?;
        let spec = match kind.as_str() {
            "fat_tree" => TopologySpec::FatTree {
                k: r.required("k")?,
                oversubscription: r.optional("oversubscription", 1)?,
            },
            "mini_testbed" => TopologySpec::MiniTestbed,
            "single_switch" => TopologySpec::SingleSwitch {
                hosts: r.required("hosts")?,
            },
            "jellyfish" => TopologySpec::Jellyfish {
                switches: r.required("switches")?,
                degree: r.required("degree")?,
                hosts_per_switch: r.required("hosts_per_switch")?,
            },
            "hyperx" => TopologySpec::Hyperx {
                shape: r.required("shape")?,
                hosts_per_switch: r.required("hosts_per_switch")?,
            },
            "linear" => TopologySpec::Linear {
                switches: r.required("switches")?,
                hosts_per_switch: r.required("hosts_per_switch")?,
            },
            "dumbbell" => TopologySpec::Dumbbell {
                hosts_per_side: r.required("hosts_per_side")?,
                bottleneck_gbps: r.optional("bottleneck_gbps", 1)?,
            },
            other => {
                return Err(JsonError::msg(format!("unknown topology type `{other}`")));
            }
        };
        r.deny_unknown()?;
        Ok(spec)
    }
}

impl TopologySpec {
    /// Builds the topology (deterministic given `seed` for random families).
    pub fn build(&self, seed: u64) -> Topology {
        let gbit = LinkSpec::gbit(1);
        match *self {
            TopologySpec::FatTree {
                k,
                oversubscription,
            } => fat_tree(FatTreeParams {
                k,
                host_link: gbit,
                fabric_link: gbit.slower_by(oversubscription),
            }),
            TopologySpec::MiniTestbed => mini_testbed(gbit),
            TopologySpec::SingleSwitch { hosts } => single_switch(hosts, gbit),
            TopologySpec::Jellyfish {
                switches,
                degree,
                hosts_per_switch,
            } => {
                let mut rng = SimRng::new(seed).fork("cli/jellyfish");
                jellyfish(
                    JellyfishParams {
                        switches,
                        degree,
                        hosts_per_switch,
                        host_link: gbit,
                        fabric_link: gbit,
                    },
                    &mut rng,
                )
            }
            TopologySpec::Hyperx {
                ref shape,
                hosts_per_switch,
            } => hyperx(HyperXParams {
                shape,
                hosts_per_switch,
                host_link: gbit,
                fabric_link: gbit,
            }),
            TopologySpec::Linear {
                switches,
                hosts_per_switch,
            } => linear(switches, hosts_per_switch, gbit),
            TopologySpec::Dumbbell {
                hosts_per_side,
                bottleneck_gbps,
            } => dumbbell(
                hosts_per_side,
                hosts_per_side,
                gbit,
                LinkSpec {
                    rate_bps: bottleneck_gbps * 1_000_000_000,
                    delay: gbit.delay,
                },
            ),
        }
    }
}

/// Base scheme presets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Scheme {
    /// DCTCP without detouring (droptail baseline).
    Dctcp,
    /// DCTCP with random DIBS detouring (the paper's system).
    #[default]
    DctcpDibs,
    /// pFabric switches and host stack.
    Pfabric,
}

impl FromJson for Scheme {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match String::from_json(v)?.as_str() {
            "dctcp" => Ok(Scheme::Dctcp),
            "dctcp_dibs" => Ok(Scheme::DctcpDibs),
            "pfabric" => Ok(Scheme::Pfabric),
            other => Err(JsonError::msg(format!("unknown scheme `{other}`"))),
        }
    }
}

/// Optional parameter overrides.
#[derive(Debug, Clone, Default)]
pub struct Overrides {
    /// Per-port buffer in packets (`0` = infinite buffers).
    pub buffer_packets: Option<usize>,
    /// Shared-memory (DBA) buffer in bytes instead of per-port buffers.
    pub shared_buffer_bytes: Option<u64>,
    /// ECN marking threshold in packets (`0` disables marking).
    pub ecn_threshold: Option<usize>,
    /// Detour policy: `disabled`, `random`, `load_aware`, `flow_based`, or
    /// `probabilistic:<onset>` (e.g. `probabilistic:0.85`).
    pub dibs_policy: Option<String>,
    /// Minimum RTO in microseconds.
    pub min_rto_us: Option<u64>,
    /// Initial TTL.
    pub ttl: Option<u8>,
    /// Dupack threshold for fast retransmit (`0` disables it).
    pub fast_retransmit: Option<u32>,
    /// Receiver ack coalescing factor.
    pub ack_every: Option<u32>,
    /// `flow` or `packet` level ECMP.
    pub ecmp: Option<String>,
    /// Enable PFC with `[xoff, xon]` per-ingress thresholds.
    pub pfc: Option<[usize; 2]>,
}

impl FromJson for Overrides {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut r = ObjReader::new(v, "overrides")?;
        let o = Overrides {
            buffer_packets: r.optional("buffer_packets", None)?,
            shared_buffer_bytes: r.optional("shared_buffer_bytes", None)?,
            ecn_threshold: r.optional("ecn_threshold", None)?,
            dibs_policy: r.optional("dibs_policy", None)?,
            min_rto_us: r.optional("min_rto_us", None)?,
            ttl: r.optional("ttl", None)?,
            fast_retransmit: r.optional("fast_retransmit", None)?,
            ack_every: r.optional("ack_every", None)?,
            ecmp: r.optional("ecmp", None)?,
            pfc: r.optional("pfc", None)?,
        };
        r.deny_unknown()?;
        Ok(o)
    }
}

/// One traffic component, tagged by a `"type"` field in JSON.
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// DCTCP-paper background traffic.
    Background {
        /// Mean per-host flow inter-arrival in milliseconds.
        interarrival_ms: u64,
    },
    /// Partition-aggregate query traffic.
    Query {
        /// Queries per second.
        qps: f64,
        /// Responders per query.
        degree: usize,
        /// Bytes per response.
        response_bytes: u64,
    },
    /// One explicit incast at a fixed time.
    Incast {
        /// Target host index.
        target: u32,
        /// Number of responders (round-robin over other hosts; may repeat).
        degree: usize,
        /// Bytes per response.
        response_bytes: u64,
        /// Start time in milliseconds (default 0).
        at_ms: u64,
    },
    /// §5.6 long-lived node-disjoint pair flows.
    LongLived {
        /// Flows per pair per direction.
        flows_per_pair: usize,
    },
    /// A single explicit flow.
    Flow {
        /// Source host index.
        src: u32,
        /// Destination host index.
        dst: u32,
        /// Bytes to transfer.
        bytes: u64,
        /// Start time in milliseconds (default 0).
        at_ms: u64,
    },
}

impl FromJson for WorkloadSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut r = ObjReader::new(v, "workload")?;
        let kind: String = r.required("type")?;
        let spec = match kind.as_str() {
            "background" => WorkloadSpec::Background {
                interarrival_ms: r.required("interarrival_ms")?,
            },
            "query" => WorkloadSpec::Query {
                qps: r.required("qps")?,
                degree: r.required("degree")?,
                response_bytes: r.required("response_bytes")?,
            },
            "incast" => WorkloadSpec::Incast {
                target: r.required("target")?,
                degree: r.required("degree")?,
                response_bytes: r.required("response_bytes")?,
                at_ms: r.optional("at_ms", 0)?,
            },
            "long_lived" => WorkloadSpec::LongLived {
                flows_per_pair: r.required("flows_per_pair")?,
            },
            "flow" => WorkloadSpec::Flow {
                src: r.required("src")?,
                dst: r.required("dst")?,
                bytes: r.required("bytes")?,
                at_ms: r.optional("at_ms", 0)?,
            },
            other => {
                return Err(JsonError::msg(format!("unknown workload type `{other}`")));
            }
        };
        r.deny_unknown()?;
        Ok(spec)
    }
}

/// A scenario error with context.
#[derive(Debug)]
pub struct ScenarioError(pub String);

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scenario error: {}", self.0)
    }
}
impl std::error::Error for ScenarioError {}

impl Scenario {
    /// Parses a scenario from JSON text.
    pub fn from_json(s: &str) -> Result<Self, ScenarioError> {
        let v = Json::parse(s).map_err(|e| ScenarioError(e.0))?;
        FromJson::from_json(&v).map_err(|e| ScenarioError(e.0))
    }

    /// The configured horizon.
    pub fn horizon(&self) -> SimTime {
        SimTime::from_millis(self.duration_ms + self.drain_ms)
    }

    /// Resolves scheme + overrides into a `SimConfig`.
    pub fn sim_config(&self) -> Result<dibs::SimConfig, ScenarioError> {
        let mut cfg = match self.scheme {
            Scheme::Dctcp => dibs::SimConfig::dctcp_baseline(),
            Scheme::DctcpDibs => dibs::SimConfig::dctcp_dibs(),
            Scheme::Pfabric => dibs::SimConfig::pfabric(),
        };
        cfg.seed = self.seed;
        cfg.horizon = self.horizon();
        if self.sample_interval_ms > 0 {
            cfg.sample_interval = Some(SimDuration::from_millis(self.sample_interval_ms));
        }
        let o = &self.overrides;
        if let Some(pkts) = o.buffer_packets {
            cfg.switch.buffer = if pkts == 0 {
                BufferConfig::Infinite
            } else {
                BufferConfig::StaticPerPort { packets: pkts }
            };
        }
        if let Some(bytes) = o.shared_buffer_bytes {
            cfg.switch.buffer = BufferConfig::DynamicShared {
                total_bytes: bytes,
                alpha: 1.0,
                per_port_reserve_bytes: 2 * 1500,
            };
        }
        if let Some(k) = o.ecn_threshold {
            cfg.switch.ecn_threshold = if k == 0 { None } else { Some(k) };
        }
        if let Some(ref p) = o.dibs_policy {
            cfg.switch.dibs = parse_policy(p)?;
        }
        if let Some(us) = o.min_rto_us {
            cfg.tcp.min_rto = SimDuration::from_micros(us);
        }
        if let Some(ttl) = o.ttl {
            cfg.tcp.initial_ttl = ttl;
        }
        if let Some(k) = o.fast_retransmit {
            cfg.tcp.fast_retransmit = if k == 0 {
                FastRetransmit::Disabled
            } else {
                FastRetransmit::DupAckThreshold(k)
            };
        }
        if let Some(m) = o.ack_every {
            if m == 0 {
                return Err(ScenarioError("ack_every must be >= 1".into()));
            }
            cfg.tcp.ack_every = m;
        }
        if let Some(ref e) = o.ecmp {
            cfg.ecmp = match e.as_str() {
                "flow" => dibs::EcmpMode::FlowLevel,
                "packet" => dibs::EcmpMode::PacketLevel,
                other => return Err(ScenarioError(format!("unknown ecmp mode `{other}`"))),
            };
        }
        if let Some([xoff, xon]) = o.pfc {
            if xon >= xoff {
                return Err(ScenarioError("pfc xon must be below xoff".into()));
            }
            cfg.pfc = Some(dibs::PfcConfig {
                xoff,
                xon,
                control_delay: SimDuration::from_micros(1),
            });
        }
        Ok(cfg)
    }

    /// Builds the fully wired simulation.
    pub fn build(&self) -> Result<dibs::Simulation, ScenarioError> {
        let topo = self.topology.build(self.seed);
        let hosts = topo.num_hosts();
        if hosts < 2 {
            return Err(ScenarioError("topology needs at least 2 hosts".into()));
        }
        let cfg = self.sim_config()?;
        let mut sim = dibs::Simulation::new(topo, cfg);
        let duration = SimDuration::from_millis(self.duration_ms);
        let root = SimRng::new(self.seed);
        for (i, wl) in self.workloads.iter().enumerate() {
            match *wl {
                WorkloadSpec::Background { interarrival_ms } => {
                    let mut rng = root.fork_idx("cli/background", i as u64);
                    sim.add_flows(
                        BackgroundTraffic::paper(SimDuration::from_millis(interarrival_ms))
                            .generate(hosts, duration, &mut rng),
                    );
                }
                WorkloadSpec::Query {
                    qps,
                    degree,
                    response_bytes,
                } => {
                    if degree >= hosts {
                        return Err(ScenarioError(format!(
                            "query degree {degree} needs more than {hosts} hosts"
                        )));
                    }
                    let mut rng = root.fork_idx("cli/query", i as u64);
                    let queries = QueryTraffic {
                        qps,
                        degree,
                        response_bytes,
                    }
                    .generate(hosts, duration, &mut rng);
                    sim.add_queries(&queries);
                }
                WorkloadSpec::Incast {
                    target,
                    degree,
                    response_bytes,
                    at_ms,
                } => {
                    if target as usize >= hosts {
                        return Err(ScenarioError(format!(
                            "incast target {target} out of range"
                        )));
                    }
                    let responders: Vec<HostId> = (0..degree)
                        .map(|j| {
                            let mut h = j % (hosts - 1);
                            if h >= target as usize {
                                h += 1;
                            }
                            HostId::from_index(h)
                        })
                        .collect();
                    sim.add_queries(&[QuerySpec {
                        start: SimTime::from_millis(at_ms),
                        target: HostId(target),
                        responders,
                        response_bytes,
                    }]);
                }
                WorkloadSpec::LongLived { flows_per_pair } => {
                    if !hosts.is_multiple_of(2) {
                        return Err(ScenarioError("long_lived needs an even host count".into()));
                    }
                    sim.add_flows(dibs_workload::long_lived_pairs(hosts, flows_per_pair));
                }
                WorkloadSpec::Flow {
                    src,
                    dst,
                    bytes,
                    at_ms,
                } => {
                    if src == dst || src as usize >= hosts || dst as usize >= hosts {
                        return Err(ScenarioError(format!("bad flow endpoints {src}->{dst}")));
                    }
                    sim.add_flows([FlowSpec {
                        start: SimTime::from_millis(at_ms),
                        src: HostId(src),
                        dst: HostId(dst),
                        size: bytes,
                        class: FlowClass::Background,
                    }]);
                }
            }
        }
        Ok(sim)
    }
}

fn parse_policy(s: &str) -> Result<DibsPolicy, ScenarioError> {
    match s {
        "disabled" => Ok(DibsPolicy::Disabled),
        "random" => Ok(DibsPolicy::Random),
        "load_aware" => Ok(DibsPolicy::LoadAware),
        "flow_based" => Ok(DibsPolicy::FlowBased),
        other => {
            if let Some(onset) = other.strip_prefix("probabilistic:") {
                let onset: f64 = onset
                    .parse()
                    .map_err(|e| ScenarioError(format!("bad probabilistic onset: {e}")))?;
                if !(0.0..1.0).contains(&onset) {
                    return Err(ScenarioError("onset must be in [0, 1)".into()));
                }
                Ok(DibsPolicy::Probabilistic { onset })
            } else {
                Err(ScenarioError(format!("unknown dibs policy `{other}`")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_scenario() {
        let s = Scenario::from_json(
            r#"{
                "topology": { "type": "mini_testbed" },
                "workloads": [
                    { "type": "incast", "target": 5, "degree": 50, "response_bytes": 32000 }
                ]
            }"#,
        )
        .unwrap();
        assert_eq!(s.seed, 1);
        assert_eq!(s.scheme, Scheme::DctcpDibs);
        assert_eq!(s.duration_ms, 400);
        let sim = s.build().unwrap();
        assert_eq!(sim.topology().num_hosts(), 6);
    }

    #[test]
    fn rejects_unknown_fields() {
        let err = Scenario::from_json(
            r#"{ "topology": { "type": "mini_testbed" }, "workloads": [], "bogus": 1 }"#,
        )
        .unwrap_err();
        assert!(err.0.contains("bogus"), "{err}");
    }

    #[test]
    fn parses_all_topologies() {
        for (json, hosts) in [
            (r#"{ "type": "fat_tree", "k": 4 }"#, 16),
            (
                r#"{ "type": "fat_tree", "k": 4, "oversubscription": 4 }"#,
                16,
            ),
            (r#"{ "type": "mini_testbed" }"#, 6),
            (r#"{ "type": "single_switch", "hosts": 7 }"#, 7),
            (
                r#"{ "type": "jellyfish", "switches": 10, "degree": 3, "hosts_per_switch": 2 }"#,
                20,
            ),
            (
                r#"{ "type": "hyperx", "shape": [3, 3], "hosts_per_switch": 2 }"#,
                18,
            ),
            (
                r#"{ "type": "linear", "switches": 3, "hosts_per_switch": 2 }"#,
                6,
            ),
            (r#"{ "type": "dumbbell", "hosts_per_side": 4 }"#, 8),
        ] {
            let spec = TopologySpec::from_json(&Json::parse(json).unwrap()).unwrap();
            let topo = spec.build(7);
            assert_eq!(topo.num_hosts(), hosts, "{json}");
            assert!(topo.validate().is_ok());
        }
    }

    #[test]
    fn overrides_apply() {
        let s = Scenario::from_json(
            r#"{
                "topology": { "type": "single_switch", "hosts": 4 },
                "scheme": "dctcp",
                "overrides": {
                    "buffer_packets": 50,
                    "ecn_threshold": 10,
                    "dibs_policy": "load_aware",
                    "min_rto_us": 2000,
                    "ttl": 32,
                    "fast_retransmit": 0,
                    "ack_every": 2,
                    "ecmp": "packet",
                    "pfc": [12, 6]
                },
                "workloads": []
            }"#,
        )
        .unwrap();
        let cfg = s.sim_config().unwrap();
        assert_eq!(
            cfg.switch.buffer,
            BufferConfig::StaticPerPort { packets: 50 }
        );
        assert_eq!(cfg.switch.ecn_threshold, Some(10));
        assert_eq!(cfg.switch.dibs, DibsPolicy::LoadAware);
        assert_eq!(cfg.tcp.min_rto, SimDuration::from_micros(2000));
        assert_eq!(cfg.tcp.initial_ttl, 32);
        assert_eq!(cfg.tcp.fast_retransmit, FastRetransmit::Disabled);
        assert_eq!(cfg.tcp.ack_every, 2);
        assert_eq!(cfg.ecmp, dibs::EcmpMode::PacketLevel);
        assert!(cfg.pfc.is_some());
    }

    #[test]
    fn policy_parsing() {
        assert_eq!(parse_policy("random").unwrap(), DibsPolicy::Random);
        assert_eq!(parse_policy("disabled").unwrap(), DibsPolicy::Disabled);
        assert!(matches!(
            parse_policy("probabilistic:0.8").unwrap(),
            DibsPolicy::Probabilistic { .. }
        ));
        assert!(parse_policy("probabilistic:1.5").is_err());
        assert!(parse_policy("sideways").is_err());
    }

    #[test]
    fn validation_catches_bad_workloads() {
        let s = Scenario::from_json(
            r#"{
                "topology": { "type": "single_switch", "hosts": 4 },
                "workloads": [ { "type": "query", "qps": 10, "degree": 10, "response_bytes": 1 } ]
            }"#,
        )
        .unwrap();
        assert!(s.build().is_err());

        let s = Scenario::from_json(
            r#"{
                "topology": { "type": "single_switch", "hosts": 4 },
                "workloads": [ { "type": "flow", "src": 2, "dst": 2, "bytes": 5 } ]
            }"#,
        )
        .unwrap();
        assert!(s.build().is_err());
    }

    #[test]
    fn end_to_end_tiny_run() {
        let s = Scenario::from_json(
            r#"{
                "topology": { "type": "single_switch", "hosts": 3 },
                "duration_ms": 10,
                "drain_ms": 200,
                "workloads": [ { "type": "flow", "src": 1, "dst": 0, "bytes": 100000 } ]
            }"#,
        )
        .unwrap();
        let results = s.build().unwrap().run();
        assert_eq!(results.flows.len(), 1);
        assert_eq!(results.flows[0].bytes_delivered, 100_000);
    }
}
