//! `dibs-sim`: run a JSON scenario through the DIBS simulator.
//!
//! ```text
//! Usage: dibs-sim [OPTIONS] <scenario.json>
//!
//! Options:
//!   --json        emit a JSON report instead of text
//!   --compare     run the scenario under dctcp, dctcp_dibs, and pfabric
//!   --seed <N>    override the scenario's seed
//!   --help        show this message
//! ```

use dibs_cli::{Report, Scenario, Scheme};
use std::process::ExitCode;

const USAGE: &str = "Usage: dibs-sim [--json] [--compare] [--seed N] <scenario.json>";

fn main() -> ExitCode {
    let mut json = false;
    let mut compare = false;
    let mut seed: Option<u64> = None;
    let mut path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--compare" => compare = true,
            "--seed" => match args.next().map(|s| s.parse::<u64>()) {
                Some(Ok(s)) => seed = Some(s),
                _ => {
                    eprintln!("--seed needs a number\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
            other => {
                if path.replace(other.to_string()).is_some() {
                    eprintln!("multiple scenario files given\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut scenario = match Scenario::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(s) = seed {
        scenario.seed = s;
    }

    let schemes: Vec<Scheme> = if compare {
        vec![Scheme::Dctcp, Scheme::DctcpDibs, Scheme::Pfabric]
    } else {
        vec![scenario.scheme]
    };

    let mut reports = Vec::new();
    for scheme in schemes {
        scenario.scheme = scheme;
        let sim = match scenario.build() {
            Ok(sim) => sim,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let started = std::time::Instant::now();
        let mut results = sim.run();
        let wall = started.elapsed();
        let report = Report::from_results(&mut results);
        if !json {
            println!("=== scheme: {scheme:?} (wall {wall:.2?}) ===");
            print!("{}", report.render_text());
            println!();
        }
        reports.push((scheme, report));
    }

    if json {
        let map = dibs_json::Json::Obj(
            reports
                .into_iter()
                .map(|(scheme, r)| {
                    (
                        format!("{scheme:?}").to_lowercase(),
                        dibs_json::ToJson::to_json(&r),
                    )
                })
                .collect(),
        );
        println!("{}", map.render_pretty());
    }
    ExitCode::SUCCESS
}
