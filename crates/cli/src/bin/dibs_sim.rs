//! `dibs-sim`: run JSON scenarios through the DIBS simulator.
//!
//! ```text
//! Usage: dibs-sim [OPTIONS] <scenario.json>...
//!
//! Options:
//!   --json          emit a JSON report instead of text
//!   --compare       run each scenario under dctcp, dctcp_dibs, and pfabric
//!   --seed <N>      override the scenarios' seed
//!   --jobs <N>      worker threads for independent runs (default: all cores)
//!   --trace <SPEC>  capture an event trace; SPEC is `off`, `all`, a kind
//!                   list (`enqueue,detour`), or `flight[:CAP][:kinds]`.
//!                   Defaults to the DIBS_TRACE env var. Chrome-viewable
//!                   JSON is written under results/.
//!   --fault <SPEC>  inject faults; SPEC is `off` or `;`-separated clauses
//!                   like `link-down:t=2ms:edge3-aggr1:dur=500us`,
//!                   `switch-crash:t=5ms:core0`, `drop:p=1e-4:kind=detoured`,
//!                   `corrupt:p=1e-5`, or `random:<budget>`. Defaults to
//!                   the DIBS_FAULT env var.
//!   --digest        print one `digest <file> <scheme> <fingerprint>` line
//!                   per run (tracing never changes these lines)
//!   --help          show this message
//! ```
//!
//! Independent runs (each scenario file × scheme) fan out across the
//! deterministic sweep executor; reports are printed in argument order, so
//! output is identical for every `--jobs` value.

use dibs::{FaultSpec, RunDigest, TraceReport, TraceSpec, Tracer};
use dibs_cli::{Report, Scenario, Scheme};
use dibs_harness::Executor;
use std::process::ExitCode;

const USAGE: &str = "Usage: dibs-sim [--json] [--compare] [--seed N] [--jobs N] \
                     [--trace SPEC] [--fault SPEC] [--digest] <scenario.json>...";

/// Renders, validates, and writes one run's Chrome trace under `results/`.
fn export_chrome_trace(trace: &TraceReport, path: &str, scheme: Scheme) {
    let stem = std::path::Path::new(path).file_stem().map_or_else(
        || "scenario".to_string(),
        |s| s.to_string_lossy().into_owned(),
    );
    let rendered = trace.chrome_trace().render_pretty();
    if dibs_json::Json::parse(&rendered).is_err() {
        eprintln!("trace: internal error, Chrome JSON for {path} does not re-parse");
        return;
    }
    let scheme_tag = format!("{scheme:?}").to_lowercase();
    let out = format!("results/trace_{stem}_{scheme_tag}.json");
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(&out, &rendered))
    {
        eprintln!("trace: cannot write {out}: {e}");
        return;
    }
    eprintln!(
        "trace: {} events ({} observed, {} dropped) -> {out} (open in chrome://tracing)",
        trace.events.len(),
        trace.observed,
        trace.dropped
    );
}

fn main() -> ExitCode {
    let mut json = false;
    let mut compare = false;
    let mut digest = false;
    let mut seed: Option<u64> = None;
    let mut trace_arg: Option<String> = None;
    let mut fault_arg: Option<String> = None;
    let mut paths: Vec<String> = Vec::new();

    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let jobs = dibs_harness::take_jobs_flag(&mut raw)
        .or_else(dibs_harness::env_jobs)
        .unwrap_or_else(dibs_harness::default_jobs);

    let mut args = raw.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--compare" => compare = true,
            "--digest" => digest = true,
            "--seed" => match args.next().map(|s| s.parse::<u64>()) {
                Some(Ok(s)) => seed = Some(s),
                _ => {
                    eprintln!("--seed needs a number\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match args.next() {
                Some(s) => trace_arg = Some(s),
                None => {
                    eprintln!("--trace needs a spec (off|all|kinds|flight[:CAP][:kinds])\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--fault" => match args.next() {
                Some(s) => fault_arg = Some(s),
                None => {
                    eprintln!("--fault needs a spec (off or `;`-separated clauses)\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
            other => paths.push(other.to_string()),
        }
    }
    if paths.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let many_files = paths.len() > 1;

    // --trace beats DIBS_TRACE; absent both, tracing stays off.
    let trace_spec = {
        let raw_spec = trace_arg.or_else(|| std::env::var("DIBS_TRACE").ok());
        match raw_spec.as_deref().map(str::parse::<TraceSpec>) {
            None => TraceSpec::off(),
            Some(Ok(spec)) => spec,
            Some(Err(e)) => {
                eprintln!("bad trace spec: {e}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    };

    // --fault beats DIBS_FAULT; absent both, no faults are injected.
    // Syntax and consistency errors fail here; name-binding errors
    // surface per scenario (they depend on the topology).
    let fault_spec = {
        let raw_spec = fault_arg.or_else(|| std::env::var("DIBS_FAULT").ok());
        match raw_spec.as_deref().map(str::parse::<FaultSpec>) {
            None => FaultSpec::off(),
            Some(Ok(spec)) => spec,
            Some(Err(e)) => {
                eprintln!("bad fault spec: {e}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    };

    // Parse every scenario up front so bad input fails before any run.
    let mut runs: Vec<(String, Scenario, Scheme)> = Vec::new();
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut scenario = match Scenario::from_json(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(s) = seed {
            scenario.seed = s;
        }
        let schemes: Vec<Scheme> = if compare {
            vec![Scheme::Dctcp, Scheme::DctcpDibs, Scheme::Pfabric]
        } else {
            vec![scenario.scheme]
        };
        for scheme in schemes {
            runs.push((path.clone(), scenario.clone(), scheme));
        }
    }

    // Each (file, scheme) run is independent; fan out and report in input
    // order.
    let outcomes = Executor::new(jobs).map(runs, move |(path, mut scenario, scheme)| {
        scenario.scheme = scheme;
        let mut sim = match scenario.build() {
            Ok(sim) => sim,
            Err(e) => return (path, scheme, Err(e)),
        };
        sim.set_tracer(Tracer::from_spec(&trace_spec));
        if let Err(e) = sim.set_faults(&fault_spec) {
            return (
                path,
                scheme,
                Err(dibs_cli::scenario::ScenarioError(format!(
                    "fault spec: {e}"
                ))),
            );
        }
        let started = std::time::Instant::now();
        let mut results = sim.run();
        let wall = started.elapsed();
        let fp = digest.then(|| RunDigest::of(&results).fingerprint());
        let trace = results.trace.take();
        (
            path,
            scheme,
            Ok((Report::from_results(&mut results), wall, fp, trace)),
        )
    });

    let mut per_file: Vec<(String, Vec<(Scheme, Report)>)> = Vec::new();
    for (path, scheme, outcome) in outcomes {
        match outcome {
            Ok((report, wall, fp, trace)) => {
                if !json {
                    if many_files {
                        println!("=== {path} · scheme: {scheme:?} (wall {wall:.2?}) ===");
                    } else {
                        println!("=== scheme: {scheme:?} (wall {wall:.2?}) ===");
                    }
                    print!("{}", report.render_text());
                    println!();
                }
                if let Some(fp) = fp {
                    println!("digest {path} {scheme:?} {fp:#018x}");
                }
                if let Some(trace) = &trace {
                    export_chrome_trace(trace, &path, scheme);
                }
                match per_file.last_mut() {
                    Some((p, reports)) if *p == path => reports.push((scheme, report)),
                    _ => per_file.push((path, vec![(scheme, report)])),
                }
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if json {
        let file_obj = |reports: Vec<(Scheme, Report)>| {
            dibs_json::Json::Obj(
                reports
                    .into_iter()
                    .map(|(scheme, r)| {
                        (
                            format!("{scheme:?}").to_lowercase(),
                            dibs_json::ToJson::to_json(&r),
                        )
                    })
                    .collect(),
            )
        };
        let out = if many_files {
            dibs_json::Json::Obj(
                per_file
                    .into_iter()
                    .map(|(path, reports)| (path, file_obj(reports)))
                    .collect(),
            )
        } else {
            let (_, reports) = per_file.pop().expect("at least one scenario ran");
            file_obj(reports)
        };
        println!("{}", out.render_pretty());
    }
    ExitCode::SUCCESS
}
