#![warn(missing_docs)]

//! Scenario-driven runner for the DIBS simulator.
//!
//! The `dibs-sim` binary reads a JSON scenario (topology + scheme +
//! workloads), runs it, and prints a text summary or JSON report:
//!
//! ```text
//! dibs-sim scenario.json
//! dibs-sim --json scenario.json > report.json
//! dibs-sim --compare scenario.json     # run under dctcp / dctcp_dibs / pfabric
//! ```
//!
//! See [`scenario::Scenario`] for the file format.

pub mod report;
pub mod scenario;

pub use report::Report;
pub use scenario::{Scenario, Scheme, TopologySpec, WorkloadSpec};
