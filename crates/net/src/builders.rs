//! Topology generators.
//!
//! The paper's evaluation uses a K=8 fat-tree (128 hosts) for the NS-3
//! simulations and a small 2-aggregation / 3-edge testbed for the Click
//! experiments. The discussion section (§7) additionally motivates Jellyfish
//! and HyperX as detour-friendly topologies, and footnote 10 mentions that
//! DIBS functions even on a linear topology; generators for all of these are
//! provided here.

use crate::ids::NodeId;
use crate::topology::{LinkSpec, SwitchLayer, Topology, TopologyBuilder};
use dibs_engine::rng::SimRng;

/// Parameters for [`fat_tree`].
#[derive(Debug, Clone, Copy)]
pub struct FatTreeParams {
    /// Fat-tree arity; must be even and at least 2. K=8 gives 128 hosts.
    pub k: usize,
    /// Host-to-edge links.
    pub host_link: LinkSpec,
    /// Switch-to-switch links. Divide the rate to oversubscribe (§5.5.4).
    pub fabric_link: LinkSpec,
}

impl FatTreeParams {
    /// The paper's default fabric: K=8, 1 Gbps everywhere, 1 µs hops.
    pub fn paper_default() -> Self {
        FatTreeParams {
            k: 8,
            host_link: LinkSpec::gbit(1),
            fabric_link: LinkSpec::gbit(1),
        }
    }

    /// Same fabric with inter-switch capacity divided by `divisor`
    /// (the §5.5.4 oversubscription experiment).
    pub fn oversubscribed(divisor: u64) -> Self {
        let d = FatTreeParams::paper_default();
        FatTreeParams {
            fabric_link: d.fabric_link.slower_by(divisor),
            ..d
        }
    }

    /// Number of hosts this fat-tree will have.
    pub fn num_hosts(&self) -> usize {
        self.k * self.k * self.k / 4
    }
}

/// Builds a K-ary fat-tree [Al-Fares et al., SIGCOMM'08].
///
/// Layout: `k` pods; each pod has `k/2` edge and `k/2` aggregation switches;
/// `(k/2)^2` core switches. Edge switch `e` of a pod serves `k/2` hosts and
/// connects to every aggregation switch in its pod; aggregation switch `a`
/// connects to core switches `a*(k/2) .. (a+1)*(k/2)`.
///
/// Host ids are assigned pod-major, so host `h` lives in pod
/// `h / (k^2/4)` under edge switch `(h % (k^2/4)) / (k/2)`.
///
/// # Panics
///
/// Panics if `k` is odd or less than 2.
pub fn fat_tree(params: FatTreeParams) -> Topology {
    let k = params.k;
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree arity must be even, got {k}"
    );
    let half = k / 2;
    let mut b = TopologyBuilder::new();

    // Core switches first so their SwitchIds are stable regardless of pods.
    let cores: Vec<NodeId> = (0..half * half)
        .map(|c| b.add_switch(SwitchLayer::Core, format!("core[{c}]")))
        .collect();

    for pod in 0..k {
        let aggrs: Vec<NodeId> = (0..half)
            .map(|a| b.add_switch(SwitchLayer::Aggregation, format!("aggr[{pod}][{a}]")))
            .collect();
        let edges: Vec<NodeId> = (0..half)
            .map(|e| b.add_switch(SwitchLayer::Edge, format!("edge[{pod}][{e}]")))
            .collect();
        // Hosts and host-edge links.
        for (e, &edge) in edges.iter().enumerate() {
            for h in 0..half {
                let host = b.add_host(format!("h[{pod}][{e}][{h}]"));
                b.connect(host, edge, params.host_link);
            }
        }
        // Edge-aggregation full bipartite within the pod.
        for &edge in &edges {
            for &aggr in &aggrs {
                b.connect(edge, aggr, params.fabric_link);
            }
        }
        // Aggregation-core.
        for (a, &aggr) in aggrs.iter().enumerate() {
            for c in 0..half {
                b.connect(aggr, cores[a * half + c], params.fabric_link);
            }
        }
    }
    let topo = b.build();
    debug_assert_eq!(topo.num_hosts(), params.num_hosts());
    debug_assert!(topo.validate().is_ok());
    topo
}

/// The Emulab/Click testbed of §5.2: two aggregation switches, three edge
/// switches (each connected to both aggregations), and two servers per edge
/// switch.
pub fn mini_testbed(link: LinkSpec) -> Topology {
    let mut b = TopologyBuilder::new();
    let aggrs: Vec<NodeId> = (0..2)
        .map(|a| b.add_switch(SwitchLayer::Aggregation, format!("aggr[{a}]")))
        .collect();
    for e in 0..3 {
        let edge = b.add_switch(SwitchLayer::Edge, format!("edge[{e}]"));
        for &aggr in &aggrs {
            b.connect(edge, aggr, link);
        }
        for h in 0..2 {
            let host = b.add_host(format!("h[{e}][{h}]"));
            b.connect(host, edge, link);
        }
    }
    let topo = b.build();
    debug_assert!(topo.validate().is_ok());
    topo
}

/// `n` hosts hanging off a single switch (useful for transport unit tests
/// and pure incast microbenchmarks).
pub fn single_switch(n_hosts: usize, link: LinkSpec) -> Topology {
    let mut b = TopologyBuilder::new();
    let s = b.add_switch(SwitchLayer::Edge, "s0");
    for i in 0..n_hosts {
        let h = b.add_host(format!("h{i}"));
        b.connect(h, s, link);
    }
    b.build()
}

/// A chain of `n_switches` switches with `hosts_per_switch` hosts each
/// (footnote 10: DIBS works even here, detouring along the reverse path).
pub fn linear(n_switches: usize, hosts_per_switch: usize, link: LinkSpec) -> Topology {
    assert!(n_switches >= 1);
    let mut b = TopologyBuilder::new();
    let mut prev: Option<NodeId> = None;
    for s in 0..n_switches {
        let sw = b.add_switch(SwitchLayer::Other, format!("s{s}"));
        if let Some(p) = prev {
            b.connect(p, sw, link);
        }
        for h in 0..hosts_per_switch {
            let host = b.add_host(format!("h[{s}][{h}]"));
            b.connect(host, sw, link);
        }
        prev = Some(sw);
    }
    b.build()
}

/// Classic dumbbell: `n_left` senders and `n_right` receivers joined by a
/// two-switch bottleneck.
pub fn dumbbell(n_left: usize, n_right: usize, link: LinkSpec, bottleneck: LinkSpec) -> Topology {
    let mut b = TopologyBuilder::new();
    let sl = b.add_switch(SwitchLayer::Other, "left");
    let sr = b.add_switch(SwitchLayer::Other, "right");
    b.connect(sl, sr, bottleneck);
    for i in 0..n_left {
        let h = b.add_host(format!("l{i}"));
        b.connect(h, sl, link);
    }
    for i in 0..n_right {
        let h = b.add_host(format!("r{i}"));
        b.connect(h, sr, link);
    }
    b.build()
}

/// Parameters for [`jellyfish`].
#[derive(Debug, Clone, Copy)]
pub struct JellyfishParams {
    /// Number of switches.
    pub switches: usize,
    /// Switch-to-switch ports per switch (the random-regular-graph degree).
    pub degree: usize,
    /// Hosts attached to each switch.
    pub hosts_per_switch: usize,
    /// Host links.
    pub host_link: LinkSpec,
    /// Switch-to-switch links.
    pub fabric_link: LinkSpec,
}

/// Builds a Jellyfish topology [Singla et al., NSDI'12]: a random
/// `degree`-regular graph over the switches with `hosts_per_switch` hosts
/// each.
///
/// Uses the incremental construction from the Jellyfish paper: repeatedly
/// join random switches with free ports; when progress stalls, break an
/// existing link to free ports up. Falls back gracefully (leaving a port
/// free) only if the parameters make a regular graph impossible.
///
/// # Panics
///
/// Panics if `switches * degree` is odd or `degree >= switches`.
pub fn jellyfish(params: JellyfishParams, rng: &mut SimRng) -> Topology {
    let n = params.switches;
    let d = params.degree;
    assert!(d < n, "degree {d} must be < switches {n}");
    assert!((n * d).is_multiple_of(2), "switches*degree must be even");

    let mut b = TopologyBuilder::new();
    let sws: Vec<NodeId> = (0..n)
        .map(|s| b.add_switch(SwitchLayer::Other, format!("s{s}")))
        .collect();
    for (s, &sw) in sws.iter().enumerate() {
        for h in 0..params.hosts_per_switch {
            let host = b.add_host(format!("h[{s}][{h}]"));
            b.connect(host, sw, params.host_link);
        }
    }

    // Adjacency over switch indices.
    let mut free: Vec<usize> = vec![d; n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let connected = |adj: &Vec<Vec<usize>>, a: usize, c: usize| adj[a].contains(&c);

    let mut stall = 0usize;
    while free.iter().sum::<usize>() >= 2 {
        let open: Vec<usize> = (0..n).filter(|&i| free[i] > 0).collect();
        if open.len() == 1 || stall > 50 * n {
            // One switch left with >= 2 free ports (or stalled): break a
            // random existing edge not incident to it and rewire.
            let Some(&lone) = open.first() else { break };
            if free[lone] < 2 || edges.is_empty() {
                break;
            }
            let ei = rng.below(edges.len());
            let (a, c) = edges[ei];
            if a == lone || c == lone || connected(&adj, lone, a) || connected(&adj, lone, c) {
                stall += 1;
                continue;
            }
            edges.swap_remove(ei);
            adj[a].retain(|&x| x != c);
            adj[c].retain(|&x| x != a);
            for (x, y) in [(lone, a), (lone, c)] {
                adj[x].push(y);
                adj[y].push(x);
                edges.push((x, y));
            }
            free[lone] -= 2;
            stall = 0;
            continue;
        }
        let a = open[rng.below(open.len())];
        let c = open[rng.below(open.len())];
        if a == c || connected(&adj, a, c) {
            stall += 1;
            continue;
        }
        adj[a].push(c);
        adj[c].push(a);
        edges.push((a, c));
        free[a] -= 1;
        free[c] -= 1;
        stall = 0;
    }

    for &(a, c) in &edges {
        b.connect(sws[a], sws[c], params.fabric_link);
    }
    b.build()
}

/// Parameters for [`hyperx`].
#[derive(Debug, Clone, Copy)]
pub struct HyperXParams<'a> {
    /// Lattice shape: one entry per dimension, e.g. `&[4, 4]` for a 4x4
    /// HyperX. Switches in each dimension form a full mesh.
    pub shape: &'a [usize],
    /// Hosts attached to each switch.
    pub hosts_per_switch: usize,
    /// Host links.
    pub host_link: LinkSpec,
    /// Switch-to-switch links.
    pub fabric_link: LinkSpec,
}

/// Builds a regular HyperX topology [Ahn et al., SC'09]: switches at the
/// points of a multidimensional lattice, fully meshed along each dimension.
///
/// # Panics
///
/// Panics on an empty shape or any dimension smaller than 1.
pub fn hyperx(params: HyperXParams<'_>) -> Topology {
    let shape = params.shape;
    assert!(!shape.is_empty(), "HyperX needs at least one dimension");
    assert!(shape.iter().all(|&s| s >= 1), "dimensions must be >= 1");
    let total: usize = shape.iter().product();

    let mut b = TopologyBuilder::new();
    let sws: Vec<NodeId> = (0..total)
        .map(|i| b.add_switch(SwitchLayer::Other, format!("x{i}")))
        .collect();
    for (i, &sw) in sws.iter().enumerate() {
        for h in 0..params.hosts_per_switch {
            let host = b.add_host(format!("h[{i}][{h}]"));
            b.connect(host, sw, params.host_link);
        }
    }

    // Mixed-radix coordinates; connect each pair differing in one coordinate.
    let coord = |mut i: usize| -> Vec<usize> {
        shape
            .iter()
            .map(|&s| {
                let c = i % s;
                i /= s;
                c
            })
            .collect()
    };
    for i in 0..total {
        let ci = coord(i);
        for j in (i + 1)..total {
            let cj = coord(j);
            let diff = ci.iter().zip(&cj).filter(|(a, b)| a != b).count();
            if diff == 1 {
                b.connect(sws[i], sws[j], params.fabric_link);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::SwitchLayer;

    #[test]
    fn fat_tree_k4_shape() {
        let t = fat_tree(FatTreeParams {
            k: 4,
            host_link: LinkSpec::gbit(1),
            fabric_link: LinkSpec::gbit(1),
        });
        assert_eq!(t.num_hosts(), 16);
        assert_eq!(t.num_switches(), 4 + 8 + 8); // 4 core, 8 aggr, 8 edge.
        assert!(t.validate().is_ok());
        // Every switch in a K=4 fat-tree has exactly 4 ports.
        for &sw in t.switch_nodes() {
            assert_eq!(t.num_ports(sw), 4, "switch {} port count", t.node(sw).name);
        }
    }

    #[test]
    fn fat_tree_k8_matches_paper() {
        let t = fat_tree(FatTreeParams::paper_default());
        assert_eq!(t.num_hosts(), 128);
        assert_eq!(t.num_switches(), 80);
        // 128 host links + 8 pods * (16 edge-aggr + 16 aggr-core).
        assert_eq!(t.links().len(), 128 + 8 * 32);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn fat_tree_layers() {
        let t = fat_tree(FatTreeParams {
            k: 4,
            host_link: LinkSpec::gbit(1),
            fabric_link: LinkSpec::gbit(1),
        });
        let mut edge = 0;
        let mut aggr = 0;
        let mut core = 0;
        for &sw in t.switch_nodes() {
            match t.layer(sw) {
                SwitchLayer::Edge => edge += 1,
                SwitchLayer::Aggregation => aggr += 1,
                SwitchLayer::Core => core += 1,
                SwitchLayer::Other => panic!("unexpected layer"),
            }
        }
        assert_eq!((edge, aggr, core), (8, 8, 4));
    }

    #[test]
    fn fat_tree_oversubscription_lowers_fabric_only() {
        let t = fat_tree(FatTreeParams::oversubscribed(4));
        for (pr, port) in t.directed_edges() {
            let host_side = t.is_host(pr.node) || port.peer_is_host;
            if host_side {
                assert_eq!(port.rate_bps, 1_000_000_000);
            } else {
                assert_eq!(port.rate_bps, 250_000_000);
            }
        }
    }

    #[test]
    fn mini_testbed_shape() {
        let t = mini_testbed(LinkSpec::gbit(1));
        assert_eq!(t.num_hosts(), 6);
        assert_eq!(t.num_switches(), 5);
        assert_eq!(t.links().len(), 6 + 6); // 6 host links, 3 edges * 2 aggrs.
        assert!(t.validate().is_ok());
    }

    #[test]
    fn linear_and_dumbbell() {
        let t = linear(4, 2, LinkSpec::gbit(1));
        assert_eq!(t.num_hosts(), 8);
        assert_eq!(t.num_switches(), 4);
        assert!(t.validate().is_ok());

        let d = dumbbell(3, 3, LinkSpec::gbit(1), LinkSpec::gbit(5));
        assert_eq!(d.num_hosts(), 6);
        assert_eq!(d.num_switches(), 2);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn jellyfish_is_regular() {
        let mut rng = SimRng::new(42);
        let t = jellyfish(
            JellyfishParams {
                switches: 20,
                degree: 4,
                hosts_per_switch: 2,
                host_link: LinkSpec::gbit(1),
                fabric_link: LinkSpec::gbit(1),
            },
            &mut rng,
        );
        assert_eq!(t.num_hosts(), 40);
        assert_eq!(t.num_switches(), 20);
        assert!(t.validate().is_ok());
        // Each switch: 2 host ports + exactly `degree` fabric ports.
        for &sw in t.switch_nodes() {
            assert_eq!(t.num_ports(sw), 6, "switch {}", t.node(sw).name);
        }
    }

    #[test]
    fn jellyfish_deterministic_per_seed() {
        let build = |seed| {
            let mut rng = SimRng::new(seed);
            let t = jellyfish(
                JellyfishParams {
                    switches: 12,
                    degree: 3,
                    hosts_per_switch: 1,
                    host_link: LinkSpec::gbit(1),
                    fabric_link: LinkSpec::gbit(1),
                },
                &mut rng,
            );
            t.links()
                .iter()
                .map(|l| (l.a.node.0, l.b.node.0))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(7), build(7));
    }

    #[test]
    fn hyperx_2d_shape() {
        let t = hyperx(HyperXParams {
            shape: &[3, 3],
            hosts_per_switch: 2,
            host_link: LinkSpec::gbit(1),
            fabric_link: LinkSpec::gbit(1),
        });
        assert_eq!(t.num_switches(), 9);
        assert_eq!(t.num_hosts(), 18);
        // Each switch meshes with 2 others per dimension: 4 fabric + 2 host ports.
        for &sw in t.switch_nodes() {
            assert_eq!(t.num_ports(sw), 6);
        }
        assert!(t.validate().is_ok());
    }

    #[test]
    fn hyperx_1d_is_full_mesh() {
        let t = hyperx(HyperXParams {
            shape: &[5],
            hosts_per_switch: 1,
            host_link: LinkSpec::gbit(1),
            fabric_link: LinkSpec::gbit(1),
        });
        // 5 host links + C(5,2) = 10 fabric links.
        assert_eq!(t.links().len(), 15);
    }
}
