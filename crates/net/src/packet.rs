//! Packet representation.
//!
//! Packets are metadata-only: the simulator never materializes payload
//! bytes. A packet is `Clone + Copy`-cheap (a few dozen bytes) and is moved
//! by value through queues and events.

use crate::ids::{FlowId, HostId, PacketId};
use dibs_engine::time::SimTime;

/// TCP/IP header overhead charged to every segment, in bytes.
pub const HEADER_BYTES: u32 = 40;
/// Minimum Ethernet frame size, in bytes.
pub const MIN_FRAME_BYTES: u32 = 64;
/// Default initial TTL (matches common OS defaults and the paper's "Max").
pub const DEFAULT_TTL: u8 = 255;

/// Whether a packet carries data or acknowledges it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// A data segment; `seq` is the offset of its first payload byte.
    Data,
    /// A (cumulative) acknowledgment; `seq` is the next expected byte.
    Ack,
}

/// A simulated packet.
///
/// # Examples
///
/// ```
/// use dibs_net::packet::Packet;
/// use dibs_net::ids::{FlowId, HostId, PacketId};
/// use dibs_engine::time::SimTime;
///
/// let p = Packet::data(
///     PacketId(0), FlowId(1), HostId(0), HostId(5),
///     0, 1460, 64, SimTime::ZERO,
/// );
/// assert_eq!(p.wire_bytes, 1500);
/// assert!(p.is_data());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Unique per-transmission id (retransmissions get fresh ids).
    pub id: PacketId,
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Sending host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Data or acknowledgment.
    pub kind: PacketKind,
    /// Byte offset (data) or cumulative ack (ack).
    pub seq: u64,
    /// Payload bytes carried (0 for pure acks).
    pub payload_bytes: u32,
    /// Bytes occupied on the wire (payload + headers, floor at min frame).
    pub wire_bytes: u32,
    /// ECN Congestion Experienced: set by switches whose queue exceeds the
    /// marking threshold.
    pub ce: bool,
    /// ECN Echo: on acks, relays the CE bit of the acknowledged data.
    pub ece: bool,
    /// Remaining hop budget; switches decrement it and drop at zero.
    pub ttl: u8,
    /// pFabric priority: the flow's remaining size when the packet was sent.
    /// Lower values are higher priority. `u64::MAX` means "unprioritized".
    pub priority: u64,
    /// Number of times any switch detoured this packet (DIBS diagnostics).
    pub detours: u16,
    /// Ingress port at the switch currently buffering the packet
    /// (maintained by the simulator for PFC ingress accounting).
    pub last_ingress: u16,
    /// Total switch hops traversed (diagnostics).
    pub hops: u16,
    /// When the sender emitted this packet.
    pub sent_at: SimTime,
    /// On acks: the echoed `sent_at` of the data packet that triggered the
    /// ack (TCP timestamps, RFC 7323). Lets the sender take RTT samples
    /// that stay valid across retransmissions.
    pub ts_echo: Option<SimTime>,
    /// Whether this is a retransmission (diagnostics).
    pub retransmit: bool,
}

impl Packet {
    /// Builds a data segment.
    #[allow(clippy::too_many_arguments)]
    pub fn data(
        id: PacketId,
        flow: FlowId,
        src: HostId,
        dst: HostId,
        seq: u64,
        payload_bytes: u32,
        ttl: u8,
        sent_at: SimTime,
    ) -> Self {
        Packet {
            id,
            flow,
            src,
            dst,
            kind: PacketKind::Data,
            seq,
            payload_bytes,
            wire_bytes: (payload_bytes + HEADER_BYTES).max(MIN_FRAME_BYTES),
            ce: false,
            ece: false,
            ttl,
            priority: u64::MAX,
            detours: 0,
            last_ingress: 0,
            hops: 0,
            sent_at,
            ts_echo: None,
            retransmit: false,
        }
    }

    /// Builds a pure acknowledgment.
    #[allow(clippy::too_many_arguments)]
    pub fn ack(
        id: PacketId,
        flow: FlowId,
        src: HostId,
        dst: HostId,
        ack_seq: u64,
        ece: bool,
        ttl: u8,
        sent_at: SimTime,
    ) -> Self {
        Packet {
            id,
            flow,
            src,
            dst,
            kind: PacketKind::Ack,
            seq: ack_seq,
            payload_bytes: 0,
            wire_bytes: MIN_FRAME_BYTES,
            ce: false,
            ece,
            ttl,
            priority: u64::MAX,
            detours: 0,
            last_ingress: 0,
            hops: 0,
            sent_at,
            ts_echo: None,
            retransmit: false,
        }
    }

    /// Whether this is a data segment.
    pub fn is_data(&self) -> bool {
        self.kind == PacketKind::Data
    }

    /// Whether this is an acknowledgment.
    pub fn is_ack(&self) -> bool {
        self.kind == PacketKind::Ack
    }

    /// The byte just past this data segment's payload.
    pub fn seq_end(&self) -> u64 {
        self.seq + u64::from(self.payload_bytes)
    }

    /// Marks the packet with Congestion Experienced.
    pub fn mark_ce(&mut self) {
        self.ce = true;
    }

    /// Decrements TTL; returns `false` when the packet must be dropped.
    pub fn decrement_ttl(&mut self) -> bool {
        if self.ttl == 0 {
            return false;
        }
        self.ttl -= 1;
        self.ttl > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data() -> Packet {
        Packet::data(
            PacketId(1),
            FlowId(2),
            HostId(3),
            HostId(4),
            1460,
            1460,
            DEFAULT_TTL,
            SimTime::ZERO,
        )
    }

    #[test]
    fn wire_size_includes_headers() {
        let p = sample_data();
        assert_eq!(p.wire_bytes, 1500);
        assert_eq!(p.seq_end(), 2920);
    }

    #[test]
    fn tiny_payload_floors_at_min_frame() {
        let p = Packet::data(
            PacketId(0),
            FlowId(0),
            HostId(0),
            HostId(1),
            0,
            1,
            64,
            SimTime::ZERO,
        );
        assert_eq!(p.wire_bytes, MIN_FRAME_BYTES);
    }

    #[test]
    fn ack_is_minimum_frame() {
        let a = Packet::ack(
            PacketId(0),
            FlowId(0),
            HostId(1),
            HostId(0),
            2920,
            true,
            64,
            SimTime::ZERO,
        );
        assert_eq!(a.wire_bytes, MIN_FRAME_BYTES);
        assert!(a.is_ack());
        assert!(a.ece);
        assert_eq!(a.payload_bytes, 0);
    }

    #[test]
    fn ttl_decrements_to_drop() {
        let mut p = sample_data();
        p.ttl = 2;
        assert!(p.decrement_ttl());
        assert!(!p.decrement_ttl());
        assert_eq!(p.ttl, 0);
        // Repeated calls stay "drop".
        assert!(!p.decrement_ttl());
    }

    #[test]
    fn ce_marking() {
        let mut p = sample_data();
        assert!(!p.ce);
        p.mark_ce();
        assert!(p.ce);
    }
}
