//! The topology graph: nodes, ports, and duplex links.

use crate::ids::{HostId, LinkId, NodeId, PortRef, SwitchId};
use dibs_engine::time::SimDuration;
use std::fmt;

/// Which tier of the data-center fabric a switch belongs to.
///
/// Used for routing-free diagnostics (e.g. grouping the detour timeline of
/// Figure 2 by layer); routing itself never consults the layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchLayer {
    /// Top-of-rack / edge switch, directly connected to hosts.
    Edge,
    /// Pod aggregation switch.
    Aggregation,
    /// Core (spine) switch.
    Core,
    /// Anything else (random topologies, test rigs).
    Other,
}

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An end host; `HostId` indexes the topology's host table.
    Host(HostId),
    /// A switch; `SwitchId` indexes the topology's switch table.
    Switch(SwitchId, SwitchLayer),
}

/// One directed attachment point of a node to a link.
#[derive(Debug, Clone, Copy)]
pub struct Port {
    /// The node on the far end of this port's link.
    pub peer: NodeId,
    /// The far node's port index for the same link.
    pub peer_port: usize,
    /// Transmission rate out of this port, bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay to the peer.
    pub delay: SimDuration,
    /// The undirected link this port belongs to.
    pub link: LinkId,
    /// Whether the peer is a host (cached; DIBS must not detour to hosts).
    pub peer_is_host: bool,
}

/// A node: its kind plus its ports.
#[derive(Debug, Clone)]
pub struct Node {
    /// Host or switch.
    pub kind: NodeKind,
    /// Attached ports, densely indexed.
    pub ports: Vec<Port>,
    /// Optional human-readable name (e.g. `edge[2][1]`).
    pub name: String,
}

/// An undirected link record (for link-level statistics).
#[derive(Debug, Clone, Copy)]
pub struct Link {
    /// One endpoint.
    pub a: PortRef,
    /// The other endpoint.
    pub b: PortRef,
    /// Rate of each direction, bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub delay: SimDuration,
}

/// Rate and delay for a class of links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// Bits per second in each direction.
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub delay: SimDuration,
}

impl LinkSpec {
    /// 1 Gbps with the given propagation delay in microseconds.
    pub fn gbit(delay_us: u64) -> Self {
        LinkSpec {
            rate_bps: 1_000_000_000,
            delay: SimDuration::from_micros(delay_us),
        }
    }

    /// Returns the spec with the rate divided by `divisor` (for
    /// oversubscribed fabrics).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn slower_by(self, divisor: u64) -> Self {
        assert!(divisor > 0, "divisor must be positive");
        LinkSpec {
            rate_bps: self.rate_bps / divisor,
            delay: self.delay,
        }
    }
}

/// An immutable network graph.
///
/// Build one with [`TopologyBuilder`] or one of the generators in
/// [`crate::builders`].
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    hosts: Vec<NodeId>,
    switches: Vec<NodeId>,
}

impl Topology {
    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node record for `id`.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All undirected links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Node ids of all hosts, ordered by `HostId`.
    pub fn host_nodes(&self) -> &[NodeId] {
        &self.hosts
    }

    /// Node ids of all switches, ordered by `SwitchId`.
    pub fn switch_nodes(&self) -> &[NodeId] {
        &self.switches
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    /// Number of nodes (hosts + switches).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node id of a host.
    pub fn host_node(&self, h: HostId) -> NodeId {
        self.hosts[h.index()]
    }

    /// The node id of a switch.
    pub fn switch_node(&self, s: SwitchId) -> NodeId {
        self.switches[s.index()]
    }

    /// The host id of a node, if it is a host.
    pub fn as_host(&self, n: NodeId) -> Option<HostId> {
        match self.node(n).kind {
            NodeKind::Host(h) => Some(h),
            NodeKind::Switch(..) => None,
        }
    }

    /// The switch id of a node, if it is a switch.
    pub fn as_switch(&self, n: NodeId) -> Option<SwitchId> {
        match self.node(n).kind {
            NodeKind::Switch(s, _) => Some(s),
            NodeKind::Host(_) => None,
        }
    }

    /// The layer of a switch node (`Other` for hosts).
    pub fn layer(&self, n: NodeId) -> SwitchLayer {
        match self.node(n).kind {
            NodeKind::Switch(_, l) => l,
            NodeKind::Host(_) => SwitchLayer::Other,
        }
    }

    /// Whether the node is a host.
    pub fn is_host(&self, n: NodeId) -> bool {
        matches!(self.node(n).kind, NodeKind::Host(_))
    }

    /// The port record at `(node, port)`.
    pub fn port(&self, node: NodeId, port: usize) -> &Port {
        &self.nodes[node.index()].ports[port]
    }

    /// Number of ports on a node.
    pub fn num_ports(&self, node: NodeId) -> usize {
        self.nodes[node.index()].ports.len()
    }

    /// The single uplink port of a host.
    ///
    /// # Panics
    ///
    /// Panics if the node is not a host with exactly one port.
    pub fn host_uplink(&self, h: HostId) -> &Port {
        let n = self.host_node(h);
        let ports = &self.nodes[n.index()].ports;
        assert_eq!(ports.len(), 1, "host {h} must have exactly one port");
        &ports[0]
    }

    /// Iterates over all directed edges as `(PortRef, &Port)`.
    pub fn directed_edges(&self) -> impl Iterator<Item = (PortRef, &Port)> + '_ {
        self.nodes.iter().enumerate().flat_map(|(ni, node)| {
            node.ports.iter().enumerate().map(move |(pi, p)| {
                (
                    PortRef {
                        node: NodeId::from_index(ni),
                        port: pi,
                    },
                    p,
                )
            })
        })
    }

    /// Verifies structural invariants: port symmetry and full connectivity.
    ///
    /// Returns a description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        for (pr, port) in self.directed_edges() {
            let back = self.port(port.peer, port.peer_port);
            if back.peer != pr.node || back.peer_port != pr.port {
                return Err(format!("asymmetric link at {pr}"));
            }
            if back.rate_bps != port.rate_bps || back.delay != port.delay {
                return Err(format!("mismatched link parameters at {pr}"));
            }
            if port.peer_is_host != self.is_host(port.peer) {
                return Err(format!("stale peer_is_host cache at {pr}"));
            }
        }
        // Connectivity via BFS from node 0.
        if !self.nodes.is_empty() {
            let mut seen = vec![false; self.nodes.len()];
            let mut stack = vec![0usize];
            seen[0] = true;
            while let Some(n) = stack.pop() {
                for p in &self.nodes[n].ports {
                    let m = p.peer.index();
                    if !seen[m] {
                        seen[m] = true;
                        stack.push(m);
                    }
                }
            }
            if let Some(i) = seen.iter().position(|&s| !s) {
                return Err(format!("node {i} unreachable from node 0"));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Topology({} hosts, {} switches, {} links)",
            self.num_hosts(),
            self.num_switches(),
            self.links.len()
        )
    }
}

/// Incremental topology construction.
///
/// # Examples
///
/// ```
/// use dibs_net::topology::{TopologyBuilder, LinkSpec, SwitchLayer};
///
/// let mut b = TopologyBuilder::new();
/// let s = b.add_switch(SwitchLayer::Edge, "tor0");
/// let h0 = b.add_host("h0");
/// let h1 = b.add_host("h1");
/// b.connect(h0, s, LinkSpec::gbit(1));
/// b.connect(h1, s, LinkSpec::gbit(1));
/// let topo = b.build();
/// assert_eq!(topo.num_hosts(), 2);
/// assert!(topo.validate().is_ok());
/// ```
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
    links: Vec<Link>,
    hosts: Vec<NodeId>,
    switches: Vec<NodeId>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a host; returns its node id.
    pub fn add_host(&mut self, name: impl Into<String>) -> NodeId {
        let node = NodeId::from_index(self.nodes.len());
        let host = HostId::from_index(self.hosts.len());
        self.nodes.push(Node {
            kind: NodeKind::Host(host),
            ports: Vec::new(),
            name: name.into(),
        });
        self.hosts.push(node);
        node
    }

    /// Adds a switch; returns its node id.
    pub fn add_switch(&mut self, layer: SwitchLayer, name: impl Into<String>) -> NodeId {
        let node = NodeId::from_index(self.nodes.len());
        let sw = SwitchId::from_index(self.switches.len());
        self.nodes.push(Node {
            kind: NodeKind::Switch(sw, layer),
            ports: Vec::new(),
            name: name.into(),
        });
        self.switches.push(node);
        node
    }

    /// Connects two nodes with a duplex link; returns the link id.
    ///
    /// # Panics
    ///
    /// Panics on self-links.
    pub fn connect(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> LinkId {
        assert_ne!(a, b, "self-links are not allowed");
        let link = LinkId::from_index(self.links.len());
        let pa = self.nodes[a.index()].ports.len();
        let pb = self.nodes[b.index()].ports.len();
        let a_is_host = matches!(self.nodes[a.index()].kind, NodeKind::Host(_));
        let b_is_host = matches!(self.nodes[b.index()].kind, NodeKind::Host(_));
        self.nodes[a.index()].ports.push(Port {
            peer: b,
            peer_port: pb,
            rate_bps: spec.rate_bps,
            delay: spec.delay,
            link,
            peer_is_host: b_is_host,
        });
        self.nodes[b.index()].ports.push(Port {
            peer: a,
            peer_port: pa,
            rate_bps: spec.rate_bps,
            delay: spec.delay,
            link,
            peer_is_host: a_is_host,
        });
        self.links.push(Link {
            a: PortRef { node: a, port: pa },
            b: PortRef { node: b, port: pb },
            rate_bps: spec.rate_bps,
            delay: spec.delay,
        });
        link
    }

    /// Finalizes the topology.
    pub fn build(self) -> Topology {
        Topology {
            nodes: self.nodes,
            links: self.links,
            hosts: self.hosts,
            switches: self.switches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(n: usize) -> Topology {
        let mut b = TopologyBuilder::new();
        let s = b.add_switch(SwitchLayer::Edge, "s");
        for i in 0..n {
            let h = b.add_host(format!("h{i}"));
            b.connect(h, s, LinkSpec::gbit(1));
        }
        b.build()
    }

    #[test]
    fn star_structure() {
        let t = star(4);
        assert_eq!(t.num_hosts(), 4);
        assert_eq!(t.num_switches(), 1);
        assert_eq!(t.links().len(), 4);
        assert_eq!(t.num_ports(t.switch_node(SwitchId(0))), 4);
        assert!(t.validate().is_ok());
        // Host uplinks point at the switch and are flagged as switch-facing.
        for h in 0..4 {
            let up = t.host_uplink(HostId(h));
            assert_eq!(up.peer, t.switch_node(SwitchId(0)));
            assert!(!up.peer_is_host);
        }
        // Switch ports face hosts.
        for p in 0..4 {
            assert!(t.port(t.switch_node(SwitchId(0)), p).peer_is_host);
        }
    }

    #[test]
    fn validate_detects_disconnection() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch(SwitchLayer::Other, "s0");
        let s1 = b.add_switch(SwitchLayer::Other, "s1");
        let h = b.add_host("h");
        b.connect(h, s0, LinkSpec::gbit(1));
        let _ = s1; // s1 left unconnected.
        let t = b.build();
        assert!(t.validate().is_err());
    }

    #[test]
    fn directed_edges_count() {
        let t = star(3);
        assert_eq!(t.directed_edges().count(), 6);
    }

    #[test]
    fn link_spec_oversubscription() {
        let spec = LinkSpec::gbit(1).slower_by(4);
        assert_eq!(spec.rate_bps, 250_000_000);
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_panics() {
        let mut b = TopologyBuilder::new();
        let s = b.add_switch(SwitchLayer::Other, "s");
        b.connect(s, s, LinkSpec::gbit(1));
    }
}
