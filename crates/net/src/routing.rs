//! Destination-based forwarding tables with flow-level ECMP.
//!
//! Following the paper's requirements (§3): switches forward on FIBs
//! computed over all shortest paths, picking among equal-cost next hops with
//! a flow-level hash. Crucially, the FIB answers "next hop toward host H"
//! from *any* node, so a packet that DIBS detoured off its shortest path
//! still routes correctly from wherever it lands.

use crate::ids::{FlowId, HostId, NodeId};
use crate::topology::Topology;
use dibs_engine::rng::splitmix64;
use std::collections::VecDeque;

/// All-pairs shortest-path forwarding state.
///
/// For every `(node, destination host)` pair the FIB stores the set of ports
/// that lie on *some* shortest path, plus the distance in hops.
///
/// Storage is CSR (compressed sparse row): one contiguous pool of port
/// numbers indexed by per-`(node, dst)` offsets, plus a flat distance
/// array. A lookup is two array reads and a slice — no pointer chasing
/// through nested `Vec`s — and the whole table lives in three allocations,
/// so the hot forwarding path stays cache-resident.
///
/// # Examples
///
/// ```
/// use dibs_net::builders::{fat_tree, FatTreeParams};
/// use dibs_net::routing::Fib;
/// use dibs_net::ids::HostId;
///
/// let topo = fat_tree(FatTreeParams { k: 4, ..FatTreeParams::paper_default() });
/// let fib = Fib::compute(&topo);
/// // Fat-tree diameter is 6 host-to-host hops.
/// assert_eq!(fib.distance(topo.host_node(HostId(0)), HostId(15)), 6);
/// ```
#[derive(Debug, Clone)]
pub struct Fib {
    /// Hosts per row; `(node, dst)` flattens to `node * num_hosts + dst`.
    num_hosts: usize,
    /// Concatenated equal-cost out-port lists, node-major then dst-minor,
    /// each list ascending by port index.
    port_pool: Vec<u16>,
    /// `offsets[i]..offsets[i + 1]` bounds entry `i`'s slice of
    /// `port_pool` (length `num_nodes * num_hosts + 1`).
    offsets: Vec<u32>,
    /// Shortest hop count per entry (`u16::MAX` if unreachable).
    dist: Vec<u16>,
    /// Per-instance ECMP salt so distinct simulations hash differently.
    salt: u64,
}

impl Fib {
    /// Computes the FIB with the default salt.
    pub fn compute(topo: &Topology) -> Self {
        Self::compute_salted(topo, 0)
    }

    /// Computes the FIB; `salt` perturbs the ECMP hash (used to decorrelate
    /// repeated runs).
    pub fn compute_salted(topo: &Topology, salt: u64) -> Self {
        Self::compute_masked(topo, salt, &[])
    }

    /// Computes the FIB over the topology minus a set of disabled links.
    ///
    /// `disabled` is indexed by [`LinkId`](crate::ids::LinkId); links past
    /// its end (or an empty slice) count as up. Ports on a disabled link
    /// are skipped in both the BFS and the equal-cost port assembly, so the
    /// result is exactly what [`Fib::compute_salted`] would produce on the
    /// degraded topology. Fault injection recomputes the FIB through this
    /// on every link state change; destinations cut off entirely simply get
    /// empty next-hop sets.
    pub fn compute_masked(topo: &Topology, salt: u64, disabled: &[bool]) -> Self {
        let n = topo.num_nodes();
        let h = topo.num_hosts();
        let link_up =
            |link: crate::ids::LinkId| !disabled.get(link.index()).copied().unwrap_or(false);
        let mut dist = vec![u16::MAX; n * h];

        // One reverse BFS per destination host. Distances are from each node
        // *to* the destination; a port is usable iff its peer is strictly
        // closer.
        let mut queue = VecDeque::new();
        for dst in 0..h {
            let dst_host = HostId::from_index(dst);
            let dst_node = topo.host_node(dst_host);
            dist[dst_node.index() * h + dst] = 0;
            queue.clear();
            queue.push_back(dst_node);
            while let Some(u) = queue.pop_front() {
                let du = dist[u.index() * h + dst];
                // Hosts other than the destination do not forward traffic.
                if topo.is_host(u) && u != dst_node {
                    continue;
                }
                for p in &topo.node(u).ports {
                    if !link_up(p.link) {
                        continue;
                    }
                    let v = p.peer;
                    if dist[v.index() * h + dst] == u16::MAX {
                        dist[v.index() * h + dst] = du + 1;
                        queue.push_back(v);
                    }
                }
            }
        }

        // CSR assembly: walk entries node-major/dst-minor (the same order
        // lookups use) appending each equal-cost port list — ascending by
        // construction of the port iteration — to the shared pool.
        let mut offsets = Vec::with_capacity(n * h + 1);
        let mut port_pool = Vec::new();
        offsets.push(0u32);
        for node in 0..n {
            let ports = &topo.node(NodeId::from_index(node)).ports;
            for dst in 0..h {
                let dn = dist[node * h + dst];
                if dn != u16::MAX && dn != 0 {
                    for (i, p) in ports.iter().enumerate() {
                        if link_up(p.link) && dist[p.peer.index() * h + dst] == dn - 1 {
                            port_pool.push(u16::try_from(i).expect("port index fits u16"));
                        }
                    }
                }
                offsets.push(u32::try_from(port_pool.len()).expect("port pool fits u32"));
            }
        }
        Fib {
            num_hosts: h,
            port_pool,
            offsets,
            dist,
            salt,
        }
    }

    /// Flat index of the `(node, dst)` entry.
    #[inline]
    fn entry(&self, node: NodeId, dst: HostId) -> usize {
        node.index() * self.num_hosts + dst.index()
    }

    /// Shortest-path distance from `node` to host `dst`, in hops.
    ///
    /// Returns `u16::MAX` when unreachable.
    pub fn distance(&self, node: NodeId, dst: HostId) -> u16 {
        self.dist[self.entry(node, dst)]
    }

    /// All equal-cost out-ports from `node` toward `dst`.
    pub fn next_hops(&self, node: NodeId, dst: HostId) -> &[u16] {
        let i = self.entry(node, dst);
        // u32 -> usize is a widening cast on every supported target.
        #[allow(clippy::cast_possible_truncation)]
        {
            &self.port_pool[self.offsets[i] as usize..self.offsets[i + 1] as usize]
        }
    }

    /// The ECMP-selected out-port for a given flow, or `None` if the
    /// destination is unreachable from `node`.
    ///
    /// Selection is flow-level: all packets of `flow` leaving `node` toward
    /// `dst` pick the same port.
    pub fn select_port(&self, node: NodeId, dst: HostId, flow: FlowId) -> Option<usize> {
        let hops = self.next_hops(node, dst);
        match hops.len() {
            0 => None,
            1 => Some(usize::from(hops[0])),
            n => {
                let h = ecmp_hash(flow, node, dst, self.salt);
                // `h % n` is < n, which is a usize (the port count).
                #[allow(clippy::cast_possible_truncation)]
                Some(usize::from(hops[(h % n as u64) as usize]))
            }
        }
    }

    /// [`Fib::select_port`] through an [`EcmpMemo`]: the ECMP hash and
    /// port choice are computed once per `(flow, node, dst)` and replayed
    /// from the memo for every later packet of the flow at that node.
    ///
    /// Behaviorally identical to `select_port` (flow-level ECMP is a pure
    /// function of the key), so memoization never perturbs a run.
    pub fn select_port_memo(
        &self,
        memo: &mut EcmpMemo,
        node: NodeId,
        dst: HostId,
        flow: FlowId,
    ) -> Option<usize> {
        let v = memo.get_or_insert_with(flow, node, dst, || {
            match self.select_port(node, dst, flow) {
                // Encode `Some(port)` as `port + 1`, `None` as 0.
                Some(p) => u64::try_from(p).expect("port index fits u64") + 1,
                None => 0,
            }
        });
        if v == 0 {
            None
        } else {
            Some(usize::try_from(v - 1).expect("port index fits usize"))
        }
    }

    /// The ECMP salt in use.
    pub fn salt(&self) -> u64 {
        self.salt
    }

    /// Packet-level ECMP (§6): picks among equal-cost ports using
    /// per-packet entropy instead of the flow hash, spraying one flow's
    /// packets across all shortest paths.
    pub fn select_port_per_packet(
        &self,
        node: NodeId,
        dst: HostId,
        packet_entropy: u64,
    ) -> Option<usize> {
        let hops = self.next_hops(node, dst);
        match hops.len() {
            0 => None,
            1 => Some(usize::from(hops[0])),
            n => {
                let h = splitmix64(packet_entropy ^ self.salt ^ (u64::from(node.0) << 32));
                // `h % n` is < n, which is a usize (the port count).
                #[allow(clippy::cast_possible_truncation)]
                Some(usize::from(hops[(h % n as u64) as usize]))
            }
        }
    }
}

/// Flow-level ECMP hash.
///
/// Stable across packets of one flow at one node; well mixed across flows
/// and nodes.
pub fn ecmp_hash(flow: FlowId, node: NodeId, dst: HostId, salt: u64) -> u64 {
    let mut x = salt ^ 0xECB9_55C0_11EC_0DD5;
    x = splitmix64(x ^ u64::from(flow.0));
    x = splitmix64(x ^ (u64::from(node.0) << 32) ^ u64::from(dst.0));
    splitmix64(x)
}

/// One direct-mapped memo slot; `node == u32::MAX` marks it empty (no
/// real topology reaches four billion nodes).
#[derive(Debug, Clone, Copy)]
struct MemoSlot {
    flow: u32,
    node: u32,
    dst: u32,
    value: u64,
}

impl MemoSlot {
    const EMPTY: MemoSlot = MemoSlot {
        flow: u32::MAX,
        node: u32::MAX,
        dst: u32::MAX,
        value: 0,
    };
}

/// Direct-mapped memo for per-flow ECMP decisions.
///
/// Flow-level ECMP is a pure function of `(flow, node, dst)` (plus the
/// FIB's fixed salt), yet the hot path recomputes the three-round
/// `splitmix64` chain for every packet at every hop. This cache keys a
/// `u64` result on that triple: [`Fib::select_port_memo`] stores the
/// chosen port, and the switch detour path stores the raw flow hash. On a
/// collision the old entry is simply replaced — the memo is a pure
/// accelerator, never a source of nondeterminism, because the cached value
/// is always exactly what recomputation would produce.
#[derive(Debug, Clone, Default)]
pub struct EcmpMemo {
    /// Power-of-two slot table (lazily sized if constructed via `default`).
    slots: Vec<MemoSlot>,
    hits: u64,
    misses: u64,
}

impl EcmpMemo {
    /// Creates a memo with `slots` entries, rounded up to a power of two.
    ///
    /// Size it to the expected working set: one entry per concurrently
    /// active `(flow, node)` pair. The simulator core uses a few thousand
    /// slots for the whole fabric; a per-switch detour memo needs far
    /// fewer.
    pub fn with_slots(slots: usize) -> Self {
        EcmpMemo {
            slots: vec![MemoSlot::EMPTY; slots.next_power_of_two().max(64)],
            hits: 0,
            misses: 0,
        }
    }

    /// Cached lookups served without recomputing.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that fell through to `compute`.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Forgets every cached entry (the hit/miss counters survive).
    ///
    /// Required whenever the function being memoized changes — e.g. the
    /// FIB was recomputed after a link failure — since stale entries would
    /// otherwise replay port choices that no longer match recomputation.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = MemoSlot::EMPTY;
        }
    }

    /// Returns the cached value for `(flow, node, dst)`, computing and
    /// caching it on a miss (or on a direct-mapped collision, which simply
    /// evicts the previous occupant).
    pub fn get_or_insert_with(
        &mut self,
        flow: FlowId,
        node: NodeId,
        dst: HostId,
        compute: impl FnOnce() -> u64,
    ) -> u64 {
        if self.slots.is_empty() {
            // `default()`-constructed memo: pick a mid-size table.
            self.slots = vec![MemoSlot::EMPTY; 1024];
        }
        debug_assert!(
            node.0 != u32::MAX || flow.0 != u32::MAX || dst.0 != u32::MAX,
            "the all-MAX key is reserved as the empty-slot marker",
        );
        // One multiply-shift over the packed key; table sizes stay well
        // below 2^24 so the masked high bits index every slot.
        let key = u64::from(flow.0)
            ^ u64::from(node.0).rotate_left(21)
            ^ u64::from(dst.0).rotate_left(42);
        let mixed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let idx =
            usize::try_from(mixed >> 40).expect("24-bit index fits usize") & (self.slots.len() - 1);
        let slot = &mut self.slots[idx];
        if slot.flow == flow.0 && slot.node == node.0 && slot.dst == dst.0 {
            self.hits += 1;
            return slot.value;
        }
        let value = compute();
        *slot = MemoSlot {
            flow: flow.0,
            node: node.0,
            dst: dst.0,
            value,
        };
        self.misses += 1;
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{fat_tree, linear, mini_testbed, FatTreeParams};
    use crate::topology::LinkSpec;

    fn k4() -> (Topology, Fib) {
        let topo = fat_tree(FatTreeParams {
            k: 4,
            ..FatTreeParams::paper_default()
        });
        let fib = Fib::compute(&topo);
        (topo, fib)
    }

    #[test]
    fn distances_in_fat_tree() {
        let (topo, fib) = k4();
        // Same edge switch: 2 hops. Same pod, different edge: 4. Cross-pod: 6.
        let h0 = topo.host_node(HostId(0));
        assert_eq!(fib.distance(h0, HostId(0)), 0);
        assert_eq!(fib.distance(h0, HostId(1)), 2);
        assert_eq!(fib.distance(h0, HostId(2)), 4);
        assert_eq!(fib.distance(h0, HostId(4)), 6);
        assert_eq!(fib.distance(h0, HostId(15)), 6);
    }

    #[test]
    fn every_switch_reaches_every_host() {
        let (topo, fib) = k4();
        for &sw in topo.switch_nodes() {
            for h in 0..topo.num_hosts() {
                let dst = HostId::from_index(h);
                assert!(
                    !fib.next_hops(sw, dst).is_empty(),
                    "{} has no route to {dst}",
                    topo.node(sw).name
                );
            }
        }
    }

    #[test]
    fn multipath_exists_cross_pod() {
        let (topo, fib) = k4();
        // From an edge switch, a cross-pod destination should have 2 uplinks
        // (both aggregation switches).
        let h0_edge = topo.host_uplink(HostId(0)).peer;
        assert_eq!(fib.next_hops(h0_edge, HostId(15)).len(), 2);
        // And a same-rack destination exactly one (the host port).
        assert_eq!(fib.next_hops(h0_edge, HostId(1)).len(), 1);
    }

    #[test]
    fn routes_never_traverse_third_party_hosts() {
        let (topo, fib) = k4();
        // Walk a route greedily from every host to every other host; each
        // intermediate node must be a switch.
        for s in 0..topo.num_hosts() {
            for d in 0..topo.num_hosts() {
                if s == d {
                    continue;
                }
                let dst = HostId::from_index(d);
                let mut at = topo.host_node(HostId::from_index(s));
                let mut hops = 0;
                while topo.as_host(at) != Some(dst) {
                    let port = fib
                        .select_port(at, dst, FlowId(7))
                        .expect("route must exist");
                    at = topo.port(at, port).peer;
                    hops += 1;
                    assert!(hops <= 6, "route too long");
                    if topo.is_host(at) {
                        assert_eq!(topo.as_host(at), Some(dst), "route hit a third-party host");
                    }
                }
            }
        }
    }

    #[test]
    fn ecmp_is_flow_stable_and_spreads() {
        let (topo, fib) = k4();
        let edge = topo.host_uplink(HostId(0)).peer;
        let dst = HostId(15);
        // Stability.
        let p1 = fib.select_port(edge, dst, FlowId(3)).unwrap();
        let p2 = fib.select_port(edge, dst, FlowId(3)).unwrap();
        assert_eq!(p1, p2);
        // Spread: over many flows both uplinks are used, roughly evenly.
        let mut counts = std::collections::BTreeMap::new();
        for f in 0..1000 {
            let p = fib.select_port(edge, dst, FlowId(f)).unwrap();
            *counts.entry(p).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 2);
        for &c in counts.values() {
            assert!((350..=650).contains(&c), "imbalanced ECMP: {counts:?}");
        }
    }

    #[test]
    fn mini_testbed_routes() {
        let topo = mini_testbed(LinkSpec::gbit(1));
        let fib = Fib::compute(&topo);
        // Hosts on different edge switches are 4 hops apart (host-edge-aggr-edge-host).
        let h0 = topo.host_node(HostId(0));
        assert_eq!(fib.distance(h0, HostId(2)), 4);
        // Two equal-cost aggregation choices from each edge switch.
        let edge = topo.host_uplink(HostId(0)).peer;
        assert_eq!(fib.next_hops(edge, HostId(4)).len(), 2);
    }

    #[test]
    fn linear_topology_routes() {
        let topo = linear(4, 1, LinkSpec::gbit(1));
        let fib = Fib::compute(&topo);
        let h0 = topo.host_node(HostId(0));
        assert_eq!(fib.distance(h0, HostId(3)), 5);
        // Single path everywhere.
        for &sw in topo.switch_nodes() {
            for h in 0..topo.num_hosts() {
                assert!(fib.next_hops(sw, HostId::from_index(h)).len() <= 1);
            }
        }
    }

    #[test]
    fn memoized_select_matches_direct() {
        let (topo, fib) = k4();
        let mut memo = EcmpMemo::with_slots(256);
        for f in 0..200 {
            for &sw in topo.switch_nodes() {
                for d in [0u32, 7, 15] {
                    let dst = HostId(d);
                    let direct = fib.select_port(sw, dst, FlowId(f));
                    let via_memo = fib.select_port_memo(&mut memo, sw, dst, FlowId(f));
                    assert_eq!(direct, via_memo);
                    // And again, now served from the cache.
                    assert_eq!(direct, fib.select_port_memo(&mut memo, sw, dst, FlowId(f)));
                }
            }
        }
        assert!(memo.hits() > 0, "repeat lookups must hit");
        assert!(memo.misses() > 0);
    }

    #[test]
    fn memo_collisions_just_recompute() {
        let (topo, fib) = k4();
        // A deliberately tiny memo forces constant evictions; results must
        // still match the direct computation every time.
        let mut memo = EcmpMemo::with_slots(1);
        let edge = topo.host_uplink(HostId(0)).peer;
        for f in 0..500 {
            let dst = HostId(15);
            assert_eq!(
                fib.select_port(edge, dst, FlowId(f)),
                fib.select_port_memo(&mut memo, edge, dst, FlowId(f)),
            );
        }
    }

    #[test]
    fn default_memo_lazily_allocates() {
        let mut memo = EcmpMemo::default();
        let v = memo.get_or_insert_with(FlowId(1), NodeId(2), HostId(3), || 42);
        assert_eq!(v, 42);
        let again = memo.get_or_insert_with(FlowId(1), NodeId(2), HostId(3), || 7);
        assert_eq!(again, 42, "second lookup must come from the cache");
        assert_eq!(memo.hits(), 1);
    }

    #[test]
    fn masked_fib_routes_around_disabled_links() {
        let topo = mini_testbed(LinkSpec::gbit(1));
        let full = Fib::compute(&topo);
        // Disable one of edge0's two aggregation uplinks.
        let edge = topo.host_uplink(HostId(0)).peer;
        let up_ports: Vec<usize> = full
            .next_hops(edge, HostId(4))
            .iter()
            .map(|&p| usize::from(p))
            .collect();
        assert_eq!(up_ports.len(), 2);
        let dead_link = topo.port(edge, up_ports[0]).link;
        let mut disabled = vec![false; topo.links().len()];
        disabled[dead_link.index()] = true;
        let masked = Fib::compute_masked(&topo, 0, &disabled);
        // The surviving uplink carries everything; distances are unchanged.
        assert_eq!(
            masked.next_hops(edge, HostId(4)),
            &[u16::try_from(up_ports[1]).unwrap()]
        );
        assert_eq!(masked.distance(topo.host_node(HostId(0)), HostId(4)), 4);
        // An empty mask reproduces the full FIB's routing exactly.
        let unmasked = Fib::compute_masked(&topo, 0, &[]);
        for &sw in topo.switch_nodes() {
            for hh in 0..topo.num_hosts() {
                let dst = HostId::from_index(hh);
                assert_eq!(unmasked.next_hops(sw, dst), full.next_hops(sw, dst));
                assert_eq!(unmasked.distance(sw, dst), full.distance(sw, dst));
            }
        }
    }

    #[test]
    fn fully_masked_destination_is_unreachable() {
        let topo = linear(2, 1, LinkSpec::gbit(1));
        // Cut the single inter-switch link: host 0 cannot reach host 1.
        let mut disabled = vec![false; topo.links().len()];
        for (i, l) in topo.links().iter().enumerate() {
            if !topo.is_host(l.a.node) && !topo.is_host(l.b.node) {
                disabled[i] = true;
            }
        }
        let fib = Fib::compute_masked(&topo, 0, &disabled);
        let s0 = topo.host_uplink(HostId(0)).peer;
        assert!(fib.next_hops(s0, HostId(1)).is_empty());
        assert_eq!(fib.distance(s0, HostId(1)), u16::MAX);
        assert_eq!(fib.select_port(s0, HostId(1), FlowId(1)), None);
        // Local delivery still works.
        assert_eq!(fib.next_hops(s0, HostId(0)).len(), 1);
    }

    #[test]
    fn memo_clear_forgets_entries() {
        let mut memo = EcmpMemo::with_slots(64);
        let v = memo.get_or_insert_with(FlowId(1), NodeId(2), HostId(3), || 10);
        assert_eq!(v, 10);
        memo.clear();
        let again = memo.get_or_insert_with(FlowId(1), NodeId(2), HostId(3), || 20);
        assert_eq!(again, 20, "cleared memo must recompute");
        assert_eq!(memo.hits(), 0);
        assert_eq!(memo.misses(), 2, "counters survive the clear");
    }

    #[test]
    fn salt_changes_hash() {
        assert_ne!(
            ecmp_hash(FlowId(1), NodeId(2), HostId(3), 0),
            ecmp_hash(FlowId(1), NodeId(2), HostId(3), 1)
        );
    }
}
