//! Destination-based forwarding tables with flow-level ECMP.
//!
//! Following the paper's requirements (§3): switches forward on FIBs
//! computed over all shortest paths, picking among equal-cost next hops with
//! a flow-level hash. Crucially, the FIB answers "next hop toward host H"
//! from *any* node, so a packet that DIBS detoured off its shortest path
//! still routes correctly from wherever it lands.

use crate::ids::{FlowId, HostId, NodeId};
use crate::topology::Topology;
use dibs_engine::rng::splitmix64;
use std::collections::VecDeque;

/// All-pairs shortest-path forwarding state.
///
/// For every `(node, destination host)` pair the FIB stores the set of ports
/// that lie on *some* shortest path, plus the distance in hops.
///
/// # Examples
///
/// ```
/// use dibs_net::builders::{fat_tree, FatTreeParams};
/// use dibs_net::routing::Fib;
/// use dibs_net::ids::HostId;
///
/// let topo = fat_tree(FatTreeParams { k: 4, ..FatTreeParams::paper_default() });
/// let fib = Fib::compute(&topo);
/// // Fat-tree diameter is 6 host-to-host hops.
/// assert_eq!(fib.distance(topo.host_node(HostId(0)), HostId(15)), 6);
/// ```
#[derive(Debug, Clone)]
pub struct Fib {
    /// `ports[node][dst_host]` = equal-cost out-ports, ascending.
    ports: Vec<Vec<Vec<u16>>>,
    /// `dist[node][dst_host]` = shortest hop count (u16::MAX if unreachable).
    dist: Vec<Vec<u16>>,
    /// Per-instance ECMP salt so distinct simulations hash differently.
    salt: u64,
}

impl Fib {
    /// Computes the FIB with the default salt.
    pub fn compute(topo: &Topology) -> Self {
        Self::compute_salted(topo, 0)
    }

    /// Computes the FIB; `salt` perturbs the ECMP hash (used to decorrelate
    /// repeated runs).
    pub fn compute_salted(topo: &Topology, salt: u64) -> Self {
        let n = topo.num_nodes();
        let h = topo.num_hosts();
        let mut ports = vec![vec![Vec::new(); h]; n];
        let mut dist = vec![vec![u16::MAX; h]; n];

        // One reverse BFS per destination host. Distances are from each node
        // *to* the destination; a port is usable iff its peer is strictly
        // closer.
        let mut queue = VecDeque::new();
        for dst in 0..h {
            let dst_host = HostId::from_index(dst);
            let dst_node = topo.host_node(dst_host);
            let d = &mut dist;
            d[dst_node.index()][dst] = 0;
            queue.clear();
            queue.push_back(dst_node);
            while let Some(u) = queue.pop_front() {
                let du = d[u.index()][dst];
                // Hosts other than the destination do not forward traffic.
                if topo.is_host(u) && u != dst_node {
                    continue;
                }
                for p in &topo.node(u).ports {
                    let v = p.peer;
                    if d[v.index()][dst] == u16::MAX {
                        d[v.index()][dst] = du + 1;
                        queue.push_back(v);
                    }
                }
            }
            for node in 0..n {
                let dn = dist[node][dst];
                if dn == u16::MAX || dn == 0 {
                    continue;
                }
                let entry: Vec<u16> = topo
                    .node(NodeId::from_index(node))
                    .ports
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| dist[p.peer.index()][dst] == dn - 1)
                    .map(|(i, _)| u16::try_from(i).expect("port index fits u16"))
                    .collect();
                ports[node][dst] = entry;
            }
        }
        Fib { ports, dist, salt }
    }

    /// Shortest-path distance from `node` to host `dst`, in hops.
    ///
    /// Returns `u16::MAX` when unreachable.
    pub fn distance(&self, node: NodeId, dst: HostId) -> u16 {
        self.dist[node.index()][dst.index()]
    }

    /// All equal-cost out-ports from `node` toward `dst`.
    pub fn next_hops(&self, node: NodeId, dst: HostId) -> &[u16] {
        &self.ports[node.index()][dst.index()]
    }

    /// The ECMP-selected out-port for a given flow, or `None` if the
    /// destination is unreachable from `node`.
    ///
    /// Selection is flow-level: all packets of `flow` leaving `node` toward
    /// `dst` pick the same port.
    pub fn select_port(&self, node: NodeId, dst: HostId, flow: FlowId) -> Option<usize> {
        let hops = self.next_hops(node, dst);
        match hops.len() {
            0 => None,
            1 => Some(usize::from(hops[0])),
            n => {
                let h = ecmp_hash(flow, node, dst, self.salt);
                // `h % n` is < n, which is a usize (the port count).
                #[allow(clippy::cast_possible_truncation)]
                Some(usize::from(hops[(h % n as u64) as usize]))
            }
        }
    }

    /// The ECMP salt in use.
    pub fn salt(&self) -> u64 {
        self.salt
    }

    /// Packet-level ECMP (§6): picks among equal-cost ports using
    /// per-packet entropy instead of the flow hash, spraying one flow's
    /// packets across all shortest paths.
    pub fn select_port_per_packet(
        &self,
        node: NodeId,
        dst: HostId,
        packet_entropy: u64,
    ) -> Option<usize> {
        let hops = self.next_hops(node, dst);
        match hops.len() {
            0 => None,
            1 => Some(usize::from(hops[0])),
            n => {
                let h = splitmix64(packet_entropy ^ self.salt ^ (u64::from(node.0) << 32));
                // `h % n` is < n, which is a usize (the port count).
                #[allow(clippy::cast_possible_truncation)]
                Some(usize::from(hops[(h % n as u64) as usize]))
            }
        }
    }
}

/// Flow-level ECMP hash.
///
/// Stable across packets of one flow at one node; well mixed across flows
/// and nodes.
pub fn ecmp_hash(flow: FlowId, node: NodeId, dst: HostId, salt: u64) -> u64 {
    let mut x = salt ^ 0xECB9_55C0_11EC_0DD5;
    x = splitmix64(x ^ u64::from(flow.0));
    x = splitmix64(x ^ (u64::from(node.0) << 32) ^ u64::from(dst.0));
    splitmix64(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{fat_tree, linear, mini_testbed, FatTreeParams};
    use crate::topology::LinkSpec;

    fn k4() -> (Topology, Fib) {
        let topo = fat_tree(FatTreeParams {
            k: 4,
            ..FatTreeParams::paper_default()
        });
        let fib = Fib::compute(&topo);
        (topo, fib)
    }

    #[test]
    fn distances_in_fat_tree() {
        let (topo, fib) = k4();
        // Same edge switch: 2 hops. Same pod, different edge: 4. Cross-pod: 6.
        let h0 = topo.host_node(HostId(0));
        assert_eq!(fib.distance(h0, HostId(0)), 0);
        assert_eq!(fib.distance(h0, HostId(1)), 2);
        assert_eq!(fib.distance(h0, HostId(2)), 4);
        assert_eq!(fib.distance(h0, HostId(4)), 6);
        assert_eq!(fib.distance(h0, HostId(15)), 6);
    }

    #[test]
    fn every_switch_reaches_every_host() {
        let (topo, fib) = k4();
        for &sw in topo.switch_nodes() {
            for h in 0..topo.num_hosts() {
                let dst = HostId::from_index(h);
                assert!(
                    !fib.next_hops(sw, dst).is_empty(),
                    "{} has no route to {dst}",
                    topo.node(sw).name
                );
            }
        }
    }

    #[test]
    fn multipath_exists_cross_pod() {
        let (topo, fib) = k4();
        // From an edge switch, a cross-pod destination should have 2 uplinks
        // (both aggregation switches).
        let h0_edge = topo.host_uplink(HostId(0)).peer;
        assert_eq!(fib.next_hops(h0_edge, HostId(15)).len(), 2);
        // And a same-rack destination exactly one (the host port).
        assert_eq!(fib.next_hops(h0_edge, HostId(1)).len(), 1);
    }

    #[test]
    fn routes_never_traverse_third_party_hosts() {
        let (topo, fib) = k4();
        // Walk a route greedily from every host to every other host; each
        // intermediate node must be a switch.
        for s in 0..topo.num_hosts() {
            for d in 0..topo.num_hosts() {
                if s == d {
                    continue;
                }
                let dst = HostId::from_index(d);
                let mut at = topo.host_node(HostId::from_index(s));
                let mut hops = 0;
                while topo.as_host(at) != Some(dst) {
                    let port = fib
                        .select_port(at, dst, FlowId(7))
                        .expect("route must exist");
                    at = topo.port(at, port).peer;
                    hops += 1;
                    assert!(hops <= 6, "route too long");
                    if topo.is_host(at) {
                        assert_eq!(topo.as_host(at), Some(dst), "route hit a third-party host");
                    }
                }
            }
        }
    }

    #[test]
    fn ecmp_is_flow_stable_and_spreads() {
        let (topo, fib) = k4();
        let edge = topo.host_uplink(HostId(0)).peer;
        let dst = HostId(15);
        // Stability.
        let p1 = fib.select_port(edge, dst, FlowId(3)).unwrap();
        let p2 = fib.select_port(edge, dst, FlowId(3)).unwrap();
        assert_eq!(p1, p2);
        // Spread: over many flows both uplinks are used, roughly evenly.
        let mut counts = std::collections::BTreeMap::new();
        for f in 0..1000 {
            let p = fib.select_port(edge, dst, FlowId(f)).unwrap();
            *counts.entry(p).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 2);
        for &c in counts.values() {
            assert!((350..=650).contains(&c), "imbalanced ECMP: {counts:?}");
        }
    }

    #[test]
    fn mini_testbed_routes() {
        let topo = mini_testbed(LinkSpec::gbit(1));
        let fib = Fib::compute(&topo);
        // Hosts on different edge switches are 4 hops apart (host-edge-aggr-edge-host).
        let h0 = topo.host_node(HostId(0));
        assert_eq!(fib.distance(h0, HostId(2)), 4);
        // Two equal-cost aggregation choices from each edge switch.
        let edge = topo.host_uplink(HostId(0)).peer;
        assert_eq!(fib.next_hops(edge, HostId(4)).len(), 2);
    }

    #[test]
    fn linear_topology_routes() {
        let topo = linear(4, 1, LinkSpec::gbit(1));
        let fib = Fib::compute(&topo);
        let h0 = topo.host_node(HostId(0));
        assert_eq!(fib.distance(h0, HostId(3)), 5);
        // Single path everywhere.
        for &sw in topo.switch_nodes() {
            for h in 0..topo.num_hosts() {
                assert!(fib.next_hops(sw, HostId::from_index(h)).len() <= 1);
            }
        }
    }

    #[test]
    fn salt_changes_hash() {
        assert_ne!(
            ecmp_hash(FlowId(1), NodeId(2), HostId(3), 0),
            ecmp_hash(FlowId(1), NodeId(2), HostId(3), 1)
        );
    }
}
