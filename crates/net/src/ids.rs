//! Strongly typed identifiers for network entities.
//!
//! All simulator state lives in index arenas; these newtypes keep the many
//! `usize` indices from being confused with one another.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub $inner);

        impl $name {
            /// The wrapped index.
            #[inline]
            #[allow(clippy::cast_possible_truncation)] // ids fit the arena's usize range
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Constructs an id from a raw `usize` index.
            ///
            /// # Panics
            ///
            /// Panics if `i` does not fit the id's backing integer.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                $name(<$inner>::try_from(i).expect("arena index fits id type"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// A node in the topology graph (host or switch).
    NodeId,
    u32
);
id_type!(
    /// A host, indexed within the topology's host list.
    HostId,
    u32
);
id_type!(
    /// A switch, indexed within the topology's switch list.
    SwitchId,
    u32
);
id_type!(
    /// An undirected link.
    LinkId,
    u32
);
id_type!(
    /// A transport flow.
    FlowId,
    u32
);
id_type!(
    /// A single packet instance.
    PacketId,
    u64
);

/// A directed endpoint: a specific port on a specific node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortRef {
    /// The owning node.
    pub node: NodeId,
    /// Port index within that node.
    pub port: usize,
}

impl fmt::Display for PortRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.node, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        assert_eq!(NodeId::from_index(17).index(), 17);
        assert_eq!(FlowId::from_index(0).index(), 0);
        assert_eq!(PacketId::from_index(123456789).index(), 123456789);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(NodeId(3).to_string(), "NodeId(3)");
        assert_eq!(
            PortRef {
                node: NodeId(3),
                port: 2
            }
            .to_string(),
            "NodeId(3):2"
        );
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let mut s = BTreeSet::new();
        s.insert(HostId(1));
        s.insert(HostId(1));
        s.insert(HostId(2));
        assert_eq!(s.len(), 2);
        assert!(SwitchId(1) < SwitchId(2));
    }
}
