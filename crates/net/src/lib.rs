#![warn(missing_docs)]

//! Network substrate for the DIBS reproduction: packets, topology graphs,
//! topology generators, and shortest-path/ECMP routing.
//!
//! This crate is purely structural — it knows nothing about queues, buffers,
//! transport protocols, or time-driven behavior. Those live in
//! `dibs-switch`, `dibs-transport`, and the `dibs` core crate.

pub mod builders;
pub mod ids;
pub mod packet;
pub mod routing;
pub mod topology;

pub use ids::{FlowId, HostId, LinkId, NodeId, PacketId, PortRef, SwitchId};
pub use packet::{Packet, PacketKind};
pub use routing::Fib;
pub use topology::{LinkSpec, Topology, TopologyBuilder};
