//! Property-based tests for topology generation and routing, driven by the
//! deterministic harness in `dibs_engine::testkit`.

use dibs_engine::rng::SimRng;
use dibs_engine::testkit::cases_n;
use dibs_net::builders::{dumbbell, fat_tree, jellyfish, linear, FatTreeParams, JellyfishParams};
use dibs_net::ids::{FlowId, HostId};
use dibs_net::routing::Fib;
use dibs_net::topology::{LinkSpec, Topology};

fn check_fib_invariants(topo: &Topology) {
    let fib = Fib::compute(topo);
    for node in 0..topo.num_nodes() {
        let n = dibs_net::NodeId::from_index(node);
        for h in 0..topo.num_hosts() {
            let dst = HostId::from_index(h);
            let d = fib.distance(n, dst);
            assert!(d != u16::MAX, "unreachable {n} -> {dst}");
            if topo.as_host(n) == Some(dst) {
                assert_eq!(d, 0);
                continue;
            }
            let hops = fib.next_hops(n, dst);
            // Hosts can only originate; other-host FIB rows stay empty and
            // are never consulted.
            if topo.is_host(n) {
                assert_eq!(hops.len(), 1, "host has one uplink route");
            }
            assert!(!hops.is_empty(), "no next hop at {n} for {dst}");
            for &p in hops {
                let peer = topo.port(n, usize::from(p)).peer;
                // Every FIB port strictly decreases distance.
                assert_eq!(fib.distance(peer, dst), d - 1);
                // And never relays through a third-party host.
                if topo.is_host(peer) {
                    assert_eq!(topo.as_host(peer), Some(dst));
                }
            }
        }
    }
}

/// Fat-trees of any even arity validate and route correctly.
#[test]
fn fat_tree_fib_invariants() {
    for half in 1usize..4 {
        let k = half * 2;
        let topo = fat_tree(FatTreeParams {
            k,
            ..FatTreeParams::paper_default()
        });
        assert_eq!(topo.num_hosts(), k * k * k / 4);
        assert!(topo.validate().is_ok());
        check_fib_invariants(&topo);
    }
}

/// Jellyfish graphs are connected, regular, and routable for any seed.
#[test]
fn jellyfish_fib_invariants() {
    cases_n("jellyfish-fib", 16, |rng, _| {
        let seed = rng.next_u64();
        let n = usize::try_from(rng.range_u64(6, 16)).unwrap();
        let degree = 3;
        // switches*degree must be even.
        let n = if (n * degree) % 2 == 1 { n + 1 } else { n };
        let mut topo_rng = SimRng::new(seed);
        let topo = jellyfish(
            JellyfishParams {
                switches: n,
                degree,
                hosts_per_switch: 1,
                host_link: LinkSpec::gbit(1),
                fabric_link: LinkSpec::gbit(1),
            },
            &mut topo_rng,
        );
        assert!(topo.validate().is_ok(), "{:?}", topo.validate());
        check_fib_invariants(&topo);
    });
}

/// Linear chains and dumbbells route with unique shortest paths.
#[test]
fn degenerate_topologies_route() {
    for switches in 1usize..6 {
        for hosts in 1usize..4 {
            let chain = linear(switches, hosts, LinkSpec::gbit(1));
            assert!(chain.validate().is_ok());
            check_fib_invariants(&chain);

            let bell = dumbbell(hosts, hosts, LinkSpec::gbit(1), LinkSpec::gbit(2));
            check_fib_invariants(&bell);
        }
    }
}

/// ECMP is deterministic per flow and uses only FIB ports.
#[test]
fn ecmp_stays_within_fib() {
    cases_n("ecmp-within-fib", 24, |rng, _| {
        let flow = u32::try_from(rng.next_u64() & 0xffff_ffff).unwrap();
        let salt = rng.next_u64();
        let topo = fat_tree(FatTreeParams {
            k: 4,
            ..FatTreeParams::paper_default()
        });
        let fib = Fib::compute_salted(&topo, salt);
        for &sw in topo.switch_nodes() {
            for h in [0usize, 7, 15] {
                let dst = HostId::from_index(h);
                let sel = fib.select_port(sw, dst, FlowId(flow)).expect("route");
                let sel16 = u16::try_from(sel).unwrap();
                assert!(fib.next_hops(sw, dst).contains(&sel16));
                // Stable across repeated queries.
                assert_eq!(fib.select_port(sw, dst, FlowId(flow)), Some(sel));
            }
        }
    });
}
