//! Property-based tests for topology generation and routing.

use dibs_engine::rng::SimRng;
use dibs_net::builders::{dumbbell, fat_tree, jellyfish, linear, FatTreeParams, JellyfishParams};
use dibs_net::ids::{FlowId, HostId};
use dibs_net::routing::Fib;
use dibs_net::topology::{LinkSpec, Topology};
use proptest::prelude::*;

fn check_fib_invariants(topo: &Topology) -> Result<(), TestCaseError> {
    let fib = Fib::compute(topo);
    for node in 0..topo.num_nodes() {
        let n = dibs_net::NodeId::from_index(node);
        for h in 0..topo.num_hosts() {
            let dst = HostId::from_index(h);
            let d = fib.distance(n, dst);
            prop_assert!(d != u16::MAX, "unreachable {n} -> {dst}");
            if topo.as_host(n) == Some(dst) {
                prop_assert_eq!(d, 0);
                continue;
            }
            let hops = fib.next_hops(n, dst);
            // Hosts can only originate; other-host FIB rows stay empty and
            // are never consulted.
            if topo.is_host(n) {
                prop_assert_eq!(hops.len(), 1, "host has one uplink route");
            }
            prop_assert!(!hops.is_empty(), "no next hop at {n} for {dst}");
            for &p in hops {
                let peer = topo.port(n, usize::from(p)).peer;
                // Every FIB port strictly decreases distance.
                prop_assert_eq!(fib.distance(peer, dst), d - 1);
                // And never relays through a third-party host.
                if topo.is_host(peer) {
                    prop_assert_eq!(topo.as_host(peer), Some(dst));
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fat-trees of any even arity validate and route correctly.
    #[test]
    fn fat_tree_fib_invariants(half in 1usize..4) {
        let k = half * 2;
        let topo = fat_tree(FatTreeParams { k, ..FatTreeParams::paper_default() });
        prop_assert_eq!(topo.num_hosts(), k * k * k / 4);
        prop_assert!(topo.validate().is_ok());
        check_fib_invariants(&topo)?;
    }

    /// Jellyfish graphs are connected, regular, and routable for any seed.
    #[test]
    fn jellyfish_fib_invariants(seed in any::<u64>(), n in 6usize..16) {
        let degree = 3;
        // switches*degree must be even.
        let n = if (n * degree) % 2 == 1 { n + 1 } else { n };
        let mut rng = SimRng::new(seed);
        let topo = jellyfish(
            JellyfishParams {
                switches: n,
                degree,
                hosts_per_switch: 1,
                host_link: LinkSpec::gbit(1),
                fabric_link: LinkSpec::gbit(1),
            },
            &mut rng,
        );
        prop_assert!(topo.validate().is_ok(), "{:?}", topo.validate());
        check_fib_invariants(&topo)?;
    }

    /// Linear chains and dumbbells route with unique shortest paths.
    #[test]
    fn degenerate_topologies_route(switches in 1usize..6, hosts in 1usize..4) {
        let chain = linear(switches, hosts, LinkSpec::gbit(1));
        prop_assert!(chain.validate().is_ok());
        check_fib_invariants(&chain)?;

        let bell = dumbbell(hosts, hosts, LinkSpec::gbit(1), LinkSpec::gbit(2));
        check_fib_invariants(&bell)?;
    }

    /// ECMP is deterministic per flow and uses only FIB ports.
    #[test]
    fn ecmp_stays_within_fib(flow in any::<u32>(), salt in any::<u64>()) {
        let topo = fat_tree(FatTreeParams { k: 4, ..FatTreeParams::paper_default() });
        let fib = Fib::compute_salted(&topo, salt);
        for &sw in topo.switch_nodes() {
            for h in [0usize, 7, 15] {
                let dst = HostId::from_index(h);
                let sel = fib.select_port(sw, dst, FlowId(flow)).expect("route");
                prop_assert!(fib.next_hops(sw, dst).contains(&(sel as u16)));
                // Stable across repeated queries.
                prop_assert_eq!(fib.select_port(sw, dst, FlowId(flow)), Some(sel));
            }
        }
    }
}
