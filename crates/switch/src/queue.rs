//! Per-port packet queues.
//!
//! Two disciplines are modeled: the FIFO droptail queue used by the
//! DCTCP/DIBS experiments, and the bounded priority queue of pFabric (§5.8),
//! which drops the *lowest-priority* resident packet to admit a
//! higher-priority arrival and dequeues in priority order.

use dibs_net::packet::Packet;
use std::collections::VecDeque;

/// Queue service discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// First-in first-out (the default in all DCTCP/DIBS experiments).
    Fifo,
    /// pFabric: priority dequeue, priority-displacement on overflow.
    Pfabric,
}

/// A single output-port queue.
#[derive(Debug)]
pub struct PortQueue {
    packets: VecDeque<Packet>,
    bytes: u64,
    discipline: Discipline,
}

impl PortQueue {
    /// Creates an empty queue with the given discipline.
    pub fn new(discipline: Discipline) -> Self {
        Self::with_capacity(discipline, 0)
    }

    /// Creates an empty queue pre-sized for `capacity` resident packets.
    ///
    /// The switch derives `capacity` from its buffer limit so a port never
    /// reallocates its deque on the data path; admission control still
    /// happens in the switch, so this is purely an allocation hint.
    pub fn with_capacity(discipline: Discipline, capacity: usize) -> Self {
        PortQueue {
            packets: VecDeque::with_capacity(capacity),
            bytes: 0,
            discipline,
        }
    }

    /// Number of queued packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total queued bytes (wire sizes).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The discipline this queue runs.
    pub fn discipline(&self) -> Discipline {
        self.discipline
    }

    /// Appends a packet (admission control happens in the switch, not here).
    pub fn push(&mut self, pkt: Packet) {
        self.bytes += u64::from(pkt.wire_bytes);
        self.packets.push_back(pkt);
    }

    /// Removes the next packet to transmit according to the discipline.
    pub fn pop(&mut self) -> Option<Packet> {
        let idx = match self.discipline {
            Discipline::Fifo => 0,
            Discipline::Pfabric => self.highest_priority_index()?,
        };
        let pkt = self.packets.remove(idx)?;
        self.bytes -= u64::from(pkt.wire_bytes);
        Some(pkt)
    }

    /// Index of the packet that pFabric would transmit next: numerically
    /// smallest priority value; FIFO among ties (which also keeps one flow's
    /// packets in order, since a flow's remaining size only shrinks).
    fn highest_priority_index(&self) -> Option<usize> {
        if self.packets.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for (i, p) in self.packets.iter().enumerate().skip(1) {
            if p.priority < self.packets[best].priority {
                best = i;
            }
        }
        Some(best)
    }

    /// Index of the packet pFabric would displace: numerically largest
    /// priority value, most recent among ties.
    pub fn lowest_priority_index(&self) -> Option<usize> {
        if self.packets.is_empty() {
            return None;
        }
        let mut worst = 0usize;
        for (i, p) in self.packets.iter().enumerate().skip(1) {
            if p.priority >= self.packets[worst].priority {
                worst = i;
            }
        }
        Some(worst)
    }

    /// Removes the packet at `idx` (used for pFabric displacement).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn remove(&mut self, idx: usize) -> Packet {
        let pkt = self.packets.remove(idx).expect("index in range");
        self.bytes -= u64::from(pkt.wire_bytes);
        pkt
    }

    /// Read-only view of the resident packets in queue order.
    pub fn iter(&self) -> impl Iterator<Item = &Packet> {
        self.packets.iter()
    }

    /// Drops all resident packets.
    pub fn clear(&mut self) {
        self.packets.clear();
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibs_engine::time::SimTime;
    use dibs_net::ids::{FlowId, HostId, PacketId};

    fn pkt(id: u64, priority: u64) -> Packet {
        let mut p = Packet::data(
            PacketId(id),
            FlowId(0),
            HostId(0),
            HostId(1),
            0,
            1460,
            64,
            SimTime::ZERO,
        );
        p.priority = priority;
        p
    }

    #[test]
    fn fifo_order() {
        let mut q = PortQueue::new(Discipline::Fifo);
        for i in 0..5 {
            q.push(pkt(i, 100 - i));
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.bytes(), 5 * 1500);
        for i in 0..5 {
            assert_eq!(q.pop().unwrap().id.0, i);
        }
        assert!(q.pop().is_none());
        assert_eq!(q.bytes(), 0);
    }

    #[test]
    fn pfabric_pops_highest_priority_first() {
        let mut q = PortQueue::new(Discipline::Pfabric);
        q.push(pkt(0, 50));
        q.push(pkt(1, 10)); // Smallest remaining size: highest priority.
        q.push(pkt(2, 99));
        assert_eq!(q.pop().unwrap().id.0, 1);
        assert_eq!(q.pop().unwrap().id.0, 0);
        assert_eq!(q.pop().unwrap().id.0, 2);
    }

    #[test]
    fn pfabric_ties_stay_fifo() {
        let mut q = PortQueue::new(Discipline::Pfabric);
        q.push(pkt(0, 10));
        q.push(pkt(1, 10));
        q.push(pkt(2, 10));
        assert_eq!(q.pop().unwrap().id.0, 0);
        assert_eq!(q.pop().unwrap().id.0, 1);
    }

    #[test]
    fn displacement_target_is_worst_newest() {
        let mut q = PortQueue::new(Discipline::Pfabric);
        q.push(pkt(0, 50));
        q.push(pkt(1, 99));
        q.push(pkt(2, 99));
        q.push(pkt(3, 10));
        let worst = q.lowest_priority_index().unwrap();
        let removed = q.remove(worst);
        assert_eq!(removed.id.0, 2);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn byte_accounting_through_remove() {
        let mut q = PortQueue::new(Discipline::Fifo);
        q.push(pkt(0, 1));
        q.push(pkt(1, 2));
        let before = q.bytes();
        q.remove(0);
        assert_eq!(q.bytes(), before - 1500);
        q.clear();
        assert_eq!(q.bytes(), 0);
        assert!(q.is_empty());
    }
}
