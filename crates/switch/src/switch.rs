//! The switch data path: admission, ECN marking, DIBS detouring, service.
//!
//! A [`SwitchCore`] owns one [`PortQueue`] per port plus a
//! [`BufferManager`]. It is deliberately time-free: the simulator core
//! decides *when* ports transmit; the switch decides *where* packets go and
//! whether they are marked, detoured, or dropped.

use crate::buffer::{BufferConfig, BufferManager};
use crate::dibs::{detour_flow_hash, DibsPolicy};
use crate::queue::{Discipline, PortQueue};
use dibs_engine::rng::SimRng;
use dibs_net::packet::Packet;
use dibs_net::routing::EcmpMemo;
use dibs_net::{HostId, NodeId};
use dibs_trace::{NullSink, TraceEvent, TraceKind, TraceSink};

/// Static configuration of one switch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchConfig {
    /// Buffer organization and size.
    pub buffer: BufferConfig,
    /// ECN marking threshold in packets (`None` disables marking). The
    /// paper's default is 20 packets on 100-packet buffers.
    pub ecn_threshold: Option<usize>,
    /// The DIBS detour policy (`Disabled` = droptail baseline).
    pub dibs: DibsPolicy,
    /// Queue service discipline.
    pub discipline: Discipline,
    /// Whether detoured packets are also CE-marked (§5.3: they are).
    pub mark_detoured: bool,
}

impl SwitchConfig {
    /// Table 1 defaults with DIBS disabled (the DCTCP baseline).
    pub fn dctcp_baseline() -> Self {
        SwitchConfig {
            buffer: BufferConfig::paper_default(),
            ecn_threshold: Some(20),
            dibs: DibsPolicy::Disabled,
            discipline: Discipline::Fifo,
            mark_detoured: true,
        }
    }

    /// Table 1 defaults with random DIBS detouring enabled.
    pub fn dctcp_dibs() -> Self {
        SwitchConfig {
            dibs: DibsPolicy::Random,
            ..Self::dctcp_baseline()
        }
    }

    /// The pFabric switch of §5.8: 24-packet priority queues, no ECN, no
    /// DIBS.
    pub fn pfabric() -> Self {
        SwitchConfig {
            buffer: BufferConfig::StaticPerPort { packets: 24 },
            ecn_threshold: None,
            dibs: DibsPolicy::Disabled,
            discipline: Discipline::Pfabric,
            mark_detoured: false,
        }
    }
}

/// Why a packet was dropped at a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Desired queue full and no eligible detour port (or DIBS disabled).
    BufferFull,
    /// Displaced from a pFabric queue by a higher-priority arrival.
    PriorityDisplaced,
    /// TTL expired (counted by the simulator core, which owns TTL).
    TtlExpired,
}

/// Result of offering a packet to the switch.
#[derive(Debug)]
pub enum EnqueueOutcome {
    /// Queued on its desired port.
    Enqueued {
        /// The port the packet was queued on.
        port: usize,
    },
    /// Queued on a detour port instead of the (full) desired port.
    Detoured {
        /// The detour port chosen by the DIBS policy.
        port: usize,
    },
    /// Dropped.
    Dropped(DropReason),
}

/// `EnqueueOutcome` plus any packet displaced to make room (pFabric only).
#[derive(Debug)]
pub struct EnqueueResult {
    /// What happened to the offered packet.
    pub outcome: EnqueueOutcome,
    /// A resident packet evicted by pFabric priority displacement, if any.
    pub displaced: Option<Packet>,
}

/// Event counters, cheap enough to keep always-on.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwitchCounters {
    /// Packets accepted onto their desired port.
    pub enqueued: u64,
    /// Packets accepted onto a detour port.
    pub detoured: u64,
    /// Packets CE-marked at enqueue.
    pub marked: u64,
    /// Drops because the buffer was full (and DIBS could not help).
    pub dropped_full: u64,
    /// pFabric priority displacements.
    pub displaced: u64,
    /// Packets handed to the wire.
    pub dequeued: u64,
}

/// One switch's queues, buffer accounting, and forwarding decisions.
pub struct SwitchCore {
    node: NodeId,
    config: SwitchConfig,
    queues: Vec<PortQueue>,
    buffer: BufferManager,
    /// `host_facing[p]` — whether port `p` connects to an end host.
    host_facing: Vec<bool>,
    counters: SwitchCounters,
    /// Scratch buffer for the eligible-port list (avoids per-packet allocs).
    scratch: Vec<usize>,
    /// Per-switch memo of flow-based detour hashes (one mix per flow
    /// instead of one per detoured packet).
    detour_memo: EcmpMemo,
}

/// Per-port packet capacity implied by a buffer configuration: how many
/// resident packets a port queue should pre-size for so the data path
/// never grows its deque.
fn port_capacity_hint(buffer: BufferConfig, num_ports: usize) -> usize {
    /// Conservative wire size used to translate byte budgets to packets.
    const FULL_PACKET_BYTES: u64 = 1500;
    match buffer {
        // No admission bound to derive from; let the deque grow on demand.
        BufferConfig::Infinite => 0,
        BufferConfig::StaticPerPort { packets } => packets,
        BufferConfig::DynamicShared {
            total_bytes,
            per_port_reserve_bytes,
            ..
        } => {
            // A port can borrow beyond its fair share, but the steady
            // state is bounded by the pool split across ports plus the
            // private reserve; cap the hint so many-port switches do not
            // over-allocate.
            let fair = total_bytes / FULL_PACKET_BYTES / num_ports.max(1) as u64;
            let reserve = per_port_reserve_bytes.div_ceil(FULL_PACKET_BYTES);
            usize::try_from((fair + reserve).min(512)).expect("hint fits usize")
        }
    }
}

impl SwitchCore {
    /// Creates a switch with `host_facing.len()` ports.
    pub fn new(node: NodeId, config: SwitchConfig, host_facing: Vec<bool>) -> Self {
        let n = host_facing.len();
        let cap = port_capacity_hint(config.buffer, n);
        SwitchCore {
            node,
            config,
            queues: (0..n)
                .map(|_| PortQueue::with_capacity(config.discipline, cap))
                .collect(),
            buffer: BufferManager::new(config.buffer),
            host_facing,
            counters: SwitchCounters::default(),
            scratch: Vec::with_capacity(n),
            detour_memo: EcmpMemo::with_slots(128),
        }
    }

    /// The topology node this switch implements.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The active configuration.
    pub fn config(&self) -> &SwitchConfig {
        &self.config
    }

    /// Number of ports.
    pub fn num_ports(&self) -> usize {
        self.queues.len()
    }

    /// Packets queued on a port.
    pub fn queue_len(&self, port: usize) -> usize {
        self.queues[port].len()
    }

    /// Bytes queued on a port.
    pub fn queue_bytes(&self, port: usize) -> u64 {
        self.queues[port].bytes()
    }

    /// Buffer occupancy of a port in `[0, 1]`.
    pub fn occupancy(&self, port: usize) -> f64 {
        self.buffer.occupancy(&self.queues[port])
    }

    /// Whether port `p` faces an end host.
    pub fn is_host_facing(&self, port: usize) -> bool {
        self.host_facing[port]
    }

    /// Total packets buffered across all ports.
    pub fn total_buffered(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Fraction of the switch's total buffer currently free, in `[0, 1]`.
    ///
    /// This is the quantity behind Fig 5 (spare capacity near hotspots).
    pub fn free_fraction(&self) -> f64 {
        match self.config.buffer {
            BufferConfig::Infinite => 1.0,
            BufferConfig::StaticPerPort { packets } => {
                let cap = packets * self.queues.len();
                if cap == 0 {
                    0.0
                } else {
                    1.0 - (self.total_buffered() as f64 / cap as f64).min(1.0)
                }
            }
            BufferConfig::DynamicShared { total_bytes, .. } => {
                if total_bytes == 0 {
                    0.0
                } else {
                    1.0 - (self.buffer.shared_used() as f64 / total_bytes as f64).min(1.0)
                }
            }
        }
    }

    /// Counter snapshot.
    pub fn counters(&self) -> SwitchCounters {
        self.counters
    }

    /// Offers `pkt` to the switch for transmission out of `desired_port`.
    ///
    /// Implements the full §2/§4 data path: ECN threshold marking, DIBS
    /// detouring on overflow, pFabric priority displacement. Untraced
    /// convenience wrapper around [`SwitchCore::enqueue_traced`].
    pub fn enqueue(&mut self, pkt: Packet, desired_port: usize, rng: &mut SimRng) -> EnqueueResult {
        self.enqueue_traced(pkt, desired_port, rng, 0, &mut NullSink)
    }

    /// [`SwitchCore::enqueue`] with trace emission: every queue
    /// transition (enqueue, detour, ECN mark, drop, displacement) is
    /// reported through `sink`, stamped with simulated time `t_ns`. The
    /// sink is consulted via [`TraceSink::wants`] before any event is
    /// built, so a disabled sink costs one branch per transition.
    pub fn enqueue_traced<S: TraceSink>(
        &mut self,
        pkt: Packet,
        desired_port: usize,
        rng: &mut SimRng,
        t_ns: u64,
        sink: &mut S,
    ) -> EnqueueResult {
        debug_assert!(desired_port < self.queues.len());
        let fits = self
            .buffer
            .admits(&self.queues[desired_port], pkt.wire_bytes);

        if fits {
            // Probabilistic DIBS may detour even with room available.
            let p_early = self
                .config
                .dibs
                .early_detour_probability(self.occupancy(desired_port));
            if p_early > 0.0 && rng.chance(p_early) {
                if let Some(port) = self.pick_detour(&pkt, desired_port, rng) {
                    return self.admit_detour(pkt, port, t_ns, sink);
                }
            }
            return self.admit(pkt, desired_port, t_ns, sink);
        }

        // Desired queue full.
        if self.config.discipline == Discipline::Pfabric {
            return self.pfabric_displace(pkt, desired_port, t_ns, sink);
        }
        match self.pick_detour(&pkt, desired_port, rng) {
            Some(port) => self.admit_detour(pkt, port, t_ns, sink),
            None => {
                self.counters.dropped_full += 1;
                if sink.wants(TraceKind::Drop) {
                    sink.record(self.queue_event(TraceKind::Drop, t_ns, &pkt, desired_port));
                }
                EnqueueResult {
                    outcome: EnqueueOutcome::Dropped(DropReason::BufferFull),
                    displaced: None,
                }
            }
        }
    }

    /// Removes the next packet to transmit from `port`. Untraced
    /// convenience wrapper around [`SwitchCore::dequeue_traced`].
    pub fn dequeue(&mut self, port: usize) -> Option<Packet> {
        self.dequeue_traced(port, 0, &mut NullSink)
    }

    /// [`SwitchCore::dequeue`] with trace emission; the `Dequeue` event
    /// carries the port's depth after the pop.
    pub fn dequeue_traced<S: TraceSink>(
        &mut self,
        port: usize,
        t_ns: u64,
        sink: &mut S,
    ) -> Option<Packet> {
        let pkt = self.queues[port].pop()?;
        self.buffer.on_dequeue(pkt.wire_bytes);
        self.counters.dequeued += 1;
        self.debug_audit_port(port);
        if sink.wants(TraceKind::Dequeue) {
            sink.record(self.queue_event(TraceKind::Dequeue, t_ns, &pkt, port));
        }
        Some(pkt)
    }

    /// Empties every port queue, releasing all shared-buffer occupancy,
    /// and returns the drained packets (port-major, FIFO within a port).
    ///
    /// Used by fault injection when this switch crashes: the packets leave
    /// the fabric without ever being transmitted, so `dequeued` is *not*
    /// incremented — the caller accounts for each returned packet as a
    /// drop, keeping the audit ledger's conservation sum exact.
    pub fn drain_all(&mut self) -> Vec<Packet> {
        let mut out = Vec::with_capacity(self.total_buffered());
        for port in 0..self.queues.len() {
            while let Some(pkt) = self.queues[port].pop() {
                self.buffer.on_dequeue(pkt.wire_bytes);
                out.push(pkt);
            }
            self.debug_audit_port(port);
        }
        out
    }

    /// Builds a queue-transition event for `pkt` at `port`; `qlen` is the
    /// port's current depth (i.e. already reflecting the transition).
    fn queue_event(&self, kind: TraceKind, t_ns: u64, pkt: &Packet, port: usize) -> TraceEvent {
        TraceEvent {
            t_ns,
            packet: pkt.id.0,
            flow: pkt.flow.0,
            node: self.node.0,
            port: u16::try_from(port).unwrap_or(u16::MAX),
            qlen: u16::try_from(self.queues[port].len()).unwrap_or(u16::MAX),
            detours: pkt.detours,
            kind,
        }
    }

    /// Debug-build audit of the per-port buffer invariants after any
    /// data-path mutation: occupancy stays within `[0, capacity]` for
    /// the active buffer configuration.
    #[inline]
    fn debug_audit_port(&self, port: usize) {
        if cfg!(debug_assertions) {
            let q = &self.queues[port];
            match self.config.buffer {
                BufferConfig::Infinite => {}
                BufferConfig::StaticPerPort { packets } => {
                    debug_assert!(
                        q.len() <= packets,
                        "port {port} holds {} packets, capacity {packets}",
                        q.len()
                    );
                }
                BufferConfig::DynamicShared { total_bytes, .. } => {
                    debug_assert!(
                        self.buffer.shared_used() <= total_bytes,
                        "shared pool holds {} bytes, capacity {total_bytes}",
                        self.buffer.shared_used()
                    );
                }
            }
        }
    }

    fn admit<S: TraceSink>(
        &mut self,
        mut pkt: Packet,
        port: usize,
        t_ns: u64,
        sink: &mut S,
    ) -> EnqueueResult {
        self.maybe_mark(&mut pkt, port, false, t_ns, sink);
        self.buffer.on_enqueue(pkt.wire_bytes);
        let traced = sink.wants(TraceKind::Enqueue);
        let snapshot = traced.then_some((pkt.id.0, pkt.flow.0, pkt.detours));
        self.queues[port].push(pkt);
        self.counters.enqueued += 1;
        self.debug_audit_port(port);
        if let Some((packet, flow, detours)) = snapshot {
            sink.record(TraceEvent {
                t_ns,
                packet,
                flow,
                node: self.node.0,
                port: u16::try_from(port).unwrap_or(u16::MAX),
                qlen: u16::try_from(self.queues[port].len()).unwrap_or(u16::MAX),
                detours,
                kind: TraceKind::Enqueue,
            });
        }
        EnqueueResult {
            outcome: EnqueueOutcome::Enqueued { port },
            displaced: None,
        }
    }

    fn admit_detour<S: TraceSink>(
        &mut self,
        mut pkt: Packet,
        port: usize,
        t_ns: u64,
        sink: &mut S,
    ) -> EnqueueResult {
        pkt.detours += 1;
        self.maybe_mark(&mut pkt, port, true, t_ns, sink);
        self.buffer.on_enqueue(pkt.wire_bytes);
        let traced = sink.wants(TraceKind::Detour);
        let snapshot = traced.then_some((pkt.id.0, pkt.flow.0, pkt.detours));
        self.queues[port].push(pkt);
        self.counters.detoured += 1;
        self.debug_audit_port(port);
        if let Some((packet, flow, detours)) = snapshot {
            sink.record(TraceEvent {
                t_ns,
                packet,
                flow,
                node: self.node.0,
                port: u16::try_from(port).unwrap_or(u16::MAX),
                qlen: u16::try_from(self.queues[port].len()).unwrap_or(u16::MAX),
                detours,
                kind: TraceKind::Detour,
            });
        }
        EnqueueResult {
            outcome: EnqueueOutcome::Detoured { port },
            displaced: None,
        }
    }

    fn maybe_mark<S: TraceSink>(
        &mut self,
        pkt: &mut Packet,
        port: usize,
        detoured: bool,
        t_ns: u64,
        sink: &mut S,
    ) {
        if !pkt.is_data() {
            // DCTCP marks data packets; acks are not marked.
            return;
        }
        let over_threshold = self
            .config
            .ecn_threshold
            .is_some_and(|k| self.queues[port].len() >= k);
        if over_threshold || (detoured && self.config.mark_detoured) {
            if !pkt.ce {
                self.counters.marked += 1;
                if sink.wants(TraceKind::EcnMark) {
                    sink.record(self.queue_event(TraceKind::EcnMark, t_ns, pkt, port));
                }
            }
            pkt.mark_ce();
        }
    }

    fn pick_detour(
        &mut self,
        pkt: &Packet,
        desired_port: usize,
        rng: &mut SimRng,
    ) -> Option<usize> {
        if !self.config.dibs.is_enabled() {
            return None;
        }
        // Eligible: switch-facing, not the desired port, with buffer room.
        self.scratch.clear();
        for p in 0..self.queues.len() {
            if p != desired_port
                && !self.host_facing[p]
                && self.buffer.admits(&self.queues[p], pkt.wire_bytes)
            {
                self.scratch.push(p);
            }
        }
        // Only the flow-based policy consumes the hash; it is memoized per
        // (flow, node, dst) so repeat detours of one flow skip the mixer.
        let flow_hash = if self.config.dibs == DibsPolicy::FlowBased {
            let node = self.node;
            self.detour_memo
                .get_or_insert_with(pkt.flow, node, HostId(pkt.dst.0), || {
                    detour_flow_hash(pkt, node)
                })
        } else {
            0
        };
        let scratch = std::mem::take(&mut self.scratch);
        let choice = self.config.dibs.choose(
            &scratch,
            |p| self.buffer.occupancy(&self.queues[p]),
            flow_hash,
            rng,
        );
        self.scratch = scratch;
        choice
    }

    fn pfabric_displace<S: TraceSink>(
        &mut self,
        pkt: Packet,
        port: usize,
        t_ns: u64,
        sink: &mut S,
    ) -> EnqueueResult {
        // pFabric (§5.8): on overflow, drop the lowest-priority resident if
        // the arrival beats it; otherwise drop the arrival.
        let q = &mut self.queues[port];
        let Some(worst_idx) = q.lowest_priority_index() else {
            // Queue capacity zero: nothing to displace.
            self.counters.dropped_full += 1;
            if sink.wants(TraceKind::Drop) {
                sink.record(self.queue_event(TraceKind::Drop, t_ns, &pkt, port));
            }
            return EnqueueResult {
                outcome: EnqueueOutcome::Dropped(DropReason::BufferFull),
                displaced: None,
            };
        };
        let worst_priority = q.iter().nth(worst_idx).expect("index valid").priority;
        if pkt.priority < worst_priority {
            let displaced = q.remove(worst_idx);
            self.buffer.on_dequeue(displaced.wire_bytes);
            self.buffer.on_enqueue(pkt.wire_bytes);
            let traced = sink.wants(TraceKind::Enqueue);
            let snapshot = traced.then_some((pkt.id.0, pkt.flow.0, pkt.detours));
            self.queues[port].push(pkt);
            self.counters.displaced += 1;
            self.counters.enqueued += 1;
            self.debug_audit_port(port);
            if sink.wants(TraceKind::Drop) {
                // The displaced resident leaves the fabric here.
                sink.record(self.queue_event(TraceKind::Drop, t_ns, &displaced, port));
            }
            if let Some((packet, flow, detours)) = snapshot {
                sink.record(TraceEvent {
                    t_ns,
                    packet,
                    flow,
                    node: self.node.0,
                    port: u16::try_from(port).unwrap_or(u16::MAX),
                    qlen: u16::try_from(self.queues[port].len()).unwrap_or(u16::MAX),
                    detours,
                    kind: TraceKind::Enqueue,
                });
            }
            EnqueueResult {
                outcome: EnqueueOutcome::Enqueued { port },
                displaced: Some(displaced),
            }
        } else {
            self.counters.dropped_full += 1;
            if sink.wants(TraceKind::Drop) {
                sink.record(self.queue_event(TraceKind::Drop, t_ns, &pkt, port));
            }
            EnqueueResult {
                outcome: EnqueueOutcome::Dropped(DropReason::PriorityDisplaced),
                displaced: None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibs_engine::time::SimTime;
    use dibs_net::ids::{FlowId, HostId, PacketId};

    fn pkt(id: u64) -> Packet {
        Packet::data(
            PacketId(id),
            FlowId(u32::try_from(id).unwrap()),
            HostId(0),
            HostId(1),
            0,
            1460,
            64,
            SimTime::ZERO,
        )
    }

    fn tiny_switch(dibs: DibsPolicy, per_port: usize) -> SwitchCore {
        // 4 ports: 0 faces a host, 1-3 face switches.
        SwitchCore::new(
            NodeId(0),
            SwitchConfig {
                buffer: BufferConfig::StaticPerPort { packets: per_port },
                ecn_threshold: Some(2),
                dibs,
                discipline: Discipline::Fifo,
                mark_detoured: true,
            },
            vec![true, false, false, false],
        )
    }

    #[test]
    fn basic_enqueue_dequeue() {
        let mut sw = tiny_switch(DibsPolicy::Disabled, 10);
        let mut rng = SimRng::new(1);
        let r = sw.enqueue(pkt(1), 1, &mut rng);
        assert!(matches!(r.outcome, EnqueueOutcome::Enqueued { port: 1 }));
        assert_eq!(sw.queue_len(1), 1);
        let out = sw.dequeue(1).unwrap();
        assert_eq!(out.id.0, 1);
        assert_eq!(sw.counters().dequeued, 1);
        assert!(sw.dequeue(1).is_none());
    }

    #[test]
    fn drain_all_frees_occupancy_without_counting_dequeues() {
        // Dynamic shared buffer so the pool accounting is observable.
        let mut sw = SwitchCore::new(
            NodeId(0),
            SwitchConfig {
                buffer: BufferConfig::DynamicShared {
                    total_bytes: 64 * 1500,
                    alpha: 1.0,
                    per_port_reserve_bytes: 0,
                },
                ecn_threshold: None,
                dibs: DibsPolicy::Disabled,
                discipline: Discipline::Fifo,
                mark_detoured: true,
            },
            vec![true, false, false, false],
        );
        let mut rng = SimRng::new(1);
        for i in 0..6 {
            sw.enqueue(pkt(i), usize::try_from(i % 3).unwrap(), &mut rng);
        }
        assert_eq!(sw.total_buffered(), 6);
        let drained = sw.drain_all();
        assert_eq!(drained.len(), 6);
        assert_eq!(sw.total_buffered(), 0);
        assert_eq!(sw.buffer.shared_used(), 0, "pool fully released");
        assert_eq!(sw.counters().dequeued, 0, "drain is not transmission");
        // Port-major order, FIFO within each port.
        let ids: Vec<u64> = drained.iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![0, 3, 1, 4, 2, 5]);
        // The switch remains usable after a drain.
        let r = sw.enqueue(pkt(9), 1, &mut rng);
        assert!(matches!(r.outcome, EnqueueOutcome::Enqueued { port: 1 }));
    }

    #[test]
    fn droptail_drops_on_overflow_without_dibs() {
        let mut sw = tiny_switch(DibsPolicy::Disabled, 2);
        let mut rng = SimRng::new(1);
        sw.enqueue(pkt(1), 0, &mut rng);
        sw.enqueue(pkt(2), 0, &mut rng);
        let r = sw.enqueue(pkt(3), 0, &mut rng);
        assert!(matches!(
            r.outcome,
            EnqueueOutcome::Dropped(DropReason::BufferFull)
        ));
        assert_eq!(sw.counters().dropped_full, 1);
    }

    #[test]
    fn dibs_detours_instead_of_dropping() {
        let mut sw = tiny_switch(DibsPolicy::Random, 2);
        let mut rng = SimRng::new(1);
        sw.enqueue(pkt(1), 0, &mut rng);
        sw.enqueue(pkt(2), 0, &mut rng);
        let r = sw.enqueue(pkt(3), 0, &mut rng);
        match r.outcome {
            EnqueueOutcome::Detoured { port } => {
                assert!((1..=3).contains(&port), "must detour to a switch port");
            }
            other => panic!("expected detour, got {other:?}"),
        }
        assert_eq!(sw.counters().detoured, 1);
        assert_eq!(sw.counters().dropped_full, 0);
        // The detoured packet carries the detour count and a CE mark.
        let port = (1..=3).find(|&p| sw.queue_len(p) == 1).unwrap();
        let d = sw.dequeue(port).unwrap();
        assert_eq!(d.detours, 1);
        assert!(d.ce, "detoured packets are marked (§5.3)");
    }

    #[test]
    fn dibs_never_detours_to_host_ports() {
        let mut sw = tiny_switch(DibsPolicy::Random, 1);
        let mut rng = SimRng::new(2);
        // Fill ports 1-3 (switch-facing) and then overflow port 1: the only
        // port with room is 0, which faces a host, so the packet must drop.
        for p in 1..=3 {
            sw.enqueue(pkt(p as u64), p, &mut rng);
        }
        let r = sw.enqueue(pkt(9), 1, &mut rng);
        assert!(matches!(
            r.outcome,
            EnqueueOutcome::Dropped(DropReason::BufferFull)
        ));
        assert_eq!(sw.queue_len(0), 0);
    }

    #[test]
    fn ecn_marks_above_threshold() {
        let mut sw = tiny_switch(DibsPolicy::Disabled, 10);
        let mut rng = SimRng::new(1);
        // Threshold is 2: the first two packets are unmarked, later ones marked.
        for i in 0..5 {
            sw.enqueue(pkt(i), 1, &mut rng);
        }
        let marks: Vec<bool> = (0..5).map(|_| sw.dequeue(1).unwrap().ce).collect();
        assert_eq!(marks, vec![false, false, true, true, true]);
        assert_eq!(sw.counters().marked, 3);
    }

    #[test]
    fn acks_are_not_marked() {
        let mut sw = tiny_switch(DibsPolicy::Disabled, 10);
        let mut rng = SimRng::new(1);
        for i in 0..4 {
            sw.enqueue(pkt(i), 1, &mut rng);
        }
        let ack = Packet::ack(
            PacketId(99),
            FlowId(0),
            HostId(1),
            HostId(0),
            0,
            false,
            64,
            SimTime::ZERO,
        );
        sw.enqueue(ack, 1, &mut rng);
        for _ in 0..4 {
            sw.dequeue(1);
        }
        assert!(!sw.dequeue(1).unwrap().ce);
    }

    #[test]
    fn traced_enqueue_reports_queue_transitions() {
        use dibs_trace::{KindMask, TraceBuffer};
        let mut sw = tiny_switch(DibsPolicy::Random, 2);
        let mut rng = SimRng::new(1);
        let mut buf = TraceBuffer::new(KindMask::ALL);
        sw.enqueue_traced(pkt(1), 0, &mut rng, 100, &mut buf);
        sw.enqueue_traced(pkt(2), 0, &mut rng, 200, &mut buf);
        // Port 0 is full: packet 3 must detour (and be CE-marked doing so).
        sw.enqueue_traced(pkt(3), 0, &mut rng, 300, &mut buf);
        sw.dequeue_traced(0, 400, &mut buf);
        let kinds: Vec<TraceKind> = buf.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceKind::Enqueue,
                TraceKind::Enqueue,
                TraceKind::EcnMark,
                TraceKind::Detour,
                TraceKind::Dequeue,
            ]
        );
        // Enqueue events carry the depth after the push.
        assert_eq!(buf.events()[0].qlen, 1);
        assert_eq!(buf.events()[1].qlen, 2);
        // The detour event carries the incremented detour count.
        assert_eq!(buf.events()[3].detours, 1);
        assert_eq!(buf.events()[3].packet, 3);
        assert_ne!(buf.events()[3].port, 0, "detour lands on another port");
        // Dequeue pops packet 1, leaving one resident on port 0.
        assert_eq!(buf.events()[4].packet, 1);
        assert_eq!(buf.events()[4].qlen, 1);
    }

    #[test]
    fn untraced_and_traced_paths_agree() {
        use dibs_trace::{KindMask, TraceBuffer};
        // The same seed must produce the same outcomes whether or not a
        // sink observes the run (tracing consumes no randomness).
        let run = |traced: bool| -> (u64, u64, u64) {
            let mut sw = tiny_switch(DibsPolicy::Random, 2);
            let mut rng = SimRng::new(7);
            let mut buf = TraceBuffer::new(KindMask::ALL);
            for i in 0..12 {
                if traced {
                    sw.enqueue_traced(pkt(i), 0, &mut rng, i * 10, &mut buf);
                } else {
                    sw.enqueue(pkt(i), 0, &mut rng);
                }
            }
            let c = sw.counters();
            (c.enqueued, c.detoured, c.dropped_full)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn pfabric_displaces_lower_priority() {
        let mut sw = SwitchCore::new(
            NodeId(0),
            SwitchConfig {
                buffer: BufferConfig::StaticPerPort { packets: 2 },
                ..SwitchConfig::pfabric()
            },
            vec![false, false],
        );
        let mut rng = SimRng::new(1);
        let mut lo1 = pkt(1);
        lo1.priority = 100;
        let mut lo2 = pkt(2);
        lo2.priority = 90;
        let mut hi = pkt(3);
        hi.priority = 5;
        sw.enqueue(lo1, 0, &mut rng);
        sw.enqueue(lo2, 0, &mut rng);
        let r = sw.enqueue(hi, 0, &mut rng);
        assert!(matches!(r.outcome, EnqueueOutcome::Enqueued { port: 0 }));
        let displaced = r.displaced.expect("one packet displaced");
        assert_eq!(displaced.id.0, 1, "worst priority (100) goes");
        // And the queue serves highest priority first.
        assert_eq!(sw.dequeue(0).unwrap().id.0, 3);
        assert_eq!(sw.counters().displaced, 1);
    }

    #[test]
    fn pfabric_drops_arrival_when_it_is_worst() {
        let mut sw = SwitchCore::new(
            NodeId(0),
            SwitchConfig {
                buffer: BufferConfig::StaticPerPort { packets: 1 },
                ..SwitchConfig::pfabric()
            },
            vec![false],
        );
        let mut rng = SimRng::new(1);
        let mut hi = pkt(1);
        hi.priority = 5;
        let mut lo = pkt(2);
        lo.priority = 100;
        sw.enqueue(hi, 0, &mut rng);
        let r = sw.enqueue(lo, 0, &mut rng);
        assert!(matches!(
            r.outcome,
            EnqueueOutcome::Dropped(DropReason::PriorityDisplaced)
        ));
        assert!(r.displaced.is_none());
    }

    #[test]
    fn shared_buffer_lets_hot_port_borrow() {
        let mut sw = SwitchCore::new(
            NodeId(0),
            SwitchConfig {
                buffer: BufferConfig::DynamicShared {
                    total_bytes: 20 * 1500,
                    alpha: 1.0,
                    per_port_reserve_bytes: 0,
                },
                ecn_threshold: None,
                dibs: DibsPolicy::Disabled,
                discipline: Discipline::Fifo,
                mark_detoured: false,
            },
            vec![false, false, false, false],
        );
        let mut rng = SimRng::new(1);
        // A single hot port can hold far more than total/ports = 5 packets.
        let mut admitted = 0;
        while let EnqueueOutcome::Enqueued { .. } =
            sw.enqueue(pkt(admitted as u64), 0, &mut rng).outcome
        {
            admitted += 1;
        }
        // With alpha = 1 a lone hot queue stabilizes at half the pool,
        // double its static fair share of total/ports = 5 packets.
        assert_eq!(admitted, 10, "dynamic threshold should allow borrowing");
        assert!((sw.free_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn free_fraction_tracks_occupancy() {
        let mut sw = tiny_switch(DibsPolicy::Disabled, 10);
        let mut rng = SimRng::new(1);
        assert_eq!(sw.free_fraction(), 1.0);
        for i in 0..20 {
            sw.enqueue(pkt(i), 1, &mut rng);
        }
        // 10 admitted (limit), 10 dropped; 10 of 40 slots used.
        assert_eq!(sw.total_buffered(), 10);
        assert!((sw.free_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn probabilistic_policy_detours_early() {
        let mut sw = SwitchCore::new(
            NodeId(0),
            SwitchConfig {
                buffer: BufferConfig::StaticPerPort { packets: 10 },
                ecn_threshold: None,
                dibs: DibsPolicy::Probabilistic { onset: 0.0 },
                discipline: Discipline::Fifo,
                mark_detoured: false,
            },
            vec![false, false],
        );
        let mut rng = SimRng::new(3);
        // Occupancy ramps from 0; with onset 0 any nonzero occupancy can
        // trigger early detours well before the queue is full.
        let mut detoured = 0;
        for i in 0..9 {
            if matches!(
                sw.enqueue(pkt(i), 0, &mut rng).outcome,
                EnqueueOutcome::Detoured { .. }
            ) {
                detoured += 1;
            }
        }
        assert!(detoured > 0, "expected early detours before overflow");
        assert!(sw.queue_len(0) < 9);
    }
}
