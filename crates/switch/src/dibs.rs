//! Detour-induced buffer sharing: the detour-port policies.
//!
//! The paper's default policy (§2) is **random**: when the desired output
//! queue is full, pick uniformly among ports that (a) face another switch —
//! hosts do not forward packets not addressed to them — and (b) have buffer
//! room. §7 sketches three refinements (load-aware, flow-based, and
//! probabilistic detouring), all implemented here so they can be compared in
//! the `policy_comparison` example and the ablation benches.

use dibs_engine::rng::SimRng;
use dibs_net::packet::Packet;
use dibs_net::routing::ecmp_hash;
use dibs_net::{HostId, NodeId};

/// Salt for the flow-based detour hash, distinct from the FIB's ECMP salt
/// so detour placement does not correlate with shortest-path selection.
pub const DETOUR_SALT: u64 = 0xD1B5;

/// The flow-based detour hash for `pkt` at `node`: the ECMP mixer keyed on
/// `(flow, node, dst)` so a flow detours consistently at a given switch
/// but differently at different switches.
///
/// Pure, so callers may memoize it per `(flow, node, dst)` (the switch
/// core does, via [`dibs_net::routing::EcmpMemo`]) and pass the cached
/// value to [`DibsPolicy::choose`].
pub fn detour_flow_hash(pkt: &Packet, node: NodeId) -> u64 {
    ecmp_hash(pkt.flow, node, HostId(pkt.dst.0), DETOUR_SALT)
}

/// How a congested switch chooses a detour port.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DibsPolicy {
    /// Never detour: drop on overflow (plain droptail; the DCTCP baseline).
    Disabled,
    /// Uniform random among eligible ports (the paper's parameterless
    /// default).
    Random,
    /// Prefer the eligible port with the lowest buffer occupancy (§7,
    /// "load-aware detouring").
    LoadAware,
    /// Hash the flow onto an eligible port so one flow's detoured packets
    /// follow a consistent path (§7, "flow-based detouring").
    FlowBased,
    /// Begin detouring *before* the queue is full: once occupancy exceeds
    /// `onset`, detour with probability ramping linearly to 1 at a full
    /// queue (§7, "probabilistic detouring").
    Probabilistic {
        /// Occupancy fraction at which detouring may begin, in `[0, 1)`.
        onset: f64,
    },
}

impl DibsPolicy {
    /// Whether this policy ever detours.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, DibsPolicy::Disabled)
    }

    /// Probability of detouring a packet given the desired queue's occupancy
    /// when that queue still has room.
    ///
    /// Zero for every policy except `Probabilistic`.
    pub fn early_detour_probability(&self, occupancy: f64) -> f64 {
        match *self {
            DibsPolicy::Probabilistic { onset } if occupancy > onset && onset < 1.0 => {
                ((occupancy - onset) / (1.0 - onset)).clamp(0.0, 1.0)
            }
            _ => 0.0,
        }
    }

    /// Picks a detour port among `eligible` (ports that are switch-facing,
    /// distinct from the desired port, and have buffer room).
    ///
    /// `occupancy(port)` reports the port's buffer occupancy in `[0, 1]`
    /// (used by `LoadAware`). `flow_hash` is the value of
    /// [`detour_flow_hash`] for this packet at this node (used by
    /// `FlowBased`); the switch core supplies it from a per-switch memo so
    /// the hash is mixed once per flow, not once per packet. Returns
    /// `None` when no port is eligible or the policy is disabled.
    pub fn choose(
        &self,
        eligible: &[usize],
        occupancy: impl Fn(usize) -> f64,
        flow_hash: u64,
        rng: &mut SimRng,
    ) -> Option<usize> {
        if eligible.is_empty() {
            return None;
        }
        match *self {
            DibsPolicy::Disabled => None,
            DibsPolicy::Random | DibsPolicy::Probabilistic { .. } => {
                Some(eligible[rng.below(eligible.len())])
            }
            DibsPolicy::LoadAware => {
                let mut best = eligible[0];
                let mut best_occ = occupancy(best);
                for &p in &eligible[1..] {
                    let o = occupancy(p);
                    if o < best_occ {
                        best = p;
                        best_occ = o;
                    }
                }
                Some(best)
            }
            DibsPolicy::FlowBased => {
                // `h % len` is < len, which is a usize.
                #[allow(clippy::cast_possible_truncation)]
                Some(eligible[(flow_hash % eligible.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibs_engine::time::SimTime;
    use dibs_net::ids::{FlowId, PacketId};

    fn pkt(flow: u32) -> Packet {
        Packet::data(
            PacketId(0),
            FlowId(flow),
            HostId(0),
            HostId(9),
            0,
            1460,
            64,
            SimTime::ZERO,
        )
    }

    fn hash(flow: u32, node: u32) -> u64 {
        detour_flow_hash(&pkt(flow), NodeId(node))
    }

    #[test]
    fn disabled_never_detours() {
        let mut rng = SimRng::new(1);
        assert_eq!(
            DibsPolicy::Disabled.choose(&[1, 2, 3], |_| 0.0, hash(0, 0), &mut rng),
            None
        );
        assert!(!DibsPolicy::Disabled.is_enabled());
    }

    #[test]
    fn empty_eligible_set_means_drop() {
        let mut rng = SimRng::new(1);
        assert_eq!(
            DibsPolicy::Random.choose(&[], |_| 0.0, hash(0, 0), &mut rng),
            None
        );
    }

    #[test]
    fn random_covers_all_eligible_ports() {
        let mut rng = SimRng::new(7);
        let eligible = [2usize, 5, 6];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let p = DibsPolicy::Random
                .choose(&eligible, |_| 0.0, hash(0, 0), &mut rng)
                .unwrap();
            assert!(eligible.contains(&p));
            seen.insert(p);
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn load_aware_picks_emptiest() {
        let mut rng = SimRng::new(7);
        let occ = |p: usize| match p {
            2 => 0.9,
            5 => 0.1,
            6 => 0.5,
            _ => 1.0,
        };
        let p = DibsPolicy::LoadAware
            .choose(&[2, 5, 6], occ, hash(0, 0), &mut rng)
            .unwrap();
        assert_eq!(p, 5);
    }

    #[test]
    fn flow_based_is_stable_per_flow_and_varies_across_flows() {
        let mut rng = SimRng::new(7);
        let eligible = [0usize, 1, 2, 3, 4, 5, 6, 7];
        let first = DibsPolicy::FlowBased
            .choose(&eligible, |_| 0.0, hash(42, 3), &mut rng)
            .unwrap();
        for _ in 0..10 {
            let again = DibsPolicy::FlowBased
                .choose(&eligible, |_| 0.0, hash(42, 3), &mut rng)
                .unwrap();
            assert_eq!(first, again);
        }
        let mut distinct = std::collections::BTreeSet::new();
        for f in 0..64 {
            distinct.insert(
                DibsPolicy::FlowBased
                    .choose(&eligible, |_| 0.0, hash(f, 3), &mut rng)
                    .unwrap(),
            );
        }
        assert!(distinct.len() > 4, "flow hash should spread: {distinct:?}");
    }

    #[test]
    fn detour_hash_matches_ecmp_mixer() {
        // The memoizable helper must equal the inline mixer it replaced.
        let p = pkt(42);
        assert_eq!(
            detour_flow_hash(&p, NodeId(3)),
            ecmp_hash(p.flow, NodeId(3), HostId(p.dst.0), DETOUR_SALT)
        );
        // And vary by node so detours decorrelate across switches.
        assert_ne!(
            detour_flow_hash(&p, NodeId(3)),
            detour_flow_hash(&p, NodeId(4))
        );
    }

    #[test]
    fn probabilistic_ramp() {
        let p = DibsPolicy::Probabilistic { onset: 0.8 };
        assert_eq!(p.early_detour_probability(0.5), 0.0);
        assert_eq!(p.early_detour_probability(0.8), 0.0);
        assert!((p.early_detour_probability(0.9) - 0.5).abs() < 1e-9);
        assert!((p.early_detour_probability(1.0) - 1.0).abs() < 1e-9);
        // Other policies never early-detour.
        assert_eq!(DibsPolicy::Random.early_detour_probability(0.99), 0.0);
    }
}
