//! Buffer admission control.
//!
//! The paper evaluates two memory organizations (§4, §5.5):
//!
//! * **Static** per-port buffers — the default configuration: a fixed number
//!   of packets per output port (100 in Table 1, swept 1–700 in Figs 7/12).
//! * **Dynamic Buffer Allocation (DBA)** — §5.5.2: a single shallow memory
//!   shared by all ports, modeled on the Arista 7050QX-32 (1.7 MB across
//!   8×1 GbE ports in the paper's simulation). We implement the classic
//!   Choudhury–Hahne dynamic-threshold rule: a port may grow its queue up to
//!   `alpha ×` the *remaining free* shared memory, with a small per-port
//!   reserve so no port can be starved outright.

use crate::queue::PortQueue;

/// Admission-control configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BufferConfig {
    /// Fixed per-port limit in packets.
    StaticPerPort {
        /// Maximum packets resident in any one output queue.
        packets: usize,
    },
    /// Shared memory with dynamic thresholds.
    DynamicShared {
        /// Total shared memory in bytes (1.7 MB in §5.5.2).
        total_bytes: u64,
        /// Dynamic-threshold factor `alpha`.
        alpha: f64,
        /// Bytes each port may always use regardless of the threshold.
        per_port_reserve_bytes: u64,
    },
    /// Unbounded queues (the "infinite buffer" baseline of Fig 6/7).
    Infinite,
}

impl BufferConfig {
    /// The paper's Table 1 default: 100 packets per port.
    pub fn paper_default() -> Self {
        BufferConfig::StaticPerPort { packets: 100 }
    }

    /// The §5.5.2 shared-memory switch: 1.7 MB shared across the ports.
    pub fn arista_like() -> Self {
        BufferConfig::DynamicShared {
            total_bytes: 1_700_000,
            alpha: 1.0,
            per_port_reserve_bytes: 2 * 1500,
        }
    }
}

/// Tracks shared-memory usage and answers "does this packet fit on this
/// port?".
#[derive(Debug, Clone)]
pub struct BufferManager {
    config: BufferConfig,
    shared_used: u64,
}

impl BufferManager {
    /// Creates a manager for the given configuration.
    pub fn new(config: BufferConfig) -> Self {
        BufferManager {
            config,
            shared_used: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> BufferConfig {
        self.config
    }

    /// Bytes currently admitted under shared-memory accounting (zero for
    /// static configurations).
    pub fn shared_used(&self) -> u64 {
        self.shared_used
    }

    /// Whether a packet of `wire_bytes` may be admitted to `queue`.
    pub fn admits(&self, queue: &PortQueue, wire_bytes: u32) -> bool {
        match self.config {
            BufferConfig::Infinite => true,
            BufferConfig::StaticPerPort { packets } => queue.len() < packets,
            BufferConfig::DynamicShared {
                total_bytes,
                alpha,
                per_port_reserve_bytes,
            } => {
                let wire = u64::from(wire_bytes);
                let free = total_bytes.saturating_sub(self.shared_used);
                if wire > free {
                    return false;
                }
                if queue.bytes() + wire <= per_port_reserve_bytes {
                    return true;
                }
                // Choudhury-Hahne: queue may grow to alpha * free memory.
                (queue.bytes() + wire) as f64 <= alpha * free as f64
            }
        }
    }

    /// Records admission of a packet.
    pub fn on_enqueue(&mut self, wire_bytes: u32) {
        if matches!(self.config, BufferConfig::DynamicShared { .. }) {
            self.shared_used += u64::from(wire_bytes);
        }
    }

    /// Records departure (transmit or displacement drop) of a packet.
    pub fn on_dequeue(&mut self, wire_bytes: u32) {
        if matches!(self.config, BufferConfig::DynamicShared { .. }) {
            self.shared_used = self
                .shared_used
                .checked_sub(u64::from(wire_bytes))
                .expect("buffer accounting underflow");
        }
    }

    /// Fraction of the port's buffer currently occupied, in `[0, 1]`.
    ///
    /// For shared memory this is the fraction of the *pool* in use, which is
    /// what the neighbor-availability statistic of Fig 5 wants.
    pub fn occupancy(&self, queue: &PortQueue) -> f64 {
        match self.config {
            BufferConfig::Infinite => 0.0,
            BufferConfig::StaticPerPort { packets } => {
                if packets == 0 {
                    1.0
                } else {
                    (queue.len() as f64 / packets as f64).min(1.0)
                }
            }
            BufferConfig::DynamicShared { total_bytes, .. } => {
                if total_bytes == 0 {
                    1.0
                } else {
                    (self.shared_used as f64 / total_bytes as f64).min(1.0)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Discipline;
    use dibs_engine::time::SimTime;
    use dibs_net::ids::{FlowId, HostId, PacketId};
    use dibs_net::packet::Packet;

    fn pkt() -> Packet {
        Packet::data(
            PacketId(0),
            FlowId(0),
            HostId(0),
            HostId(1),
            0,
            1460,
            64,
            SimTime::ZERO,
        )
    }

    #[test]
    fn static_limit_counts_packets() {
        let mgr = BufferManager::new(BufferConfig::StaticPerPort { packets: 2 });
        let mut q = PortQueue::new(Discipline::Fifo);
        assert!(mgr.admits(&q, 1500));
        q.push(pkt());
        assert!(mgr.admits(&q, 1500));
        q.push(pkt());
        assert!(!mgr.admits(&q, 1500));
        assert!((mgr.occupancy(&q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn infinite_always_admits() {
        let mgr = BufferManager::new(BufferConfig::Infinite);
        let mut q = PortQueue::new(Discipline::Fifo);
        for _ in 0..10_000 {
            q.push(pkt());
        }
        assert!(mgr.admits(&q, 1500));
        assert_eq!(mgr.occupancy(&q), 0.0);
    }

    #[test]
    fn dynamic_threshold_shrinks_as_pool_fills() {
        let mut mgr = BufferManager::new(BufferConfig::DynamicShared {
            total_bytes: 15_000, // Room for 10 x 1500B.
            alpha: 1.0,
            per_port_reserve_bytes: 0,
        });
        let mut hot = PortQueue::new(Discipline::Fifo);
        // Fill the hot port until the dynamic threshold rejects it.
        let mut admitted = 0;
        while mgr.admits(&hot, 1500) {
            hot.push(pkt());
            mgr.on_enqueue(1500);
            admitted += 1;
            assert!(admitted <= 10, "admitted past total memory");
        }
        // With alpha=1 a single hot queue stabilizes at half the pool:
        // q <= total - q.
        assert_eq!(admitted, 5);
        // A cold port can still get something in (free = 7500, queue 0).
        let cold = PortQueue::new(Discipline::Fifo);
        assert!(mgr.admits(&cold, 1500));
    }

    #[test]
    fn reserve_guarantees_minimum() {
        let mut mgr = BufferManager::new(BufferConfig::DynamicShared {
            total_bytes: 10 * 1500,
            alpha: 0.0001, // Threshold effectively zero.
            per_port_reserve_bytes: 2 * 1500,
        });
        let mut q = PortQueue::new(Discipline::Fifo);
        assert!(mgr.admits(&q, 1500));
        q.push(pkt());
        mgr.on_enqueue(1500);
        assert!(mgr.admits(&q, 1500));
        q.push(pkt());
        mgr.on_enqueue(1500);
        // Beyond the reserve the tiny alpha rejects.
        assert!(!mgr.admits(&q, 1500));
    }

    #[test]
    fn never_admits_past_total() {
        let mut mgr = BufferManager::new(BufferConfig::DynamicShared {
            total_bytes: 3 * 1500,
            alpha: 100.0, // Huge alpha: only the hard cap binds.
            per_port_reserve_bytes: 0,
        });
        let mut q = PortQueue::new(Discipline::Fifo);
        let mut admitted = 0;
        while mgr.admits(&q, 1500) {
            q.push(pkt());
            mgr.on_enqueue(1500);
            admitted += 1;
            assert!(admitted <= 3);
        }
        assert_eq!(admitted, 3);
        // Dequeue releases memory.
        mgr.on_dequeue(1500);
        assert!(mgr.admits(&q, 1500));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn dequeue_underflow_is_a_bug() {
        let mut mgr = BufferManager::new(BufferConfig::arista_like());
        mgr.on_dequeue(1500);
    }
}
