//! The NetFPGA "Output Port Lookup" stage, modeled in software.
//!
//! §5.1 of the paper implements DIBS in the NetFPGA reference switch by
//! handing the destination-based lookup module a *bitmap of available output
//! ports* (those whose queues are not full). The module ANDs this with the
//! forwarding entry's desired-port bitmap; if the result is nonzero the
//! packet is forwarded normally, otherwise it is detoured to a set bit of
//! the available bitmap — all within a single clock cycle.
//!
//! We reproduce that decision path bit-for-bit (for switches of up to 64
//! ports) and benchmark it in `dibs-bench` as the substitute for the paper's
//! line-rate hardware validation: the claim being checked is that the DIBS
//! decision adds no measurable latency over the plain lookup.

/// A set of ports, one bit per port (port *i* = bit *i*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PortBitmap(pub u64);

impl PortBitmap {
    /// The empty set.
    pub const EMPTY: PortBitmap = PortBitmap(0);

    /// A singleton set.
    ///
    /// # Panics
    ///
    /// Panics if `port >= 64`.
    pub fn single(port: usize) -> Self {
        assert!(port < 64, "bitmap supports up to 64 ports");
        PortBitmap(1 << port)
    }

    /// Builds a set from port indices.
    pub fn from_ports(ports: impl IntoIterator<Item = usize>) -> Self {
        let mut bm = 0u64;
        for p in ports {
            assert!(p < 64, "bitmap supports up to 64 ports");
            bm |= 1 << p;
        }
        PortBitmap(bm)
    }

    /// Inserts a port.
    pub fn set(&mut self, port: usize) {
        assert!(port < 64);
        self.0 |= 1 << port;
    }

    /// Removes a port.
    pub fn clear(&mut self, port: usize) {
        assert!(port < 64);
        self.0 &= !(1 << port);
    }

    /// Whether the port is present.
    pub fn contains(&self, port: usize) -> bool {
        port < 64 && self.0 & (1 << port) != 0
    }

    /// Number of ports present.
    pub fn count(&self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// The `n`-th set bit (0-based), if any — constant-time-ish selection
    /// used to pick a uniformly random member.
    pub fn nth_set(&self, mut n: u32) -> Option<usize> {
        let mut bits = self.0;
        while bits != 0 {
            let tz = bits.trailing_zeros();
            if n == 0 {
                return Some(tz as usize);
            }
            n -= 1;
            bits &= bits - 1;
        }
        None
    }
}

/// Outcome of the output-port-lookup stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupDecision {
    /// Desired port has room: forward normally.
    Forward(usize),
    /// Desired port full, detour port chosen.
    Detour(usize),
    /// No available port at all: drop.
    Drop,
}

/// The single-cycle forward-or-detour decision.
///
/// `desired` is the forwarding entry's output bitmap (a single bit under
/// destination routing), `available` the not-full ports, and
/// `detour_eligible` the switch-facing ports that DIBS may use. `entropy`
/// supplies the random choice among eligible detour ports.
///
/// # Examples
///
/// ```
/// use dibs_switch::lookup::{decide, LookupDecision, PortBitmap};
///
/// let desired = PortBitmap::single(3);
/// let avail = PortBitmap::from_ports([1, 2]);
/// let eligible = PortBitmap::from_ports([1, 2]);
/// match decide(desired, avail, eligible, 0) {
///     LookupDecision::Detour(p) => assert!(p == 1 || p == 2),
///     other => panic!("expected detour, got {other:?}"),
/// }
/// ```
#[inline]
pub fn decide(
    desired: PortBitmap,
    available: PortBitmap,
    detour_eligible: PortBitmap,
    entropy: u64,
) -> LookupDecision {
    let hit = desired.0 & available.0;
    if hit != 0 {
        return LookupDecision::Forward(hit.trailing_zeros() as usize);
    }
    let candidates = PortBitmap(available.0 & detour_eligible.0 & !desired.0);
    let n = candidates.count();
    if n == 0 {
        return LookupDecision::Drop;
    }
    // `entropy % n` is < n, which is a u32.
    #[allow(clippy::cast_possible_truncation)]
    let pick = (entropy % u64::from(n)) as u32;
    LookupDecision::Detour(candidates.nth_set(pick).expect("count checked"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_when_desired_available() {
        let d = decide(
            PortBitmap::single(5),
            PortBitmap::from_ports([4, 5, 6]),
            PortBitmap::from_ports([4, 6]),
            99,
        );
        assert_eq!(d, LookupDecision::Forward(5));
    }

    #[test]
    fn detour_when_desired_full() {
        let d = decide(
            PortBitmap::single(5),
            PortBitmap::from_ports([4, 6]),
            PortBitmap::from_ports([4, 6]),
            0,
        );
        assert!(matches!(
            d,
            LookupDecision::Detour(4) | LookupDecision::Detour(6)
        ));
    }

    #[test]
    fn drop_when_nothing_available() {
        let d = decide(
            PortBitmap::single(5),
            PortBitmap::EMPTY,
            PortBitmap::from_ports([4, 6]),
            1,
        );
        assert_eq!(d, LookupDecision::Drop);
    }

    #[test]
    fn drop_when_only_ineligible_available() {
        // Port 2 has room but faces a host: must drop, not detour there.
        let d = decide(
            PortBitmap::single(5),
            PortBitmap::from_ports([2]),
            PortBitmap::from_ports([4, 6]),
            1,
        );
        assert_eq!(d, LookupDecision::Drop);
    }

    #[test]
    fn entropy_spreads_detours_uniformly() {
        let mut counts = [0u32; 3];
        let eligible = PortBitmap::from_ports([1, 3, 7]);
        for e in 0..3000u64 {
            match decide(PortBitmap::single(0), eligible, eligible, e) {
                LookupDecision::Detour(1) => counts[0] += 1,
                LookupDecision::Detour(3) => counts[1] += 1,
                LookupDecision::Detour(7) => counts[2] += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        for c in counts {
            assert_eq!(c, 1000);
        }
    }

    #[test]
    fn nth_set_walks_bits() {
        let bm = PortBitmap::from_ports([0, 9, 33]);
        assert_eq!(bm.nth_set(0), Some(0));
        assert_eq!(bm.nth_set(1), Some(9));
        assert_eq!(bm.nth_set(2), Some(33));
        assert_eq!(bm.nth_set(3), None);
        assert_eq!(bm.count(), 3);
    }

    #[test]
    fn bitmap_set_clear() {
        let mut bm = PortBitmap::EMPTY;
        bm.set(7);
        assert!(bm.contains(7));
        bm.clear(7);
        assert!(bm.is_empty());
        assert!(!bm.contains(63));
    }
}
