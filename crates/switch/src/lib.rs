#![warn(missing_docs)]

//! Switch models for the DIBS reproduction.
//!
//! The pieces:
//!
//! * [`queue`] — FIFO and pFabric per-port queues.
//! * [`buffer`] — static per-port, dynamic shared (DBA), and infinite
//!   buffer admission control.
//! * [`dibs`] — the detour-port policies (random default plus the §7
//!   variants).
//! * [`lookup`] — the NetFPGA output-port-lookup stage as a bitmap
//!   decision, used by the hardware-substitution microbenchmark.
//! * [`switch`] — [`switch::SwitchCore`], tying the above into the full
//!   data path used by the simulator.

pub mod buffer;
pub mod dibs;
pub mod lookup;
pub mod queue;
pub mod switch;

pub use buffer::{BufferConfig, BufferManager};
pub use dibs::DibsPolicy;
pub use queue::{Discipline, PortQueue};
pub use switch::{
    DropReason, EnqueueOutcome, EnqueueResult, SwitchConfig, SwitchCore, SwitchCounters,
};
