//! Property-based tests for the switch data path: buffer accounting,
//! detour eligibility, and pFabric priority behavior under random operation
//! sequences, driven by the deterministic harness in `dibs_engine::testkit`.

use dibs_engine::rng::SimRng;
use dibs_engine::testkit::{cases_n, vec_of};
use dibs_engine::time::SimTime;
use dibs_net::ids::{FlowId, HostId, NodeId, PacketId};
use dibs_net::packet::Packet;
use dibs_switch::{
    BufferConfig, DibsPolicy, Discipline, DropReason, EnqueueOutcome, SwitchConfig, SwitchCore,
};

fn pkt(id: u64, flow: u32, priority: u64) -> Packet {
    let mut p = Packet::data(
        PacketId(id),
        FlowId(flow),
        HostId(0),
        HostId(1),
        0,
        1460,
        64,
        SimTime::ZERO,
    );
    p.priority = priority;
    p
}

/// One random operation against the switch.
#[derive(Debug, Clone)]
enum Op {
    Enqueue {
        port: usize,
        flow: u32,
        priority: u64,
    },
    Dequeue {
        port: usize,
    },
}

fn gen_ops(rng: &mut SimRng, ports: usize, len: usize) -> Vec<Op> {
    vec_of(rng, 1..len, |r| {
        if r.chance(0.5) {
            Op::Enqueue {
                port: r.below(ports),
                flow: u32::try_from(r.next_u64() & 0xffff_ffff).expect("masked"),
                priority: r.range_u64(1, 1_000_000),
            }
        } else {
            Op::Dequeue {
                port: r.below(ports),
            }
        }
    })
}

/// Static per-port buffers: queue lengths never exceed the limit, every
/// packet is enqueued / detoured / dropped exactly once, and dequeues
/// return packets previously admitted.
#[test]
fn static_buffer_invariants() {
    cases_n("static-buffer", 64, |rng, _| {
        let ops = gen_ops(rng, 6, 300);
        let limit = rng.below(7) + 1;
        let dibs_on = rng.chance(0.5);
        let seed = rng.next_u64();
        let cfg = SwitchConfig {
            buffer: BufferConfig::StaticPerPort { packets: limit },
            ecn_threshold: Some(2),
            dibs: if dibs_on {
                DibsPolicy::Random
            } else {
                DibsPolicy::Disabled
            },
            discipline: Discipline::Fifo,
            mark_detoured: true,
        };
        // Port 0 faces a host.
        let mut sw = SwitchCore::new(
            NodeId(0),
            cfg,
            vec![true, false, false, false, false, false],
        );
        let mut sw_rng = SimRng::new(seed);
        let mut resident = 0usize;
        let mut id = 0u64;
        for op in &ops {
            match *op {
                Op::Enqueue {
                    port,
                    flow,
                    priority,
                } => {
                    id += 1;
                    match sw
                        .enqueue(pkt(id, flow, priority), port, &mut sw_rng)
                        .outcome
                    {
                        EnqueueOutcome::Enqueued { port: p } => {
                            assert_eq!(p, port);
                            resident += 1;
                        }
                        EnqueueOutcome::Detoured { port: p } => {
                            assert!(dibs_on, "detour with DIBS disabled");
                            assert_ne!(p, port);
                            assert!(!sw.is_host_facing(p), "detoured to a host port");
                            resident += 1;
                        }
                        EnqueueOutcome::Dropped(DropReason::BufferFull) => {}
                        EnqueueOutcome::Dropped(r) => {
                            panic!("unexpected drop reason {r:?}");
                        }
                    }
                }
                Op::Dequeue { port } => {
                    if sw.dequeue(port).is_some() {
                        resident -= 1;
                    }
                }
            }
            for p in 0..sw.num_ports() {
                assert!(sw.queue_len(p) <= limit, "port {p} over limit");
            }
            assert_eq!(sw.total_buffered(), resident);
        }
        // Counter bookkeeping balances.
        let c = sw.counters();
        assert_eq!(c.enqueued + c.detoured, resident as u64 + c.dequeued);
    });
}

/// Shared (DBA) buffers: total admitted bytes never exceed the pool, and
/// draining releases memory monotonically.
#[test]
fn dba_pool_never_overflows() {
    cases_n("dba-pool", 64, |rng, _| {
        let ops = gen_ops(rng, 4, 300);
        let seed = rng.next_u64();
        let total_bytes = 20 * 1500u64;
        let cfg = SwitchConfig {
            buffer: BufferConfig::DynamicShared {
                total_bytes,
                alpha: 1.0,
                per_port_reserve_bytes: 1500,
            },
            ecn_threshold: None,
            dibs: DibsPolicy::Random,
            discipline: Discipline::Fifo,
            mark_detoured: false,
        };
        let mut sw = SwitchCore::new(NodeId(0), cfg, vec![false; 4]);
        let mut sw_rng = SimRng::new(seed);
        let mut id = 0u64;
        for op in &ops {
            match *op {
                Op::Enqueue {
                    port,
                    flow,
                    priority,
                } => {
                    id += 1;
                    sw.enqueue(pkt(id, flow, priority), port, &mut sw_rng);
                }
                Op::Dequeue { port } => {
                    sw.dequeue(port);
                }
            }
            let buffered_bytes: u64 = (0..sw.num_ports()).map(|p| sw.queue_bytes(p)).sum();
            assert!(
                buffered_bytes <= total_bytes,
                "pool overflow: {buffered_bytes}"
            );
            assert!((0.0..=1.0).contains(&sw.free_fraction()));
        }
    });
}

/// pFabric: a queue never holds a packet with worse priority than one it
/// displaced, and dequeue order is nondecreasing priority among packets
/// present at the same time.
#[test]
fn pfabric_priority_invariants() {
    cases_n("pfabric-priority", 64, |rng, _| {
        let priorities = vec_of(rng, 1..60, |r| r.range_u64(1, 1000));
        let cfg = SwitchConfig {
            buffer: BufferConfig::StaticPerPort { packets: 8 },
            ..SwitchConfig::pfabric()
        };
        let mut sw = SwitchCore::new(NodeId(0), cfg, vec![false]);
        let mut sw_rng = SimRng::new(1);
        let mut admitted: Vec<u64> = Vec::new();
        for (i, &pr) in priorities.iter().enumerate() {
            let fid = u32::try_from(i).expect("loop index fits u32");
            let r = sw.enqueue(pkt(i as u64, fid, pr), 0, &mut sw_rng);
            match r.outcome {
                EnqueueOutcome::Enqueued { .. } => {
                    admitted.push(pr);
                    if let Some(d) = r.displaced {
                        // The displaced packet had the worst priority.
                        let pos = admitted.iter().position(|&x| x == d.priority).unwrap();
                        admitted.remove(pos);
                        assert!(d.priority >= pr);
                    }
                }
                EnqueueOutcome::Dropped(_) => {
                    assert!(r.displaced.is_none());
                    // Arrival was no better than the resident worst.
                    let worst = admitted.iter().max().copied().unwrap_or(u64::MAX);
                    assert!(pr >= worst);
                }
                EnqueueOutcome::Detoured { .. } => panic!("pFabric never detours"),
            }
        }
        // Drain: priorities come out sorted ascending (highest priority =
        // smallest first).
        let mut out = Vec::new();
        while let Some(p) = sw.dequeue(0) {
            out.push(p.priority);
        }
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(&out, &sorted, "pFabric dequeue must follow priority order");
        // And the set matches what we believed was admitted.
        let mut adm = admitted.clone();
        adm.sort_unstable();
        assert_eq!(adm, sorted);
    });
}

/// ECN marking: with threshold K, exactly the packets that found >= K
/// packets already queued get marked (FIFO, single port, no DIBS).
#[test]
fn ecn_marks_match_threshold() {
    cases_n("ecn-threshold", 64, |rng, _| {
        let n = rng.below(39) + 1;
        let k = rng.below(19) + 1;
        let cfg = SwitchConfig {
            buffer: BufferConfig::StaticPerPort { packets: 100 },
            ecn_threshold: Some(k),
            dibs: DibsPolicy::Disabled,
            discipline: Discipline::Fifo,
            mark_detoured: false,
        };
        let mut sw = SwitchCore::new(NodeId(0), cfg, vec![false]);
        let mut sw_rng = SimRng::new(1);
        for i in 0..n {
            sw.enqueue(pkt(i as u64, 0, 1), 0, &mut sw_rng);
        }
        let mut marked = 0;
        while let Some(p) = sw.dequeue(0) {
            if p.ce {
                marked += 1;
            }
        }
        assert_eq!(marked, n.saturating_sub(k), "n={n} k={k}");
    });
}
