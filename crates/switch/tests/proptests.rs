//! Property-based tests for the switch data path: buffer accounting,
//! detour eligibility, and pFabric priority behavior under random operation
//! sequences.

use dibs_engine::rng::SimRng;
use dibs_engine::time::SimTime;
use dibs_net::ids::{FlowId, HostId, NodeId, PacketId};
use dibs_net::packet::Packet;
use dibs_switch::{
    BufferConfig, DibsPolicy, Discipline, DropReason, EnqueueOutcome, SwitchConfig, SwitchCore,
};
use proptest::prelude::*;

fn pkt(id: u64, flow: u32, priority: u64) -> Packet {
    let mut p = Packet::data(
        PacketId(id),
        FlowId(flow),
        HostId(0),
        HostId(1),
        0,
        1460,
        64,
        SimTime::ZERO,
    );
    p.priority = priority;
    p
}

/// One random operation against the switch.
#[derive(Debug, Clone)]
enum Op {
    Enqueue {
        port: usize,
        flow: u32,
        priority: u64,
    },
    Dequeue {
        port: usize,
    },
}

fn arb_ops(ports: usize, len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0..ports, any::<u32>(), 1u64..1_000_000).prop_map(|(port, flow, priority)| {
                Op::Enqueue {
                    port,
                    flow,
                    priority,
                }
            }),
            (0..ports).prop_map(|port| Op::Dequeue { port }),
        ],
        1..len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Static per-port buffers: queue lengths never exceed the limit, every
    /// packet is enqueued / detoured / dropped exactly once, and dequeues
    /// return packets previously admitted.
    #[test]
    fn static_buffer_invariants(
        ops in arb_ops(6, 300),
        limit in 1usize..8,
        dibs_on in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let cfg = SwitchConfig {
            buffer: BufferConfig::StaticPerPort { packets: limit },
            ecn_threshold: Some(2),
            dibs: if dibs_on { DibsPolicy::Random } else { DibsPolicy::Disabled },
            discipline: Discipline::Fifo,
            mark_detoured: true,
        };
        // Port 0 faces a host.
        let mut sw = SwitchCore::new(NodeId(0), cfg, vec![true, false, false, false, false, false]);
        let mut rng = SimRng::new(seed);
        let mut resident = 0usize;
        let mut id = 0u64;
        for op in &ops {
            match *op {
                Op::Enqueue { port, flow, priority } => {
                    id += 1;
                    match sw.enqueue(pkt(id, flow, priority), port, &mut rng).outcome {
                        EnqueueOutcome::Enqueued { port: p } => {
                            prop_assert_eq!(p, port);
                            resident += 1;
                        }
                        EnqueueOutcome::Detoured { port: p } => {
                            prop_assert!(dibs_on, "detour with DIBS disabled");
                            prop_assert_ne!(p, port);
                            prop_assert!(!sw.is_host_facing(p), "detoured to a host port");
                            resident += 1;
                        }
                        EnqueueOutcome::Dropped(DropReason::BufferFull) => {}
                        EnqueueOutcome::Dropped(r) => {
                            prop_assert!(false, "unexpected drop reason {r:?}");
                        }
                    }
                }
                Op::Dequeue { port } => {
                    if sw.dequeue(port).is_some() {
                        resident -= 1;
                    }
                }
            }
            for p in 0..sw.num_ports() {
                prop_assert!(sw.queue_len(p) <= limit, "port {p} over limit");
            }
            prop_assert_eq!(sw.total_buffered(), resident);
        }
        // Counter bookkeeping balances.
        let c = sw.counters();
        prop_assert_eq!(c.enqueued + c.detoured, (resident + c.dequeued as usize) as u64);
    }

    /// Shared (DBA) buffers: total admitted bytes never exceed the pool, and
    /// draining releases memory monotonically.
    #[test]
    fn dba_pool_never_overflows(ops in arb_ops(4, 300), seed in any::<u64>()) {
        let total_bytes = 20 * 1500u64;
        let cfg = SwitchConfig {
            buffer: BufferConfig::DynamicShared {
                total_bytes,
                alpha: 1.0,
                per_port_reserve_bytes: 1500,
            },
            ecn_threshold: None,
            dibs: DibsPolicy::Random,
            discipline: Discipline::Fifo,
            mark_detoured: false,
        };
        let mut sw = SwitchCore::new(NodeId(0), cfg, vec![false; 4]);
        let mut rng = SimRng::new(seed);
        let mut id = 0u64;
        for op in &ops {
            match *op {
                Op::Enqueue { port, flow, priority } => {
                    id += 1;
                    sw.enqueue(pkt(id, flow, priority), port, &mut rng);
                }
                Op::Dequeue { port } => {
                    sw.dequeue(port);
                }
            }
            let buffered_bytes: u64 = (0..sw.num_ports()).map(|p| sw.queue_bytes(p)).sum();
            prop_assert!(buffered_bytes <= total_bytes, "pool overflow: {buffered_bytes}");
            prop_assert!((0.0..=1.0).contains(&sw.free_fraction()));
        }
    }

    /// pFabric: a queue never holds a packet with worse priority than one it
    /// displaced, and dequeue order is nondecreasing priority among packets
    /// present at the same time.
    #[test]
    fn pfabric_priority_invariants(
        priorities in proptest::collection::vec(1u64..1000, 1..60),
    ) {
        let cfg = SwitchConfig {
            buffer: BufferConfig::StaticPerPort { packets: 8 },
            ..SwitchConfig::pfabric()
        };
        let mut sw = SwitchCore::new(NodeId(0), cfg, vec![false]);
        let mut rng = SimRng::new(1);
        let mut admitted: Vec<u64> = Vec::new();
        for (i, &pr) in priorities.iter().enumerate() {
            let r = sw.enqueue(pkt(i as u64, i as u32, pr), 0, &mut rng);
            match r.outcome {
                EnqueueOutcome::Enqueued { .. } => {
                    admitted.push(pr);
                    if let Some(d) = r.displaced {
                        // The displaced packet had the worst priority.
                        let pos = admitted.iter().position(|&x| x == d.priority).unwrap();
                        admitted.remove(pos);
                        prop_assert!(d.priority >= pr);
                    }
                }
                EnqueueOutcome::Dropped(_) => {
                    prop_assert!(r.displaced.is_none());
                    // Arrival was no better than the resident worst.
                    let worst = admitted.iter().max().copied().unwrap_or(u64::MAX);
                    prop_assert!(pr >= worst);
                }
                EnqueueOutcome::Detoured { .. } => prop_assert!(false, "pFabric never detours"),
            }
        }
        // Drain: priorities come out sorted ascending (highest priority = smallest first).
        let mut out = Vec::new();
        while let Some(p) = sw.dequeue(0) {
            out.push(p.priority);
        }
        let mut sorted = out.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&out, &sorted, "pFabric dequeue must follow priority order");
        // And the set matches what we believed was admitted.
        let mut adm = admitted.clone();
        adm.sort_unstable();
        prop_assert_eq!(adm, sorted);
    }

    /// ECN marking: with threshold K, exactly the packets that found >= K
    /// packets already queued get marked (FIFO, single port, no DIBS).
    #[test]
    fn ecn_marks_match_threshold(n in 1usize..40, k in 1usize..20) {
        let cfg = SwitchConfig {
            buffer: BufferConfig::StaticPerPort { packets: 100 },
            ecn_threshold: Some(k),
            dibs: DibsPolicy::Disabled,
            discipline: Discipline::Fifo,
            mark_detoured: false,
        };
        let mut sw = SwitchCore::new(NodeId(0), cfg, vec![false]);
        let mut rng = SimRng::new(1);
        for i in 0..n {
            sw.enqueue(pkt(i as u64, 0, 1), 0, &mut rng);
        }
        let mut marked = 0;
        while let Some(p) = sw.dequeue(0) {
            if p.ce {
                marked += 1;
            }
        }
        prop_assert_eq!(marked, n.saturating_sub(k));
    }
}
