//! The §5.1 hardware-substitution benchmark.
//!
//! The paper implements DIBS in the NetFPGA reference switch's Output Port
//! Lookup module and shows that the forward-or-detour decision completes in
//! the same clock cycle as the plain lookup — i.e. DIBS adds no processing
//! delay. Our substitute measures the software model of that stage: the
//! plain bitmap lookup versus the lookup-with-detour decision, and the full
//! switch enqueue path with DIBS off versus on. The claim reproduced is
//! that the DIBS decision adds no meaningful latency.

use dibs_bench::timing::Group;
use dibs_engine::rng::SimRng;
use dibs_engine::time::SimTime;
use dibs_net::ids::{FlowId, HostId, NodeId, PacketId};
use dibs_net::packet::Packet;
use dibs_switch::lookup::{decide, PortBitmap};
use dibs_switch::{DibsPolicy, SwitchConfig, SwitchCore};
use std::hint::black_box;

fn pkt(i: u64) -> Packet {
    Packet::data(
        PacketId(i),
        FlowId(u32::try_from(i & 0x7fff_ffff).expect("masked to 31 bits")),
        HostId(0),
        HostId(1),
        0,
        1460,
        64,
        SimTime::ZERO,
    )
}

fn bench_lookup_stage() {
    let g = Group::new("netfpga_lookup");
    // Plain forwarding decision: desired port available.
    let desired = PortBitmap::single(3);
    let all = PortBitmap::from_ports(0..8);
    let eligible = PortBitmap::from_ports(4..8);
    let mut e = 0u64;
    g.case("forward_hit", || {
        e = e.wrapping_add(0x9E37_79B9);
        black_box(decide(
            black_box(desired),
            black_box(all),
            black_box(eligible),
            e,
        ))
    });
    // Desired full: the DIBS detour path (the "extra" hardware logic).
    let without_desired = PortBitmap::from_ports([0, 1, 2, 4, 5, 6, 7]);
    let mut e = 0u64;
    g.case("detour_decision", || {
        e = e.wrapping_add(0x9E37_79B9);
        black_box(decide(
            black_box(desired),
            black_box(without_desired),
            black_box(eligible),
            e,
        ))
    });
    // Nothing available: drop decision.
    g.case("drop_decision", || {
        black_box(decide(
            black_box(desired),
            black_box(PortBitmap::EMPTY),
            black_box(eligible),
            black_box(7),
        ))
    });
}

fn bench_switch_datapath() {
    let g = Group::new("switch_datapath");
    // 8-port switch, 64-byte minimum frames, uncongested: the line-rate
    // forwarding claim (back-to-back 64B at 1 Gbps = one decision per
    // 512 ns; the software path must be far below that).
    for (name, dibs) in [
        ("dibs_off", DibsPolicy::Disabled),
        ("dibs_on", DibsPolicy::Random),
    ] {
        let cfg = SwitchConfig {
            dibs,
            ..SwitchConfig::dctcp_baseline()
        };
        let mut sw = SwitchCore::new(NodeId(0), cfg, vec![false; 8]);
        let mut rng = SimRng::new(1);
        let mut i = 0u64;
        g.case(&format!("enqueue_dequeue_{name}"), || {
            i += 1;
            sw.enqueue(black_box(pkt(i)), (i % 8) as usize, &mut rng);
            black_box(sw.dequeue((i % 8) as usize));
        });
    }
    // Congested: every enqueue takes the detour path.
    let cfg = SwitchConfig {
        buffer: dibs_switch::BufferConfig::StaticPerPort { packets: 4 },
        ..SwitchConfig::dctcp_dibs()
    };
    let mut sw = SwitchCore::new(NodeId(0), cfg, vec![false; 8]);
    let mut rng = SimRng::new(1);
    // Saturate port 0.
    for i in 0..4 {
        sw.enqueue(pkt(i), 0, &mut rng);
    }
    let mut i = 100u64;
    g.case("enqueue_congested_detour", || {
        i += 1;
        // Port 0 is full: this detours; drain the detour target next.
        let r = sw.enqueue(black_box(pkt(i)), 0, &mut rng);
        if let dibs_switch::EnqueueOutcome::Detoured { port } = r.outcome {
            black_box(sw.dequeue(port));
        }
    });
}

fn main() {
    bench_lookup_stage();
    bench_switch_datapath();
}
