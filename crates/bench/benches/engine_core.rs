//! Microbenchmarks of the simulation substrates: event queue throughput,
//! FIB construction and lookup, topology building.

use dibs_bench::timing::Group;
use dibs_engine::queue::EventQueue;
use dibs_engine::time::SimTime;
use dibs_net::builders::{fat_tree, FatTreeParams};
use dibs_net::ids::{FlowId, HostId};
use dibs_net::routing::Fib;
use std::hint::black_box;

fn bench_event_queue() {
    let g = Group::new("event_queue");
    {
        // Steady-state queue of ~1000 events: push one, pop one.
        let mut q = EventQueue::new();
        let mut t = 0u64;
        for i in 0..1000u64 {
            q.push(SimTime::from_nanos(i * 100), i);
        }
        g.case("push_pop_hot", || {
            t += 97;
            let (head, _) = q.pop().expect("nonempty");
            q.push(
                head + dibs_engine::time::SimDuration::from_nanos(t % 100_000),
                t,
            );
            black_box(head);
        });
    }
    g.case("fill_drain_10k", || {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.push(SimTime::from_nanos((i * 2654435761) % 1_000_000), i);
        }
        while let Some(e) = q.pop() {
            black_box(e);
        }
    });
}

fn bench_routing() {
    let g = Group::new("routing");
    g.case("build_fat_tree_k8", || {
        black_box(fat_tree(FatTreeParams::paper_default()))
    });
    let topo = fat_tree(FatTreeParams::paper_default());
    g.case("compute_fib_k8", || black_box(Fib::compute(&topo)));
    let fib = Fib::compute(&topo);
    let nodes: Vec<_> = topo.switch_nodes().to_vec();
    let mut i = 0u32;
    g.case("ecmp_select", || {
        i = i.wrapping_add(1);
        let node = nodes[(i as usize) % nodes.len()];
        black_box(fib.select_port(node, HostId(i % 128), FlowId(i)))
    });
}

fn main() {
    bench_event_queue();
    bench_routing();
}
