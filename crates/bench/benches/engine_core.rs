//! Microbenchmarks of the simulation substrates: event queue throughput,
//! FIB construction and lookup, topology building.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use dibs_engine::queue::EventQueue;
use dibs_engine::time::SimTime;
use dibs_net::builders::{fat_tree, FatTreeParams};
use dibs_net::ids::{FlowId, HostId};
use dibs_net::routing::Fib;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("push_pop_hot", |b| {
        // Steady-state queue of ~1000 events: push one, pop one.
        let mut q = EventQueue::new();
        let mut t = 0u64;
        for i in 0..1000u64 {
            q.push(SimTime::from_nanos(i * 100), i);
        }
        b.iter(|| {
            t += 97;
            let (head, _) = q.pop().expect("nonempty");
            q.push(
                head + dibs_engine::time::SimDuration::from_nanos(t % 100_000),
                t,
            );
            black_box(head);
        })
    });
    g.bench_function("fill_drain_10k", |b| {
        b.iter_batched(
            EventQueue::new,
            |mut q| {
                for i in 0..10_000u64 {
                    q.push(SimTime::from_nanos((i * 2654435761) % 1_000_000), i);
                }
                while let Some(e) = q.pop() {
                    black_box(e);
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing");
    g.sample_size(20);
    g.bench_function("build_fat_tree_k8", |b| {
        b.iter(|| black_box(fat_tree(FatTreeParams::paper_default())))
    });
    let topo = fat_tree(FatTreeParams::paper_default());
    g.bench_function("compute_fib_k8", |b| {
        b.iter(|| black_box(Fib::compute(&topo)))
    });
    let fib = Fib::compute(&topo);
    let nodes: Vec<_> = topo.switch_nodes().to_vec();
    g.bench_function("ecmp_select", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let node = nodes[(i as usize) % nodes.len()];
            black_box(fib.select_port(node, HostId(i % 128), FlowId(i)))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_routing);
criterion_main!(benches);
