//! End-to-end simulator throughput: a complete testbed incast per
//! iteration, for each of the three system configurations. The reported
//! time is "wall seconds per simulated incast" — the practical cost of one
//! evaluation point.

use dibs::presets::testbed_incast_sim;
use dibs::SimConfig;
use dibs_bench::timing::Group;
use dibs_switch::BufferConfig;
use std::hint::black_box;

fn main() {
    let g = Group::new("e2e_testbed_incast");
    let mut inf = SimConfig::dctcp_baseline();
    inf.switch.buffer = BufferConfig::Infinite;
    for (name, cfg) in [
        ("droptail", SimConfig::dctcp_baseline()),
        ("dibs", SimConfig::dctcp_dibs()),
        ("infinite", inf),
        ("pfabric", SimConfig::pfabric()),
    ] {
        g.case(name, || {
            black_box(testbed_incast_sim(cfg, 5, 10, 32_000).run())
        });
    }
}
