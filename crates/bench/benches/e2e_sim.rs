//! End-to-end simulator throughput: a complete testbed incast per
//! iteration, for each of the three system configurations. The reported
//! time is "wall seconds per simulated incast" — the practical cost of one
//! evaluation point.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dibs::presets::testbed_incast_sim;
use dibs::SimConfig;
use dibs_switch::BufferConfig;

fn bench_e2e(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2e_testbed_incast");
    g.sample_size(10);
    let mut inf = SimConfig::dctcp_baseline();
    inf.switch.buffer = BufferConfig::Infinite;
    for (name, cfg) in [
        ("droptail", SimConfig::dctcp_baseline()),
        ("dibs", SimConfig::dctcp_dibs()),
        ("infinite", inf),
        ("pfabric", SimConfig::pfabric()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(testbed_incast_sim(cfg, 5, 10, 32_000).run()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
