//! A dependency-free microbenchmark runner for the `benches/` binaries.
//!
//! Each benchmark target is a plain `main` (declared `harness = false`); this
//! module supplies the measurement loop: auto-calibrated iteration counts,
//! best-of-N timing to suppress scheduler noise, and an aligned report line
//! per case. Cases that process a known number of items per iteration report
//! a throughput rate (items/sec) alongside the wall time, and finished
//! simulation runs feed a process-wide meter ([`note_run`]) whose
//! events/sec + packets/sec summary the figure binaries print at exit.

use dibs::RunResults;
use dibs_json::{Json, ObjBuilder};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Target wall time per measured batch.
const BATCH_TARGET: Duration = Duration::from_millis(30);
/// Number of batches measured; the minimum is reported.
const BATCHES: usize = 5;

/// One measured benchmark case: best-batch wall time plus the number of
/// items (events, lookups, packets, ...) each iteration processed.
#[derive(Debug, Clone)]
pub struct CaseMeasurement {
    /// Owning group name.
    pub group: String,
    /// Case name within the group.
    pub case: String,
    /// Best-of-batches wall time per iteration, nanoseconds.
    pub ns_per_iter: f64,
    /// Iterations per measured batch (after calibration).
    pub iters: u64,
    /// Items processed per iteration (1.0 for plain cases).
    pub items_per_iter: f64,
    /// What an item is: `"iters"`, `"events"`, `"lookups"`, ...
    pub unit: String,
}

impl CaseMeasurement {
    /// Throughput in items per second.
    pub fn items_per_sec(&self) -> f64 {
        if self.ns_per_iter <= 0.0 {
            return f64::INFINITY;
        }
        self.items_per_iter * 1e9 / self.ns_per_iter
    }

    /// Machine-readable form for `BENCH_*.json`.
    pub fn to_json(&self) -> Json {
        ObjBuilder::new()
            .field("group", self.group.as_str())
            .field("case", self.case.as_str())
            .field("ns_per_iter", self.ns_per_iter)
            .field("items_per_iter", self.items_per_iter)
            .field("unit", self.unit.as_str())
            .field("items_per_sec", self.items_per_sec())
            .build()
    }
}

/// A named group of benchmark cases, printed under a common heading.
pub struct Group {
    name: String,
}

impl Group {
    /// Starts a group and prints its heading.
    pub fn new(name: &str) -> Self {
        println!("group {name}");
        Group {
            name: name.to_string(),
        }
    }

    /// Measures `f` repeatedly and prints the best per-iteration time.
    ///
    /// The closure's return value is passed through [`black_box`] so the
    /// computation cannot be optimized away.
    pub fn case<R>(&self, case: &str, mut f: impl FnMut() -> R) -> CaseMeasurement {
        self.measure(case, "iters", 1.0, move || {
            black_box(f());
        })
    }

    /// Measures `f`, which reports how many items each iteration processed,
    /// and prints both the per-iteration time and the item throughput.
    ///
    /// The item count must be the same every iteration (the workloads here
    /// are deterministic); the count from the final calibration pass is the
    /// one used for the rate.
    pub fn case_rate(&self, case: &str, unit: &str, mut f: impl FnMut() -> u64) -> CaseMeasurement {
        let mut items = 0u64;
        let m = self.measure(case, unit, 1.0, || {
            items = black_box(f());
        });
        let m = CaseMeasurement {
            // Item counts in this suite are far below 2^53; the f64
            // conversion is exact.
            #[allow(clippy::cast_precision_loss)]
            items_per_iter: items as f64,
            ..m
        };
        println!(
            "  {:<32} {:>14} {}/sec",
            "",
            format_rate(m.items_per_sec()),
            m.unit
        );
        m
    }

    fn measure(
        &self,
        case: &str,
        unit: &str,
        items_per_iter: f64,
        mut f: impl FnMut(),
    ) -> CaseMeasurement {
        // Calibrate: grow the iteration count until a batch is long enough
        // to time reliably.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            let elapsed = start.elapsed();
            if elapsed >= BATCH_TARGET || iters >= 1 << 30 {
                break;
            }
            // Aim past the target so the next batch qualifies.
            iters = if elapsed.is_zero() {
                iters * 16
            } else {
                let scale = BATCH_TARGET.as_secs_f64() / elapsed.as_secs_f64();
                // Calibration growth factor; practical iteration counts
                // never approach u64::MAX.
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let grown = (iters as f64 * scale * 1.2) as u64;
                grown.max(iters + 1)
            };
        }
        let mut best = Duration::MAX;
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            best = best.min(start.elapsed());
        }
        // Iteration counts stay far below 2^53; the conversion is exact.
        #[allow(clippy::cast_precision_loss)]
        let per_iter_ns = best.as_secs_f64() * 1e9 / iters as f64;
        println!(
            "  {:<32} {:>14} ns/iter   ({} iters)",
            format!("{}/{case}", self.name),
            format_ns(per_iter_ns),
            iters
        );
        CaseMeasurement {
            group: self.name.clone(),
            case: case.to_string(),
            ns_per_iter: per_iter_ns,
            iters,
            items_per_iter,
            unit: unit.to_string(),
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 100.0 {
        format!("{ns:.0}")
    } else {
        format!("{ns:.2}")
    }
}

fn format_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

// ---------------------------------------------------------------------
// Process-wide simulation throughput meter.
// ---------------------------------------------------------------------

static METER_EVENTS: AtomicU64 = AtomicU64::new(0);
static METER_PACKETS: AtomicU64 = AtomicU64::new(0);

fn meter_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Starts the wall-time epoch for [`meter_summary`]. Called by
/// `Harness::from_env`; idempotent.
pub fn meter_start() {
    let _ = meter_epoch();
}

/// Credits a finished simulation run to the process-wide throughput meter.
pub fn note_run(results: &RunResults) {
    let _ = meter_epoch();
    METER_EVENTS.fetch_add(results.events_dispatched, Ordering::Relaxed);
    METER_PACKETS.fetch_add(results.counters.packets_delivered, Ordering::Relaxed);
}

/// One-line events/sec + packets/sec summary over every run credited via
/// [`note_run`], or `None` if no run finished in this process.
pub fn meter_summary() -> Option<String> {
    let events = METER_EVENTS.load(Ordering::Relaxed);
    let packets = METER_PACKETS.load(Ordering::Relaxed);
    if events == 0 {
        return None;
    }
    let wall = meter_epoch().elapsed().as_secs_f64().max(1e-9);
    // Event and packet totals stay far below 2^53; conversions are exact.
    #[allow(clippy::cast_precision_loss)]
    Some(format!(
        "throughput: {events} events, {packets} packets delivered in {wall:.2}s wall \
         ({}/sec events, {}/sec packets)",
        format_rate(events as f64 / wall),
        format_rate(packets as f64 / wall),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_runs_and_reports() {
        // Just exercise the calibration loop on a trivial body.
        let g = Group::new("smoke");
        let mut n = 0u64;
        let m = g.case("add", || {
            n = n.wrapping_add(1);
            n
        });
        assert!(n > 0);
        assert!(m.ns_per_iter > 0.0);
        assert_eq!(m.unit, "iters");
    }

    #[test]
    fn case_rate_reports_items() {
        let g = Group::new("smoke_rate");
        let m = g.case_rate("batch", "events", || {
            let mut acc = 0u64;
            for i in 0..64u64 {
                acc = acc.wrapping_add(i);
            }
            black_box(acc);
            64
        });
        assert_eq!(m.items_per_iter, 64.0);
        assert!(m.items_per_sec() > 0.0);
        let j = m.to_json().render();
        assert!(j.contains("\"unit\":\"events\""), "{j}");
    }

    #[test]
    fn rate_formatting_scales() {
        assert_eq!(format_rate(1.5e9), "1.50G");
        assert_eq!(format_rate(2.5e6), "2.50M");
        assert_eq!(format_rate(3_200.0), "3.2k");
        assert_eq!(format_rate(12.0), "12.0");
    }
}
