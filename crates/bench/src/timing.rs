//! A dependency-free microbenchmark runner for the `benches/` binaries.
//!
//! Each benchmark target is a plain `main` (declared `harness = false`); this
//! module supplies the measurement loop: auto-calibrated iteration counts,
//! best-of-N timing to suppress scheduler noise, and an aligned report line
//! per case.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall time per measured batch.
const BATCH_TARGET: Duration = Duration::from_millis(30);
/// Number of batches measured; the minimum is reported.
const BATCHES: usize = 5;

/// A named group of benchmark cases, printed under a common heading.
pub struct Group {
    name: String,
}

impl Group {
    /// Starts a group and prints its heading.
    pub fn new(name: &str) -> Self {
        println!("group {name}");
        Group {
            name: name.to_string(),
        }
    }

    /// Measures `f` repeatedly and prints the best per-iteration time.
    ///
    /// The closure's return value is passed through [`black_box`] so the
    /// computation cannot be optimized away.
    pub fn case<R>(&self, case: &str, mut f: impl FnMut() -> R) {
        // Calibrate: grow the iteration count until a batch is long enough
        // to time reliably.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= BATCH_TARGET || iters >= 1 << 30 {
                break;
            }
            // Aim past the target so the next batch qualifies.
            iters = if elapsed.is_zero() {
                iters * 16
            } else {
                let scale = BATCH_TARGET.as_secs_f64() / elapsed.as_secs_f64();
                // Calibration growth factor; practical iteration counts
                // never approach u64::MAX.
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let grown = (iters as f64 * scale * 1.2) as u64;
                grown.max(iters + 1)
            };
        }
        let mut best = Duration::MAX;
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            best = best.min(start.elapsed());
        }
        let per_iter_ns = best.as_secs_f64() * 1e9 / iters as f64;
        println!(
            "  {:<32} {:>14} ns/iter   ({} iters)",
            format!("{}/{case}", self.name),
            format_ns(per_iter_ns),
            iters
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 100.0 {
        format!("{ns:.0}")
    } else {
        format!("{ns:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_runs_and_reports() {
        // Just exercise the calibration loop on a trivial body.
        let g = Group::new("smoke");
        let mut n = 0u64;
        g.case("add", || {
            n = n.wrapping_add(1);
            n
        });
        assert!(n > 0);
    }
}
