//! §5.6: fairness of long-lived flows under DIBS.
//!
//! 64 node-disjoint host pairs on the K=8 fat-tree, N long-lived flows in
//! each direction per pair, N in {1, 2, 4, 8, 16}; Jain's index over
//! per-flow goodput measured after a warmup.
//!
//! Paper shape: Jain's index stays high for all N and — the actual claim
//! under test — DIBS does not *reduce* it relative to the DCTCP baseline.
//! (Flow-level ECMP collisions put a structural ceiling below 1.0 at small
//! N in any simulator; see EXPERIMENTS.md.)

use dibs::presets::fairness_sim;
use dibs::SimConfig;
use dibs_bench::{parallel_map, Harness};
use dibs_engine::time::SimTime;
use dibs_net::builders::FatTreeParams;
use dibs_stats::{ExperimentRecord, SeriesPoint};

fn main() {
    let h = Harness::from_env();
    let mut rec = ExperimentRecord::new(
        "tab_fairness",
        "Jain's fairness index for long-lived flows (§5.6)",
        "flows_per_pair",
    );
    let horizon_ms: u64 = match h.scale {
        dibs_bench::Scale::Quick => 120,
        dibs_bench::Scale::Default => 250,
        dibs_bench::Scale::Full => 500,
    };
    rec.param("pairs", 64).param("horizon_ms", horizon_ms);

    let sweep = [1usize, 2, 4, 8, 16];
    let points = parallel_map(sweep.to_vec(), |n| {
        let run = |cfg: SimConfig| {
            let mut cfg = cfg.with_seed(5);
            cfg.throughput_warmup = Some(SimTime::from_millis(horizon_ms / 4));
            let results = fairness_sim(
                FatTreeParams::paper_default(),
                cfg,
                n,
                SimTime::from_millis(horizon_ms),
            )
            .run();
            (
                results.jain().unwrap_or(0.0),
                results.long_lived_throughput_bps.iter().sum::<f64>() / 1e9,
            )
        };
        let (jain_dibs, tput_dibs) = run(SimConfig::dctcp_dibs());
        let (jain_base, tput_base) = run(SimConfig::dctcp_baseline());
        SeriesPoint::at(n as f64)
            .with("jain_dibs", jain_dibs)
            .with("jain_dctcp", jain_base)
            .with("total_goodput_gbps_dibs", tput_dibs)
            .with("total_goodput_gbps_dctcp", tput_base)
    });
    for p in points {
        rec.push(p);
    }
    h.finish(&rec);
}
