//! Figure 8: variable background traffic intensity.
//!
//! Sweeps the mean background inter-arrival time from 10 ms (heavy) to
//! 120 ms (light) with query traffic fixed at Table 2 defaults (300 qps,
//! degree 40, 20 KB responses), comparing DCTCP against DCTCP+DIBS on 99th
//! percentile QCT and short-background-flow FCT.
//!
//! Paper shape: DIBS cuts 99th QCT by ~20 ms at every intensity; background
//! FCT rises by under ~2 ms (little collateral damage, independent of
//! background intensity).

use dibs::presets::{mixed_workload_sim, MixedWorkload};
use dibs::SimConfig;
use dibs_bench::{baseline_vs_dibs_point, parallel_map, Harness};
use dibs_engine::time::SimDuration;
use dibs_net::builders::FatTreeParams;
use dibs_stats::ExperimentRecord;

fn main() {
    let h = Harness::from_env();
    let mut rec = ExperimentRecord::new(
        "fig08_bg_interarrival",
        "Variable background traffic (Fig 8)",
        "bg_interarrival_ms",
    );
    rec.param("qps", 300)
        .param("incast_degree", 40)
        .param("response_kb", 20)
        .param("duration_ms", h.scale.duration().as_millis_f64());

    let sweep = [10u64, 20, 40, 80, 120];
    let scale = h.scale;
    let points = parallel_map(sweep.to_vec(), |ia| {
        // Heavy background needs the shorter window to stay tractable.
        let duration = if ia <= 20 {
            scale.heavy_duration()
        } else {
            scale.duration()
        };
        let wl = MixedWorkload {
            bg_interarrival: SimDuration::from_millis(ia),
            duration,
            drain: scale.drain(),
            ..MixedWorkload::paper_default()
        };
        let tree = FatTreeParams::paper_default();
        let mut base = mixed_workload_sim(tree, SimConfig::dctcp_baseline(), wl).run();
        let mut dibs = mixed_workload_sim(tree, SimConfig::dctcp_dibs(), wl).run();
        baseline_vs_dibs_point(ia as f64, &mut base, &mut dibs)
    });
    for p in points {
        rec.push(p);
    }
    h.finish(&rec);
}
