//! Figure 10: variable query response size.
//!
//! Sweeps the per-responder response size 20–50 KB (degree 40, 300 qps,
//! light background).
//!
//! Paper shape: DIBS's QCT advantage shrinks as responses grow (21 ms at
//! 20 KB down to ~6 ms at 50 KB) because bigger bursts mean more detours
//! and occasional spurious timeouts; background FCT damage grows mildly
//! (1.2 ms at 20 KB to 4.4 ms at 50 KB); DIBS still never drops.

use dibs::presets::{mixed_workload_sim, MixedWorkload};
use dibs::SimConfig;
use dibs_bench::{baseline_vs_dibs_point, parallel_map, Harness};
use dibs_net::builders::FatTreeParams;
use dibs_stats::ExperimentRecord;

fn main() {
    let h = Harness::from_env();
    let mut rec = ExperimentRecord::new(
        "fig10_response_size",
        "Variable query response size (Fig 10)",
        "response_kb",
    );
    rec.param("bg_interarrival_ms", 120)
        .param("incast_degree", 40)
        .param("qps", 300)
        .param("duration_ms", h.scale.duration().as_millis_f64());

    let sweep = [20u64, 30, 40, 50];
    let base_wl = h.workload();
    let points = parallel_map(sweep.to_vec(), |kb| {
        let wl = MixedWorkload {
            response_bytes: kb * 1000,
            ..base_wl
        };
        let tree = FatTreeParams::paper_default();
        let mut base = mixed_workload_sim(tree, SimConfig::dctcp_baseline(), wl).run();
        let mut dibs = mixed_workload_sim(tree, SimConfig::dctcp_dibs(), wl).run();
        baseline_vs_dibs_point(kb as f64, &mut base, &mut dibs)
    });
    for p in points {
        rec.push(p);
    }
    h.finish(&rec);
}
