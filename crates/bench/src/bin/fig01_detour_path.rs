//! Figure 1: the path of one heavily detoured packet on the K=8 fat-tree.
//!
//! Runs a single large incast with path tracing enabled, picks the
//! most-detoured delivered packet, and prints its hop sequence and the
//! arc-weight summary the paper draws (how often each directed arc was
//! traversed, with detour arcs flagged).

use dibs::presets::single_incast_sim;
use dibs::SimConfig;
use dibs_bench::Harness;
use dibs_net::builders::{fat_tree, FatTreeParams};
use dibs_stats::{ExperimentRecord, SeriesPoint};
use std::collections::BTreeMap;

fn main() {
    let h = Harness::from_env();
    let mut cfg = SimConfig::dctcp_dibs();
    cfg.trace_paths = true;
    cfg.seed = 12;
    let results = single_incast_sim(FatTreeParams::paper_default(), cfg, 100, 20_000).run();
    let topo = fat_tree(FatTreeParams::paper_default());

    let Some(path) = results.paths.iter().max_by_key(|p| p.detours) else {
        println!("no detoured packets captured — increase the incast degree");
        return;
    };

    println!(
        "# fig01_detour_path — most-detoured packet: {} detours, {} hops",
        path.detours,
        path.nodes.len()
    );
    println!("# hop sequence (d = arrived via detour):");
    let names: Vec<String> = path
        .nodes
        .iter()
        .zip(&path.detour)
        .map(|(n, d)| format!("{}{}", topo.node(*n).name, if *d { "(d)" } else { "" }))
        .collect();
    println!("#   {}", names.join(" -> "));

    // Arc weights, as in the figure.
    let mut arcs: BTreeMap<(String, String, bool), u32> = BTreeMap::new();
    for i in 1..path.nodes.len() {
        let from = topo.node(path.nodes[i - 1]).name.clone();
        let to = topo.node(path.nodes[i]).name.clone();
        *arcs.entry((from, to, path.detour[i])).or_insert(0) += 1;
    }
    println!("{:>24} {:>24} {:>8} {:>7}", "from", "to", "detour", "count");
    for ((from, to, det), count) in &arcs {
        println!("{from:>24} {to:>24} {det:>8} {count:>7}");
    }

    // Also persist summary statistics.
    let mut rec = ExperimentRecord::new(
        "fig01_detour_path",
        "Most-detoured packet path (Fig 1)",
        "metric",
    );
    rec.param("incast_degree", 100).param("response_kb", 20);
    rec.push(
        SeriesPoint::at(0.0)
            .with("max_detours", f64::from(path.detours))
            .with("hops", path.nodes.len() as f64)
            .with("traced_paths", results.paths.len() as f64)
            .with("total_detour_events", results.counters.detours as f64)
            .with("drops", results.counters.total_drops() as f64),
    );
    h.finish(&rec);
}
