//! Regenerates `results/*.svg` charts from the stored `results/*.json`
//! experiment records without rerunning any simulation.

use dibs_stats::{ExperimentRecord, LineChart};
use std::path::PathBuf;

fn main() {
    let dir = std::env::var("DIBS_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    let Ok(entries) = std::fs::read_dir(&dir) else {
        eprintln!("no results directory at {}", dir.display());
        std::process::exit(1);
    };
    let mut rendered = 0;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let Ok(record) = ExperimentRecord::from_json(&text) else {
            eprintln!("skipping {} (not an experiment record)", path.display());
            continue;
        };
        let chart = LineChart::from_record(&record, "value", true);
        let out = path.with_extension("svg");
        match std::fs::write(&out, chart.render()) {
            Ok(()) => {
                println!("rendered {}", out.display());
                rendered += 1;
            }
            Err(e) => eprintln!("cannot write {}: {e}", out.display()),
        }
    }
    println!("{rendered} charts rendered");
}
