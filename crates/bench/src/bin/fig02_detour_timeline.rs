//! Figure 2: (a) which switches detour, over time, during a burst into one
//! pod; (b) buffer occupancy of the destination pod's switches at three
//! instants t1 < t2 < t3.
//!
//! Paper shape: detouring starts at the destination's edge switch, spreads
//! to all four aggregation switches at the burst peak, and collapses back
//! to just the edge switch as the burst drains — all within ~10 ms, with no
//! drops or timeouts.
//!
//! Both panels are reconstructed post-hoc from a `dibs-trace` event trace
//! (queue transitions + detours) rather than from in-run sampling, so the
//! figure shares one accounting path with `--trace` and the flight
//! recorder. Pass `--trace SPEC` to widen the capture and also dump the
//! Chrome-viewable JSON.

use dibs::presets::single_incast_sim;
use dibs::SimConfig;
use dibs_bench::Harness;
use dibs_net::builders::{fat_tree, FatTreeParams};
use dibs_net::ids::NodeId;
use dibs_net::topology::SwitchLayer;
use dibs_stats::{ExperimentRecord, SeriesPoint};
use dibs_trace::{OccupancyTracker, TraceKind};
use std::collections::BTreeMap;

fn main() {
    let h = Harness::from_env();
    let mut cfg = SimConfig::dctcp_dibs();
    cfg.seed = 12;
    let mut sim = single_incast_sim(FatTreeParams::paper_default(), cfg, 100, 20_000);
    // The figure needs every queue transition; a user --trace spec widens
    // (or narrows) the capture at their own risk.
    sim.set_tracer(h.tracer_or("enqueue,dequeue,detour"));
    let results = sim.run();
    let Some(trace) = &results.trace else {
        eprintln!("fig02: tracer captured nothing (was --trace off?); no figure");
        return;
    };
    let events = &trace.events;
    let topo = fat_tree(FatTreeParams::paper_default());

    // (a) detour scatter, bucketed per 0.5 ms per layer, straight from the
    // Detour trace events.
    println!("# fig02a — detour events per 0.5 ms bucket per layer");
    println!("{:>10} {:>8} {:>8} {:>8}", "t_ms", "edge", "aggr", "core");
    let bucket_ms = 0.5;
    let mut buckets: Vec<[u32; 3]> = Vec::new();
    let mut last_detour_ms = 0.0_f64;
    for ev in events.iter().filter(|e| e.kind == TraceKind::Detour) {
        let t_ms = ev.t_ns as f64 / 1e6;
        last_detour_ms = t_ms;
        // Event times are nonnegative and bounded by the horizon.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let b = (t_ms / bucket_ms) as usize;
        if buckets.len() <= b {
            buckets.resize(b + 1, [0; 3]);
        }
        let layer = match topo.layer(NodeId(ev.node)) {
            SwitchLayer::Edge => 0,
            SwitchLayer::Aggregation => 1,
            SwitchLayer::Core => 2,
            SwitchLayer::Other => continue,
        };
        buckets[b][layer] += 1;
    }
    for (b, counts) in buckets.iter().enumerate() {
        if counts.iter().any(|&c| c > 0) {
            println!(
                "{:>10.2} {:>8} {:>8} {:>8}",
                b as f64 * bucket_ms,
                counts[0],
                counts[1],
                counts[2]
            );
        }
    }

    // (b) buffer occupancy: integrate the queue transitions, then pick
    // t1 (queues building), t2 (peak), t3 (draining) as the instants with
    // 25%, 100%, and 35% of the peak total occupancy.
    let mut occ = OccupancyTracker::new();
    // (event index, t_ns, total queued packets) after each transition.
    let mut series: Vec<(usize, u64, u64)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        if occ.apply(ev).is_some() {
            let total: u64 = occ.totals().map(|(_, v)| u64::from(v)).sum();
            series.push((i, ev.t_ns, total));
        }
    }
    let snapshot_upto = |idx: usize| -> BTreeMap<u32, u32> {
        let mut occ = OccupancyTracker::new();
        for ev in &events[..=idx] {
            occ.apply(ev);
        }
        occ.totals().collect()
    };
    if let Some((peak_pos, &(_, peak_ns, peak))) = series
        .iter()
        .enumerate()
        .max_by_key(|(_, (_, _, total))| *total)
    {
        let pick = |frac: f64, after: bool| -> usize {
            // frac in [0,1] keeps the product within the peak count.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let target = (peak as f64 * frac) as u64;
            if after {
                (peak_pos..series.len())
                    .find(|&i| series[i].2 <= target)
                    .unwrap_or(series.len() - 1)
            } else {
                (0..=peak_pos)
                    .find(|&i| series[i].2 >= target)
                    .unwrap_or(peak_pos)
            }
        };
        let t1 = pick(0.25, false);
        let t3 = pick(0.35, true);
        let snaps: Vec<BTreeMap<u32, u32>> = [t1, peak_pos, t3]
            .iter()
            .map(|&pos| snapshot_upto(series[pos].0))
            .collect();
        println!("\n# fig02b — total queued packets per switch node at t1/t2/t3");
        println!(
            "# t1={:.2}ms t2={:.2}ms t3={:.2}ms (peak total {} pkts)",
            series[t1].1 as f64 / 1e6,
            peak_ns as f64 / 1e6,
            series[t3].1 as f64 / 1e6,
            peak
        );
        println!("{:>8} {:>8} {:>8} {:>8}", "node", "t1", "t2", "t3");
        let nodes: std::collections::BTreeSet<u32> =
            snaps.iter().flat_map(|s| s.keys().copied()).collect();
        for node in nodes {
            let at = |i: usize| -> u32 { snaps[i].get(&node).copied().unwrap_or(0) };
            if at(0) + at(1) + at(2) > 0 {
                println!("{:>8} {:>8} {:>8} {:>8}", node, at(0), at(1), at(2));
            }
        }
    }

    let mut rec = ExperimentRecord::new(
        "fig02_detour_timeline",
        "Detours and buffer occupancy during a burst (Fig 2)",
        "metric",
    );
    rec.param("incast_degree", 100).param("response_kb", 20);
    let switches_detouring = results
        .detours_per_switch
        .iter()
        .filter(|&&d| d > 0)
        .count();
    rec.push(
        SeriesPoint::at(0.0)
            .with("detour_events", results.counters.detours as f64)
            .with("switches_detouring", switches_detouring as f64)
            .with("drops", results.counters.total_drops() as f64)
            .with("timeouts", results.counters.rto_timeouts as f64)
            .with("burst_len_ms", last_detour_ms)
            .with("trace_events", trace.events.len() as f64),
    );
    h.export_trace("fig02_detour_timeline", &results);
    h.finish(&rec);
}
