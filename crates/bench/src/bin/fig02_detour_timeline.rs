//! Figure 2: (a) which switches detour, over time, during a burst into one
//! pod; (b) buffer occupancy of the destination pod's switches at three
//! instants t1 < t2 < t3.
//!
//! Paper shape: detouring starts at the destination's edge switch, spreads
//! to all four aggregation switches at the burst peak, and collapses back
//! to just the edge switch as the burst drains — all within ~10 ms, with no
//! drops or timeouts.

use dibs::presets::single_incast_sim;
use dibs::SimConfig;
use dibs_bench::Harness;
use dibs_engine::time::SimDuration;
use dibs_net::builders::FatTreeParams;
use dibs_stats::{ExperimentRecord, SeriesPoint};

fn main() {
    let h = Harness::from_env();
    let mut cfg = SimConfig::dctcp_dibs();
    cfg.seed = 12;
    cfg.sample_interval = Some(SimDuration::from_micros(100));
    cfg.occupancy_snapshots = true;
    let results = single_incast_sim(FatTreeParams::paper_default(), cfg, 100, 20_000).run();

    // (a) detour scatter, bucketed per 0.5 ms per layer.
    println!("# fig02a — detour events per 0.5 ms bucket per layer");
    println!("{:>10} {:>8} {:>8} {:>8}", "t_ms", "edge", "aggr", "core");
    let bucket_ms = 0.5;
    let mut buckets: Vec<[u32; 3]> = Vec::new();
    for ev in &results.detour_log.events {
        // Event times are nonnegative and bounded by the horizon.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let b = (ev.time_s * 1000.0 / bucket_ms) as usize;
        if buckets.len() <= b {
            buckets.resize(b + 1, [0; 3]);
        }
        if ev.layer < 3 {
            buckets[b][ev.layer as usize] += 1;
        }
    }
    for (b, counts) in buckets.iter().enumerate() {
        if counts.iter().any(|&c| c > 0) {
            println!(
                "{:>10.2} {:>8} {:>8} {:>8}",
                b as f64 * bucket_ms,
                counts[0],
                counts[1],
                counts[2]
            );
        }
    }

    // (b) occupancy snapshots: pick t1 (queues building), t2 (peak), t3
    // (draining) as the snapshots with 25%, 100%, and 35% of the peak
    // total occupancy.
    let totals: Vec<usize> = results
        .occupancy
        .iter()
        .map(|s| s.per_switch.iter().flatten().sum())
        .collect();
    if let Some((peak_idx, &peak)) = totals.iter().enumerate().max_by_key(|(_, t)| **t) {
        let pick = |frac: f64, after: bool| -> usize {
            // frac in [0,1] keeps the product within the peak count.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let target = (peak as f64 * frac) as usize;
            if after {
                (peak_idx..totals.len())
                    .find(|&i| totals[i] <= target)
                    .unwrap_or(totals.len() - 1)
            } else {
                (0..=peak_idx)
                    .find(|&i| totals[i] >= target)
                    .unwrap_or(peak_idx)
            }
        };
        let t1 = pick(0.25, false);
        let t2 = peak_idx;
        let t3 = pick(0.35, true);
        println!("\n# fig02b — total queued packets per switch at t1/t2/t3");
        println!(
            "# t1={:.2}ms t2={:.2}ms t3={:.2}ms (peak total {} pkts)",
            results.occupancy[t1].time_s * 1e3,
            results.occupancy[t2].time_s * 1e3,
            results.occupancy[t3].time_s * 1e3,
            peak
        );
        println!("{:>8} {:>8} {:>8} {:>8}", "switch", "t1", "t2", "t3");
        for s in 0..results.occupancy[t2].per_switch.len() {
            let at = |i: usize| -> usize { results.occupancy[i].per_switch[s].iter().sum() };
            if at(t1) + at(t2) + at(t3) > 0 {
                println!("{:>8} {:>8} {:>8} {:>8}", s, at(t1), at(t2), at(t3));
            }
        }
    }

    let mut rec = ExperimentRecord::new(
        "fig02_detour_timeline",
        "Detours and buffer occupancy during a burst (Fig 2)",
        "metric",
    );
    rec.param("incast_degree", 100).param("response_kb", 20);
    let switches_detouring = results
        .detours_per_switch
        .iter()
        .filter(|&&d| d > 0)
        .count();
    rec.push(
        SeriesPoint::at(0.0)
            .with("detour_events", results.counters.detours as f64)
            .with("switches_detouring", switches_detouring as f64)
            .with("drops", results.counters.total_drops() as f64)
            .with("timeouts", results.counters.rto_timeouts as f64)
            .with(
                "burst_len_ms",
                results
                    .detour_log
                    .events
                    .last()
                    .map(|e| e.time_s * 1e3)
                    .unwrap_or(0.0),
            ),
    );
    h.finish(&rec);
}
