//! Figure 6: the Click/Emulab incast experiment, reproduced in simulation.
//!
//! 5 servers each send 10 simultaneous 32 KB flows to a sixth server on the
//! 2-aggregation / 3-edge testbed; 50 repetitions (different seeds) under
//! three configurations: infinite buffers, droptail with 100-packet
//! buffers, and DIBS with 100-packet buffers.
//!
//! Paper shape: infinite buffers complete all queries in ~25 ms; DIBS in
//! ~27 ms; droptail spans 26–51 ms because ~9 % of individual flows take a
//! retransmission timeout (Fig 6b) and every query is held back by at
//! least one such flow.

use dibs::presets::testbed_incast_sim;
use dibs::SimConfig;
use dibs_bench::{parallel_map, Harness};
use dibs_stats::{ExperimentRecord, Samples, SeriesPoint};
use dibs_switch::BufferConfig;

fn main() {
    let h = Harness::from_env();
    let reps: u64 = match h.scale {
        dibs_bench::Scale::Quick => 10,
        _ => 50,
    };

    let mut variants: Vec<(&str, SimConfig)> = Vec::new();
    let mut inf = SimConfig::dctcp_baseline();
    inf.switch.buffer = BufferConfig::Infinite;
    variants.push(("infinite_buf", inf));
    variants.push(("droptail_100", SimConfig::dctcp_baseline()));
    variants.push(("dibs", SimConfig::dctcp_dibs()));

    let mut rec = ExperimentRecord::new(
        "fig06_testbed_incast",
        "Testbed incast: QCT and per-flow durations over 50 runs (Fig 6)",
        "percentile",
    );
    rec.param("senders", 5)
        .param("flows_per_sender", 10)
        .param("flow_kb", 32)
        .param("repetitions", reps);

    // Collect QCT and per-flow duration distributions per variant.
    let mut qct: Vec<(String, Samples)> = Vec::new();
    let mut flow_dur: Vec<(String, Samples)> = Vec::new();
    for (name, cfg) in &variants {
        let runs = parallel_map((0..reps).collect::<Vec<u64>>(), |seed| {
            let results = testbed_incast_sim(cfg.with_seed(seed + 1), 5, 10, 32_000).run();
            let q = results.queries[0]
                .qct
                .map(|d| d.as_millis_f64())
                .unwrap_or(f64::NAN);
            let durations: Vec<f64> = results
                .flows
                .iter()
                .filter_map(|f| f.fct.map(|d| d.as_millis_f64()))
                .collect();
            let drops = results.counters.total_drops();
            (q, durations, drops)
        });
        let mut qs = Samples::new();
        let mut ds = Samples::new();
        let mut total_drops = 0u64;
        for (q, durations, drops) in runs {
            qs.push(q);
            for d in durations {
                ds.push(d);
            }
            total_drops += drops;
        }
        rec.param(&format!("total_drops_{name}"), total_drops);
        qct.push((name.to_string(), qs));
        flow_dur.push(((*name).to_string(), ds));
    }

    // Emit the CDFs at fixed percentiles, one row per percentile.
    for pct in [0.0, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0] {
        let mut point = SeriesPoint::at(pct);
        for (name, qs) in qct.iter_mut() {
            point = point.with(&format!("qct_ms_{name}"), qs.percentile(pct).unwrap());
        }
        for (name, ds) in flow_dur.iter_mut() {
            point = point.with(&format!("flow_ms_{name}"), ds.percentile(pct).unwrap());
        }
        rec.push(point);
    }
    h.finish(&rec);
}
