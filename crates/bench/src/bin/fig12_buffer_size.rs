//! Figure 12: variable per-port buffer size (1–200 packets) under heavy
//! background traffic (10 ms inter-arrival).
//!
//! Paper shape: (a) background FCT — no collateral damage from DIBS at any
//! buffer size; (b) query QCT — DIBS wins dramatically at small buffers
//! (where DCTCP drops constantly) and the two converge at large buffers.

use dibs::presets::{mixed_workload_sim, MixedWorkload};
use dibs::{RunDescriptor, SimConfig};
use dibs_bench::{baseline_vs_dibs_point, Harness};
use dibs_engine::time::SimDuration;
use dibs_net::builders::FatTreeParams;
use dibs_stats::ExperimentRecord;
use dibs_switch::BufferConfig;

fn main() {
    let h = Harness::from_env();
    let mut rec = ExperimentRecord::new(
        "fig12_buffer_size",
        "Variable buffer size under heavy background (Fig 12)",
        "buffer_pkts",
    );
    rec.param("bg_interarrival_ms", 10)
        .param("qps", 300)
        .param("incast_degree", 40)
        .param("response_kb", 20)
        .param("duration_ms", h.scale.heavy_duration().as_millis_f64());

    // The ECN threshold must fit inside the buffer at small sizes.
    let sweep = [1usize, 5, 10, 25, 40, 100, 200];
    let scale = h.scale;
    let master = h.master_seed;
    let points = h.executor().map(sweep.to_vec(), |pkts| {
        let seed =
            RunDescriptor::new("fig12_buffer_size", "paired", pkts as u64, 0).paired_seed(master);
        let wl = MixedWorkload {
            bg_interarrival: SimDuration::from_millis(10),
            duration: scale.heavy_duration(),
            drain: scale.drain(),
            ..MixedWorkload::paper_default()
        };
        let tree = FatTreeParams::paper_default();
        let configure = |mut cfg: SimConfig| {
            cfg.switch.buffer = BufferConfig::StaticPerPort { packets: pkts };
            // Keep the DCTCP marking threshold below the buffer limit.
            cfg.switch.ecn_threshold = Some(20.min(pkts.saturating_sub(1).max(1)));
            cfg.with_seed(seed)
        };
        let mut base = mixed_workload_sim(tree, configure(SimConfig::dctcp_baseline()), wl).run();
        let mut dibs = mixed_workload_sim(tree, configure(SimConfig::dctcp_dibs()), wl).run();
        baseline_vs_dibs_point(pkts as f64, &mut base, &mut dibs)
            .with("qct_done_frac_dctcp", base.query_completion_rate())
            .with("qct_done_frac_dibs", dibs.query_completion_rate())
    });
    for p in points {
        rec.push(p);
    }
    h.finish(&rec);
}
