//! Figure 16: DIBS (DCTCP+DIBS) versus pFabric, mixed traffic, variable
//! query rate.
//!
//! Paper shape: (a) pFabric hurts large background flows at high query
//! rate (short flows get strict priority and starve them), while DIBS does
//! not prioritize and leaves background FCT flat; (b) at high qps DIBS even
//! edges out pFabric on QCT because pFabric's 24-packet buffers shed so
//! many packets that its hosts retransmit excessively.

use dibs::presets::{mixed_workload_sim, MixedWorkload};
use dibs::SimConfig;
use dibs_bench::{parallel_map, Harness};
use dibs_net::builders::FatTreeParams;
use dibs_stats::{ExperimentRecord, SeriesPoint};

fn main() {
    let h = Harness::from_env();
    let mut rec = ExperimentRecord::new(
        "fig16_pfabric",
        "DIBS vs pFabric, variable query rate (Fig 16)",
        "qps",
    );
    rec.param("bg_interarrival_ms", 120)
        .param("incast_degree", 40)
        .param("response_kb", 20)
        .param("pfabric_buffer_pkts", 24)
        .param("pfabric_rto_us", 350)
        .param("duration_ms", h.scale.duration().as_millis_f64());

    let sweep = [300.0f64, 500.0, 1000.0, 1500.0, 2000.0];
    let base_wl = h.workload();
    let points = parallel_map(sweep.to_vec(), |qps| {
        let wl = MixedWorkload { qps, ..base_wl };
        let tree = FatTreeParams::paper_default();
        let mut dibs = mixed_workload_sim(tree, SimConfig::dctcp_dibs(), wl).run();
        let mut pf = mixed_workload_sim(tree, SimConfig::pfabric(), wl).run();
        SeriesPoint::at(qps)
            .with("qct_p99_ms_dibs", dibs.qct_p99_ms().unwrap_or(f64::NAN))
            .with("qct_p99_ms_pfabric", pf.qct_p99_ms().unwrap_or(f64::NAN))
            // Fig 16(a) looks at all background flows: pFabric's starvation
            // shows up in the large-flow tail.
            .with(
                "bg_all_fct_p99_ms_dibs",
                dibs.bg_all_fct_ms.percentile(0.99).unwrap_or(f64::NAN),
            )
            .with(
                "bg_all_fct_p99_ms_pfabric",
                pf.bg_all_fct_ms.percentile(0.99).unwrap_or(f64::NAN),
            )
            .with("drops_dibs", dibs.counters.total_drops() as f64)
            .with("drops_pfabric", pf.counters.total_drops() as f64)
            .with("timeouts_pfabric", pf.counters.rto_timeouts as f64)
            .with("timeouts_dibs", dibs.counters.rto_timeouts as f64)
    });
    for p in points {
        rec.push(p);
    }
    h.finish(&rec);
}
