//! Figure 4: fraction of links at >= 90 % utilization over time, for
//! baseline (300 qps), heavy (2000 qps), and extreme (10000 qps) workloads.
//!
//! Paper shape: even under extreme load, only a handful of links are hot at
//! any instant — congestion is localized, which is what gives DIBS spare
//! buffers nearby.

use dibs::presets::{mixed_workload_sim, MixedWorkload};
use dibs::SimConfig;
use dibs_bench::{parallel_map, Harness};
use dibs_engine::time::SimDuration;
use dibs_net::builders::FatTreeParams;
use dibs_stats::{ExperimentRecord, SeriesPoint};

fn main() {
    let h = Harness::from_env();
    let mut rec = ExperimentRecord::new(
        "fig04_hotlinks",
        "Fraction of links >= 90% utilized, CDF over time (Fig 4)",
        "hot_link_fraction",
    );
    rec.param("workloads", "300 / 2000 / 10000 qps")
        .param("sample_interval_ms", 1)
        .param("duration_ms", h.scale.heavy_duration().as_millis_f64());

    let scale = h.scale;
    let labelled: Vec<(&str, f64)> =
        vec![("baseline", 300.0), ("heavy", 2000.0), ("extreme", 10000.0)];
    let series = parallel_map(labelled, |(label, qps)| {
        let wl = MixedWorkload {
            qps,
            duration: scale.heavy_duration(),
            drain: scale.drain(),
            ..MixedWorkload::paper_default()
        };
        let mut cfg = SimConfig::dctcp_dibs();
        cfg.sample_interval = Some(SimDuration::from_millis(1));
        cfg.hot_link_threshold = 0.9;
        let results = mixed_workload_sim(FatTreeParams::paper_default(), cfg, wl).run();
        (label, results.hot_fraction_samples)
    });

    for frac in [0.0, 0.005, 0.01, 0.02, 0.05, 0.10, 0.20, 0.50, 1.0] {
        let mut point = SeriesPoint::at(frac);
        for (label, samples) in &series {
            let below = samples.iter().filter(|&&v| v <= frac).count();
            point = point.with(
                &format!("cum_{label}"),
                below as f64 / samples.len().max(1) as f64,
            );
        }
        rec.push(point);
    }
    h.finish(&rec);
}
