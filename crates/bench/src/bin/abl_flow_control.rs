//! Ablation: DIBS versus hop-by-hop Ethernet flow control (§6).
//!
//! Both mechanisms make the fabric (nearly) lossless. The paper's argument
//! is qualitative — PAUSE thresholds need tuning, pausing blocks innocent
//! traffic on the paused link (head-of-line blocking), and backpressure
//! spreads congestion upstream, while DIBS redirects only the overflow.
//! This bench quantifies that: mixed workload, three query intensities,
//! droptail vs PFC vs DIBS.

use dibs::presets::{mixed_workload_sim, MixedWorkload};
use dibs::{PfcConfig, RunDescriptor, SimConfig};
use dibs_bench::Harness;
use dibs_net::builders::FatTreeParams;
use dibs_stats::{ExperimentRecord, SeriesPoint};

fn main() {
    let h = Harness::from_env();
    let mut rec = ExperimentRecord::new(
        "abl_flow_control",
        "Ablation: DIBS vs Ethernet flow control (§6)",
        "qps",
    );
    rec.param("incast_degree", 40)
        .param("response_kb", 20)
        .param("bg_interarrival_ms", 120)
        .param("pfc_xoff", 12)
        .param("pfc_xon", 6)
        .param("duration_ms", h.scale.duration().as_millis_f64());

    let wl0 = h.workload();
    let master = h.master_seed;
    let points = h.executor().map(vec![300.0f64, 1000.0, 2000.0], |qps| {
        // Sweep points are whole qps values well under 2^53.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let point = qps as u64;
        let seed = RunDescriptor::new("abl_flow_control", "paired", point, 0).paired_seed(master);
        let wl = MixedWorkload { qps, ..wl0 };
        let tree = FatTreeParams::paper_default();

        let mut droptail =
            mixed_workload_sim(tree, SimConfig::dctcp_baseline().with_seed(seed), wl).run();
        let mut pfc_cfg = SimConfig::dctcp_baseline().with_seed(seed);
        pfc_cfg.pfc = Some(PfcConfig::default_for_paper_buffers());
        let mut pfc = mixed_workload_sim(tree, pfc_cfg, wl).run();
        let mut dibs = mixed_workload_sim(tree, SimConfig::dctcp_dibs().with_seed(seed), wl).run();

        SeriesPoint::at(qps)
            .with(
                "qct_p99_ms_droptail",
                droptail.qct_p99_ms().unwrap_or(f64::NAN),
            )
            .with("qct_p99_ms_pfc", pfc.qct_p99_ms().unwrap_or(f64::NAN))
            .with("qct_p99_ms_dibs", dibs.qct_p99_ms().unwrap_or(f64::NAN))
            .with(
                "bg_fct_p99_ms_droptail",
                droptail.bg_fct_p99_ms().unwrap_or(f64::NAN),
            )
            .with("bg_fct_p99_ms_pfc", pfc.bg_fct_p99_ms().unwrap_or(f64::NAN))
            .with(
                "bg_fct_p99_ms_dibs",
                dibs.bg_fct_p99_ms().unwrap_or(f64::NAN),
            )
            .with("drops_droptail", droptail.counters.total_drops() as f64)
            .with("drops_pfc", pfc.counters.total_drops() as f64)
            .with("drops_dibs", dibs.counters.total_drops() as f64)
            .with("pause_events_pfc", pfc.pfc_pause_events as f64)
    });
    for p in points {
        rec.push(p);
    }
    h.finish(&rec);
}
