//! Figure 7: 99th-percentile QCT versus switch buffer size, three systems:
//! DCTCP, DCTCP with infinite buffers, and DCTCP+DIBS.
//!
//! Paper shape: DIBS tracks the infinite-buffer line at every size and its
//! advantage over plain DCTCP grows as buffers shrink.

use dibs::presets::{mixed_workload_sim, MixedWorkload};
use dibs::{RunDescriptor, SimConfig};
use dibs_bench::Harness;
use dibs_net::builders::FatTreeParams;
use dibs_stats::{ExperimentRecord, SeriesPoint};
use dibs_switch::BufferConfig;

fn main() {
    let h = Harness::from_env();
    let mut rec = ExperimentRecord::new(
        "fig07_buffer_sweep",
        "QCT vs buffer size: DCTCP / DCTCP+infinite / DCTCP+DIBS (Fig 7)",
        "buffer_pkts",
    );
    rec.param("qps", 300)
        .param("incast_degree", 40)
        .param("response_kb", 20)
        .param("bg_interarrival_ms", 120)
        .param("duration_ms", h.scale.duration().as_millis_f64());

    let sweep = [25usize, 100, 300, 500, 700];
    let base_wl = h.workload();
    let master = h.master_seed;
    let points = h.executor().map(sweep.to_vec(), |pkts| {
        // All three arms at a point share a paired seed: identical traffic.
        let seed =
            RunDescriptor::new("fig07_buffer_sweep", "paired", pkts as u64, 0).paired_seed(master);
        let wl = MixedWorkload { ..base_wl };
        let tree = FatTreeParams::paper_default();
        let sized = |mut cfg: SimConfig| {
            cfg.switch.buffer = BufferConfig::StaticPerPort { packets: pkts };
            cfg.switch.ecn_threshold = Some(20.min(pkts.saturating_sub(1).max(1)));
            cfg.with_seed(seed)
        };
        let mut dctcp = mixed_workload_sim(tree, sized(SimConfig::dctcp_baseline()), wl).run();
        let mut dibs = mixed_workload_sim(tree, sized(SimConfig::dctcp_dibs()), wl).run();
        // Infinite buffers are size-independent, but rerun per point so the
        // series aligns (it also keeps the ECN threshold identical).
        let mut inf_cfg = sized(SimConfig::dctcp_baseline());
        inf_cfg.switch.buffer = BufferConfig::Infinite;
        let mut inf = mixed_workload_sim(tree, inf_cfg, wl).run();
        SeriesPoint::at(pkts as f64)
            .with("qct_p99_ms_dctcp", dctcp.qct_p99_ms().unwrap_or(f64::NAN))
            .with("qct_p99_ms_dctcp_inf", inf.qct_p99_ms().unwrap_or(f64::NAN))
            .with("qct_p99_ms_dibs", dibs.qct_p99_ms().unwrap_or(f64::NAN))
            .with("drops_dctcp", dctcp.counters.total_drops() as f64)
            .with("drops_dibs", dibs.counters.total_drops() as f64)
    });
    for p in points {
        rec.push(p);
    }
    h.finish(&rec);
}
