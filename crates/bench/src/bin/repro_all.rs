//! Runs every figure/table binary in sequence (same process), writing all
//! records under `results/`. Use `--quick` for a fast smoke pass.
//!
//! This is the one-command regeneration entry point referenced by
//! EXPERIMENTS.md:
//!
//! ```text
//! cargo run -p dibs-bench --release --bin repro_all            # default scale
//! cargo run -p dibs-bench --release --bin repro_all -- --quick # smoke
//! cargo run -p dibs-bench --release --bin repro_all -- --full  # paper-length
//! ```

use std::process::Command;
use std::time::Instant;

const BINS: &[&str] = &[
    "fig01_detour_path",
    "fig02_detour_timeline",
    "fig03_hotspot_sparsity",
    "fig04_hotlinks",
    "fig05_neighbor_buffers",
    "fig06_testbed_incast",
    "fig07_buffer_sweep",
    "fig08_bg_interarrival",
    "fig09_query_rate",
    "fig10_response_size",
    "fig11_incast_degree",
    "fig12_buffer_size",
    "fig13_ttl",
    "fig14_extreme_qps",
    "fig15_large_response",
    "fig16_pfabric",
    "tab_shared_buffer",
    "tab_oversubscription",
    "tab_fairness",
    "abl_detour_policies",
    "abl_topologies",
    "abl_flow_control",
    "abl_ecmp",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let total = Instant::now();
    let mut failures = Vec::new();
    for bin in BINS {
        let path = exe_dir.join(bin);
        println!("\n=== {bin} ===");
        let started = Instant::now();
        let status = Command::new(&path).args(&args).status();
        match status {
            Ok(s) if s.success() => {
                println!(
                    "=== {bin} done in {:.1?}s ===",
                    started.elapsed().as_secs_f64()
                );
            }
            Ok(s) => {
                eprintln!("=== {bin} FAILED: {s} ===");
                failures.push(*bin);
            }
            Err(e) => {
                eprintln!(
                    "=== {bin} could not start ({e}); build all bins first: \
                     cargo build -p dibs-bench --release --bins ==="
                );
                failures.push(*bin);
            }
        }
    }
    println!(
        "\nAll experiments finished in {:.1}s; {} failures{}",
        total.elapsed().as_secs_f64(),
        failures.len(),
        if failures.is_empty() {
            String::new()
        } else {
            format!(": {failures:?}")
        }
    );
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
