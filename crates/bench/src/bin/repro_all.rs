//! Runs every figure/table binary, writing all records under `results/`.
//! Binaries run in parallel across `--jobs N` workers (default: all cores);
//! each child's output is captured and printed in the fixed table order
//! below, so the transcript is identical regardless of scheduling. Use
//! `--quick` for a fast smoke pass.
//!
//! This is the one-command regeneration entry point referenced by
//! EXPERIMENTS.md:
//!
//! ```text
//! cargo run -p dibs-bench --release --bin repro_all            # default scale
//! cargo run -p dibs-bench --release --bin repro_all -- --quick # smoke
//! cargo run -p dibs-bench --release --bin repro_all -- --full  # paper-length
//! cargo run -p dibs-bench --release --bin repro_all -- --jobs 8
//! ```
//!
//! Unrecognized flags (e.g. `--trace all`) are forwarded verbatim to every
//! child binary, and the `DIBS_TRACE` environment variable is inherited,
//! so one invocation can trace the whole reproduction. Children that wire
//! a tracer through [`dibs_bench::Harness::export_trace`] (e.g.
//! `fig02_detour_timeline`) then write a Chrome-viewable
//! `results/trace_<id>.json` next to their record. Tracing never changes
//! the records themselves (see DESIGN.md §2d).

use dibs_harness::Executor;
use std::process::Command;
use std::time::Instant;

const BINS: &[&str] = &[
    "fig01_detour_path",
    "fig02_detour_timeline",
    "fig03_hotspot_sparsity",
    "fig04_hotlinks",
    "fig05_neighbor_buffers",
    "fig06_testbed_incast",
    "fig07_buffer_sweep",
    "fig08_bg_interarrival",
    "fig09_query_rate",
    "fig10_response_size",
    "fig11_incast_degree",
    "fig12_buffer_size",
    "fig13_ttl",
    "fig14_extreme_qps",
    "fig15_large_response",
    "fig16_pfabric",
    "tab_shared_buffer",
    "tab_oversubscription",
    "tab_fairness",
    "abl_detour_policies",
    "abl_topologies",
    "abl_flow_control",
    "abl_ecmp",
];

/// Last `throughput:` summary line a child printed (emitted by
/// `Harness::finish`), with the prefix stripped for the roll-up table.
fn throughput_line(stdout: &str) -> Option<String> {
    stdout
        .lines()
        .rev()
        .find_map(|l| l.trim().strip_prefix("throughput: "))
        .map(str::to_owned)
}

/// Outcome of one child binary, replayed in table order after the sweep.
struct BinRun {
    bin: &'static str,
    stdout: Vec<u8>,
    stderr: Vec<u8>,
    verdict: Result<f64, String>,
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = dibs_harness::take_jobs_flag(&mut args)
        .or_else(dibs_harness::env_jobs)
        .unwrap_or_else(dibs_harness::default_jobs);
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let total = Instant::now();

    let runs = Executor::new(jobs).map(BINS.to_vec(), |bin| {
        let path = exe_dir.join(bin);
        let started = Instant::now();
        let mut cmd = Command::new(&path);
        cmd.args(&args);
        if jobs > 1 {
            // Figure binaries already run one-per-worker here; nested
            // parallelism would oversubscribe the host.
            cmd.env(dibs_harness::JOBS_ENV, "1");
        }
        match cmd.output() {
            Ok(out) if out.status.success() => BinRun {
                bin,
                stdout: out.stdout,
                stderr: out.stderr,
                verdict: Ok(started.elapsed().as_secs_f64()),
            },
            Ok(out) => BinRun {
                bin,
                stdout: out.stdout,
                stderr: out.stderr,
                verdict: Err(format!("FAILED: {}", out.status)),
            },
            Err(e) => BinRun {
                bin,
                stdout: Vec::new(),
                stderr: Vec::new(),
                verdict: Err(format!(
                    "could not start ({e}); build all bins first: \
                     cargo build -p dibs-bench --release --bins"
                )),
            },
        }
    });

    let mut failures = Vec::new();
    let mut throughputs: Vec<(&'static str, String)> = Vec::new();
    for run in runs {
        println!("\n=== {} ===", run.bin);
        let stdout = String::from_utf8_lossy(&run.stdout).into_owned();
        print!("{stdout}");
        eprint!("{}", String::from_utf8_lossy(&run.stderr));
        if let Some(line) = throughput_line(&stdout) {
            throughputs.push((run.bin, line));
        }
        match run.verdict {
            Ok(secs) => println!("=== {} done in {secs:.1}s ===", run.bin),
            Err(why) => {
                eprintln!("=== {} {why} ===", run.bin);
                failures.push(run.bin);
            }
        }
    }
    if !throughputs.is_empty() {
        println!("\n--- simulation throughput per binary ---");
        for (bin, line) in &throughputs {
            println!("{bin:>22}: {line}");
        }
    }
    println!(
        "\nAll experiments finished in {:.1}s with {} jobs; {} failures{}",
        total.elapsed().as_secs_f64(),
        jobs,
        failures.len(),
        if failures.is_empty() {
            String::new()
        } else {
            format!(": {failures:?}")
        }
    );
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
