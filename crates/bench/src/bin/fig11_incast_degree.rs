//! Figure 11: variable incast degree.
//!
//! Sweeps the number of responders per query 40–100 (20 KB responses,
//! 300 qps, light background).
//!
//! Paper shape: DIBS's advantage *grows* with degree (22 ms at degree 40 to
//! 33 ms at 100) because higher-degree bursts are burstier — the first-RTT
//! burst is `degree x init_cwnd` packets. At degree 100 around 1 % of
//! packets take 40+ detours.

use dibs::presets::{mixed_workload_sim, MixedWorkload};
use dibs::{RunDescriptor, SimConfig};
use dibs_bench::{baseline_vs_dibs_point, Harness};
use dibs_net::builders::FatTreeParams;
use dibs_stats::ExperimentRecord;

fn main() {
    let h = Harness::from_env();
    let mut rec = ExperimentRecord::new(
        "fig11_incast_degree",
        "Variable incast degree (Fig 11)",
        "incast_degree",
    );
    rec.param("bg_interarrival_ms", 120)
        .param("qps", 300)
        .param("response_kb", 20)
        .param("duration_ms", h.scale.duration().as_millis_f64());

    let sweep = [40usize, 60, 80, 100];
    let base_wl = h.workload();
    let master = h.master_seed;
    let points = h.executor().map(sweep.to_vec(), |deg| {
        let seed =
            RunDescriptor::new("fig11_incast_degree", "paired", deg as u64, 0).paired_seed(master);
        let wl = MixedWorkload {
            incast_degree: deg,
            ..base_wl
        };
        let tree = FatTreeParams::paper_default();
        let mut base =
            mixed_workload_sim(tree, SimConfig::dctcp_baseline().with_seed(seed), wl).run();
        let mut dibs = mixed_workload_sim(tree, SimConfig::dctcp_dibs().with_seed(seed), wl).run();

        baseline_vs_dibs_point(deg as f64, &mut base, &mut dibs)
            .with("dibs_frac_40plus_detours", dibs.detoured_at_least(40))
    });
    for p in points {
        rec.push(p);
    }
    h.finish(&rec);
}
