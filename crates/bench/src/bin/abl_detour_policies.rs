//! Ablation: the §7 detour-policy design space.
//!
//! Runs the mixed workload at three query intensities under each detour
//! policy (random default, load-aware, flow-based, probabilistic) plus the
//! droptail baseline, reporting the paper's two headline metrics, drop
//! counts, and detour volume. This quantifies the paper's position that
//! parameterless random detouring captures nearly all of the benefit.

use dibs::presets::{mixed_workload_sim, MixedWorkload};
use dibs::{RunDescriptor, SimConfig};
use dibs_bench::Harness;
use dibs_net::builders::FatTreeParams;
use dibs_stats::{ExperimentRecord, SeriesPoint};
use dibs_switch::DibsPolicy;

fn main() {
    let h = Harness::from_env();
    let mut rec = ExperimentRecord::new(
        "abl_detour_policies",
        "Ablation: detour policies at three query intensities (§7)",
        "qps",
    );
    rec.param("incast_degree", 40)
        .param("response_kb", 20)
        .param("bg_interarrival_ms", 120)
        .param("duration_ms", h.scale.duration().as_millis_f64());

    let policies: [(&str, DibsPolicy); 5] = [
        ("droptail", DibsPolicy::Disabled),
        ("random", DibsPolicy::Random),
        ("loadaware", DibsPolicy::LoadAware),
        ("flowbased", DibsPolicy::FlowBased),
        ("prob85", DibsPolicy::Probabilistic { onset: 0.85 }),
    ];
    let wl0 = h.workload();
    let master = h.master_seed;
    let points = h.executor().map(vec![300.0f64, 1000.0, 2000.0], |qps| {
        // Every policy arm at a point sees identical traffic.
        // Sweep points are whole qps values well under 2^53.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let point = qps as u64;
        let seed =
            RunDescriptor::new("abl_detour_policies", "paired", point, 0).paired_seed(master);
        let wl = MixedWorkload { qps, ..wl0 };
        let mut point = SeriesPoint::at(qps);
        for (name, policy) in policies {
            let cfg = SimConfig::dctcp_dibs().with_policy(policy).with_seed(seed);
            let mut r = mixed_workload_sim(FatTreeParams::paper_default(), cfg, wl).run();
            point = point
                .with(
                    &format!("qct_p99_ms_{name}"),
                    r.qct_p99_ms().unwrap_or(f64::NAN),
                )
                .with(
                    &format!("bg_fct_p99_ms_{name}"),
                    r.bg_fct_p99_ms().unwrap_or(f64::NAN),
                )
                .with(&format!("drops_{name}"), r.counters.total_drops() as f64)
                .with(&format!("detours_{name}"), r.counters.detours as f64);
        }
        point
    });
    for p in points {
        rec.push(p);
    }
    h.finish(&rec);
}
