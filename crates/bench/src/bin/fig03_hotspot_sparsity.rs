//! Figure 3: sparsity of hotspots in four workload families.
//!
//! The paper reproduces the Flyways measurement over four proprietary
//! traces; per the substitution rule we synthesize four demand-matrix
//! families with the documented qualitative structure, route them over the
//! K=8 fat-tree with fluid ECMP, and compute the same statistic: the CDF
//! over snapshots of the fraction of links running at >= 50 % of the
//! hottest link's utilization.
//!
//! Paper shape: for every family, in at least ~60 % of snapshots fewer than
//! 10 % of links are hot.

use dibs_bench::Harness;
use dibs_engine::rng::SimRng;
use dibs_net::builders::{fat_tree, FatTreeParams};
use dibs_net::routing::Fib;
use dibs_stats::{ExperimentRecord, Samples, SeriesPoint};
use dibs_workload::matrices::{hot_fraction_relative, link_utilization, WorkloadFamily};

fn main() {
    let h = Harness::from_env();
    let snapshots = match h.scale {
        dibs_bench::Scale::Quick => 40,
        _ => 200,
    };
    let topo = fat_tree(FatTreeParams::paper_default());
    let fib = Fib::compute(&topo);
    let mut rng = SimRng::new(42).fork("fig03");

    let mut rec = ExperimentRecord::new(
        "fig03_hotspot_sparsity",
        "Hot-link sparsity across four workload families (Fig 3)",
        "hot_link_fraction",
    );
    rec.param("snapshots", snapshots)
        .param("hot_definition", "util >= 0.5 * max link util");

    let mut per_family: Vec<(String, Samples)> = Vec::new();
    for fam in WorkloadFamily::ALL {
        let mut samples = Samples::new();
        for _ in 0..snapshots {
            let m = fam.sample(topo.num_hosts(), 1e8, &mut rng);
            let utils = link_utilization(&topo, &fib, &m);
            samples.push(hot_fraction_relative(&utils, 0.5));
        }
        per_family.push((fam.label().to_string(), samples));
    }

    // CDF rows: x = hot-link fraction, y = cumulative fraction of snapshots.
    for frac in [0.01, 0.02, 0.05, 0.10, 0.20, 0.30, 0.50, 0.80, 1.0] {
        let mut point = SeriesPoint::at(frac);
        for (label, samples) in &per_family {
            let below = samples.values().iter().filter(|&&v| v <= frac).count();
            point = point.with(
                &format!("cum_{}", label.replace('-', "_")),
                below as f64 / samples.len() as f64,
            );
        }
        rec.push(point);
    }
    h.finish(&rec);
}
