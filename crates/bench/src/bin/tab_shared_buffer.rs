//! §5.5.2: dynamic buffer allocation (shared-memory switches).
//!
//! Models an Arista-7050QX-like switch: 1.7 MB of shared packet memory with
//! Choudhury–Hahne dynamic thresholds. Sweeps the incast degree; beyond
//! ~150 concurrent responders (achieved by running multiple connections per
//! server, as in the paper) the whole shared pool overflows.
//!
//! Paper shape: with DBA alone, DCTCP is lossless up to ~150 and then
//! starts dropping with elevated 99th QCT; enabling DIBS stays lossless
//! even when the burst overflows the pool, cutting the 99th-percentile QCT
//! (the paper reports 75.4 %).

use dibs::{SimConfig, Simulation};
use dibs_bench::{parallel_map, Harness};
use dibs_engine::rng::SimRng;
use dibs_engine::time::SimTime;
use dibs_net::builders::{fat_tree, FatTreeParams};
use dibs_net::ids::HostId;
use dibs_stats::{ExperimentRecord, SeriesPoint};
use dibs_switch::BufferConfig;
use dibs_workload::QuerySpec;

/// Builds an incast of `degree` responses allowing repeated responders
/// (multiple connections per server) once `degree` exceeds the host count.
fn big_incast(mut config: SimConfig, degree: usize, response_bytes: u64) -> Simulation {
    let topo = fat_tree(FatTreeParams::paper_default());
    let hosts = topo.num_hosts();
    config.horizon = SimTime::from_secs(5);
    let mut sim = Simulation::new(topo, config);
    let mut rng = SimRng::new(config.seed).fork("big-incast");
    let target = rng.below(hosts);
    let responders: Vec<HostId> = (0..degree)
        .map(|i| {
            let mut hx = i % (hosts - 1);
            if hx >= target {
                hx += 1;
            }
            HostId::from_index(hx)
        })
        .collect();
    sim.add_queries(&[QuerySpec {
        start: SimTime::ZERO,
        target: HostId::from_index(target),
        responders,
        response_bytes,
    }]);
    sim
}

fn main() {
    let h = Harness::from_env();
    let mut rec = ExperimentRecord::new(
        "tab_shared_buffer",
        "Shared-memory (DBA) switches vs incast degree (§5.5.2)",
        "incast_degree",
    );
    rec.param("shared_bytes", 1_700_000)
        .param("alpha", 1.0)
        .param("response_kb", 20);

    let sweep = [40usize, 100, 150, 200, 300, 400];
    let points = parallel_map(sweep.to_vec(), |deg| {
        let dba = BufferConfig::arista_like();
        let mut base_cfg = SimConfig::dctcp_baseline();
        base_cfg.switch.buffer = dba;
        let mut dibs_cfg = SimConfig::dctcp_dibs();
        dibs_cfg.switch.buffer = dba;

        let mut base = big_incast(base_cfg, deg, 20_000).run();
        let mut dibs = big_incast(dibs_cfg, deg, 20_000).run();
        SeriesPoint::at(deg as f64)
            .with(
                "qct_p99_ms_dctcp_dba",
                base.qct_ms.percentile(0.99).unwrap_or(f64::NAN),
            )
            .with(
                "qct_p99_ms_dibs_dba",
                dibs.qct_ms.percentile(0.99).unwrap_or(f64::NAN),
            )
            .with("drops_dctcp_dba", base.counters.total_drops() as f64)
            .with("drops_dibs_dba", dibs.counters.total_drops() as f64)
            .with("detours_dibs", dibs.counters.detours as f64)
    });
    for p in points {
        rec.push(p);
    }
    h.finish(&rec);
}
