//! Figure 13: limiting detours via the packet TTL.
//!
//! Sweeps the initial TTL over {12, 24, 36, 48, 255} under heavy background
//! (10 ms inter-arrival). Each backward detour costs 2 TTL, so TTL 12
//! allows ~3 backward detours on the 6-hop fat-tree.
//!
//! Paper shape: DIBS QCT improves as TTL grows (low TTL forces drops of
//! much-detoured packets); TTL has no effect on plain DCTCP; background FCT
//! is essentially TTL-insensitive. The paper also notes the TTL-12 /
//! TTL-24 anomaly: 24 can be *worse* than 12, because packets linger longer
//! only to die anyway.

use dibs::presets::{mixed_workload_sim, MixedWorkload};
use dibs::{RunDescriptor, SimConfig};
use dibs_bench::{baseline_vs_dibs_point, Harness};
use dibs_engine::time::SimDuration;
use dibs_net::builders::FatTreeParams;
use dibs_stats::ExperimentRecord;

fn main() {
    let h = Harness::from_env();
    let mut rec = ExperimentRecord::new("fig13_ttl", "Variable max TTL (Fig 13)", "ttl");
    rec.param("bg_interarrival_ms", 10)
        .param("qps", 300)
        .param("incast_degree", 40)
        .param("response_kb", 20)
        .param("duration_ms", h.scale.heavy_duration().as_millis_f64());

    let sweep = [12u8, 24, 36, 48, 255];
    let scale = h.scale;
    let master = h.master_seed;
    let points = h.executor().map(sweep.to_vec(), |ttl| {
        let seed = RunDescriptor::new("fig13_ttl", "paired", u64::from(ttl), 0).paired_seed(master);
        let wl = MixedWorkload {
            bg_interarrival: SimDuration::from_millis(10),
            duration: scale.heavy_duration(),
            drain: scale.drain(),
            ..MixedWorkload::paper_default()
        };
        let tree = FatTreeParams::paper_default();
        let configure = |mut cfg: SimConfig| {
            cfg.tcp.initial_ttl = ttl;
            cfg.with_seed(seed)
        };
        let mut base = mixed_workload_sim(tree, configure(SimConfig::dctcp_baseline()), wl).run();
        let mut dibs = mixed_workload_sim(tree, configure(SimConfig::dctcp_dibs()), wl).run();
        let ttl_drops = dibs.counters.drops_ttl as f64;
        baseline_vs_dibs_point(f64::from(ttl), &mut base, &mut dibs)
            .with("ttl_drops_dibs", ttl_drops)
    });
    for p in points {
        rec.push(p);
    }
    h.finish(&rec);
}
