//! Figure 9: variable query arrival rate.
//!
//! Sweeps the query rate 300–2000 qps with light background (120 ms
//! inter-arrival), degree 40, 20 KB responses.
//!
//! Paper shape: DIBS improves 99th QCT by ~20 ms across the sweep; at the
//! highest rates DIBS also *improves* background FCT, because without it
//! background flows start losing packets to query bursts.

use dibs::presets::{mixed_workload_sim, MixedWorkload};
use dibs::{RunDescriptor, SimConfig};
use dibs_bench::{baseline_vs_dibs_point, Harness};
use dibs_net::builders::FatTreeParams;
use dibs_stats::ExperimentRecord;

fn main() {
    let h = Harness::from_env();
    let mut rec = ExperimentRecord::new(
        "fig09_query_rate",
        "Variable query arrival rate (Fig 9)",
        "qps",
    );
    rec.param("bg_interarrival_ms", 120)
        .param("incast_degree", 40)
        .param("response_kb", 20)
        .param("duration_ms", h.scale.duration().as_millis_f64());

    let sweep = [300.0f64, 500.0, 1000.0, 1500.0, 2000.0];
    let base_wl = h.workload();
    let master = h.master_seed;
    let points = h.executor().map(sweep.to_vec(), |qps| {
        // Sweep points are whole qps values well under 2^53.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let point = qps as u64;
        let seed = RunDescriptor::new("fig09_query_rate", "paired", point, 0).paired_seed(master);
        let wl = MixedWorkload { qps, ..base_wl };
        let tree = FatTreeParams::paper_default();
        let mut base =
            mixed_workload_sim(tree, SimConfig::dctcp_baseline().with_seed(seed), wl).run();
        let mut dibs = mixed_workload_sim(tree, SimConfig::dctcp_dibs().with_seed(seed), wl).run();
        baseline_vs_dibs_point(qps, &mut base, &mut dibs)
    });
    for p in points {
        rec.push(p);
    }
    h.finish(&rec);
}
