//! Ablation: can better multipath routing substitute for DIBS? (§6)
//!
//! The paper argues no: "when multiple flows converge on a single receiver
//! and the edge switch becomes a bottleneck, even packet-level, load-aware
//! routing will not help, while DIBS can." This bench runs the incast-heavy
//! mixed workload under flow-level ECMP, packet-level ECMP (spraying), and
//! flow-level ECMP + DIBS.

use dibs::presets::{mixed_workload_sim, MixedWorkload};
use dibs::{EcmpMode, RunDescriptor, SimConfig};
use dibs_bench::Harness;
use dibs_net::builders::FatTreeParams;
use dibs_stats::{ExperimentRecord, SeriesPoint};
use dibs_transport::FastRetransmit;

fn main() {
    let h = Harness::from_env();
    let mut rec = ExperimentRecord::new(
        "abl_ecmp",
        "Ablation: flow-level vs packet-level ECMP vs DIBS (§6)",
        "qps",
    );
    rec.param("incast_degree", 40)
        .param("response_kb", 20)
        .param("bg_interarrival_ms", 120)
        .param("duration_ms", h.scale.duration().as_millis_f64());

    let wl0 = h.workload();
    let master = h.master_seed;
    let points = h.executor().map(vec![300.0f64, 1000.0, 2000.0], |qps| {
        // Sweep points are whole qps values well under 2^53.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let point = qps as u64;
        let seed = RunDescriptor::new("abl_ecmp", "paired", point, 0).paired_seed(master);
        let wl = MixedWorkload { qps, ..wl0 };
        let tree = FatTreeParams::paper_default();

        let mut flow_ecmp =
            mixed_workload_sim(tree, SimConfig::dctcp_baseline().with_seed(seed), wl).run();
        // Packet spraying reorders, so give it the same dupack forbearance
        // DIBS gets.
        let mut spray_cfg = SimConfig::dctcp_baseline().with_seed(seed);
        spray_cfg.ecmp = EcmpMode::PacketLevel;
        spray_cfg.tcp.fast_retransmit = FastRetransmit::Disabled;
        let mut spray = mixed_workload_sim(tree, spray_cfg, wl).run();
        let mut dibs = mixed_workload_sim(tree, SimConfig::dctcp_dibs().with_seed(seed), wl).run();

        SeriesPoint::at(qps)
            .with(
                "qct_p99_ms_flow_ecmp",
                flow_ecmp.qct_p99_ms().unwrap_or(f64::NAN),
            )
            .with(
                "qct_p99_ms_pkt_ecmp",
                spray.qct_p99_ms().unwrap_or(f64::NAN),
            )
            .with("qct_p99_ms_dibs", dibs.qct_p99_ms().unwrap_or(f64::NAN))
            .with("drops_flow_ecmp", flow_ecmp.counters.total_drops() as f64)
            .with("drops_pkt_ecmp", spray.counters.total_drops() as f64)
            .with("drops_dibs", dibs.counters.total_drops() as f64)
    });
    for p in points {
        rec.push(p);
    }
    h.finish(&rec);
}
