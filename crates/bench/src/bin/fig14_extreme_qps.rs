//! Figure 14: when does DIBS break? Extreme query rates.
//!
//! Sweeps 6000–15000 qps (degree 40, 20 KB responses, light background).
//!
//! Paper shape: both schemes degrade, but past ~10 k qps DIBS's completion
//! times explode — detoured packets no longer drain before new bursts
//! arrive, queues build everywhere, and detouring becomes *worse* than
//! dropping. Below the tipping point DIBS still wins.

use dibs::presets::{mixed_workload_sim, MixedWorkload};
use dibs::{RunDescriptor, SimConfig};
use dibs_bench::{baseline_vs_dibs_point, Harness};
use dibs_net::builders::FatTreeParams;
use dibs_stats::ExperimentRecord;

fn main() {
    let h = Harness::from_env();
    let mut rec = ExperimentRecord::new(
        "fig14_extreme_qps",
        "Extreme query intensity — the DIBS breaking point (Fig 14)",
        "qps",
    );
    rec.param("bg_interarrival_ms", 120)
        .param("incast_degree", 40)
        .param("response_kb", 20)
        .param("duration_ms", h.scale.heavy_duration().as_millis_f64());

    let sweep = [6000.0f64, 8000.0, 10000.0, 12000.0, 14000.0];
    let scale = h.scale;
    let master = h.master_seed;
    let points = h.executor().map(sweep.to_vec(), |qps| {
        // Sweep points are whole qps values well under 2^53.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let point = qps as u64;
        let seed = RunDescriptor::new("fig14_extreme_qps", "paired", point, 0).paired_seed(master);
        let wl = MixedWorkload {
            qps,
            duration: scale.heavy_duration(),
            // Generous drain: under collapse, completions trickle in late.
            drain: scale.drain() * 2,
            ..MixedWorkload::paper_default()
        };
        let tree = FatTreeParams::paper_default();
        let mut base =
            mixed_workload_sim(tree, SimConfig::dctcp_baseline().with_seed(seed), wl).run();
        let mut dibs = mixed_workload_sim(tree, SimConfig::dctcp_dibs().with_seed(seed), wl).run();
        baseline_vs_dibs_point(qps, &mut base, &mut dibs)
            .with("qct_done_frac_dctcp", base.query_completion_rate())
            .with("qct_done_frac_dibs", dibs.query_completion_rate())
    });
    for p in points {
        rec.push(p);
    }
    h.finish(&rec);
}
