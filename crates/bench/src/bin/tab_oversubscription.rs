//! §5.5.4: oversubscribed fabrics.
//!
//! Repeats the default mixed-workload comparison with inter-switch link
//! capacity divided by 1, 2, 3, 4 (the paper labels these 1:1, 1:4, 1:9,
//! 1:16 end-to-end oversubscription).
//!
//! Paper shape: DIBS's ~20 ms QCT win persists at every oversubscription
//! level without hurting background FCT — the last hop stays the query
//! bottleneck, and that is where DIBS avoids the losses.

use dibs::presets::mixed_workload_sim;
use dibs::SimConfig;
use dibs_bench::{baseline_vs_dibs_point, parallel_map, Harness};
use dibs_net::builders::FatTreeParams;
use dibs_stats::ExperimentRecord;

fn main() {
    let h = Harness::from_env();
    let mut rec = ExperimentRecord::new(
        "tab_oversubscription",
        "Oversubscribed fabrics (§5.5.4)",
        "fabric_rate_divisor",
    );
    rec.param("qps", 300)
        .param("incast_degree", 40)
        .param("response_kb", 20)
        .param("bg_interarrival_ms", 120)
        .param("duration_ms", h.scale.duration().as_millis_f64());

    let wl = h.workload();
    let points = parallel_map(vec![1u64, 2, 3, 4], |div| {
        let tree = FatTreeParams::oversubscribed(div);
        let mut base = mixed_workload_sim(tree, SimConfig::dctcp_baseline(), wl).run();
        let mut dibs = mixed_workload_sim(tree, SimConfig::dctcp_dibs(), wl).run();
        baseline_vs_dibs_point(div as f64, &mut base, &mut dibs)
    });
    for p in points {
        rec.push(p);
    }
    h.finish(&rec);
}
