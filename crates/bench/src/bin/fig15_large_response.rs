//! Figure 15: large query responses at high query rate — DIBS does *not*
//! break.
//!
//! Sweeps response sizes 60–160 KB at 2000 qps. Unlike the extreme-qps
//! sweep (Fig 14), large responses take several RTTs to transmit, which
//! gives DCTCP's ECN loop time to throttle the senders, so DIBS never
//! reaches a tipping point here.

use dibs::presets::{mixed_workload_sim, MixedWorkload};
use dibs::SimConfig;
use dibs_bench::{baseline_vs_dibs_point, parallel_map, Harness};
use dibs_net::builders::FatTreeParams;
use dibs_stats::ExperimentRecord;

fn main() {
    let h = Harness::from_env();
    let mut rec = ExperimentRecord::new(
        "fig15_large_response",
        "Large query response sizes at 2000 qps (Fig 15)",
        "response_kb",
    );
    rec.param("bg_interarrival_ms", 120)
        .param("incast_degree", 40)
        .param("qps", 2000)
        .param("duration_ms", h.scale.heavy_duration().as_millis_f64());

    let sweep = [60u64, 80, 100, 120, 160];
    let scale = h.scale;
    let points = parallel_map(sweep.to_vec(), |kb| {
        let wl = MixedWorkload {
            qps: 2000.0,
            response_bytes: kb * 1000,
            duration: scale.heavy_duration(),
            drain: scale.drain() * 2,
            ..MixedWorkload::paper_default()
        };
        let tree = FatTreeParams::paper_default();
        let mut base = mixed_workload_sim(tree, SimConfig::dctcp_baseline(), wl).run();
        let mut dibs = mixed_workload_sim(tree, SimConfig::dctcp_dibs(), wl).run();
        baseline_vs_dibs_point(kb as f64, &mut base, &mut dibs)
            .with("qct_done_frac_dibs", dibs.query_completion_rate())
    });
    for p in points {
        rec.push(p);
    }
    h.finish(&rec);
}
