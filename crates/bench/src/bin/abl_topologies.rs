//! Ablation: detouring across topology families (§7 discussion).
//!
//! The paper argues that topologies with richer neighborhoods (HyperX,
//! Jellyfish) suit DIBS even better than the fat-tree, and that DIBS still
//! functions on a linear chain (footnote 10). This bench runs an identical
//! incast-over-background workload on comparable instances of each family
//! and reports the DCTCP-vs-DIBS gap.

use dibs::{RunDescriptor, SimConfig, Simulation};
use dibs_bench::Harness;
use dibs_engine::rng::SimRng;
use dibs_engine::time::SimDuration;
use dibs_net::builders::{
    fat_tree, hyperx, jellyfish, linear, FatTreeParams, HyperXParams, JellyfishParams,
};
use dibs_net::topology::{LinkSpec, Topology};
use dibs_stats::{ExperimentRecord, SeriesPoint};
use dibs_workload::{BackgroundTraffic, QueryTraffic};

fn build(name: &str) -> Topology {
    let gbit = LinkSpec::gbit(1);
    match name {
        "fat_tree_k8" => fat_tree(FatTreeParams::paper_default()),
        // ~128 hosts each, comparable switch counts.
        "jellyfish" => {
            let mut rng = SimRng::new(99);
            jellyfish(
                JellyfishParams {
                    switches: 43,
                    degree: 8,
                    hosts_per_switch: 3,
                    host_link: gbit,
                    fabric_link: gbit,
                },
                &mut rng,
            )
        }
        "hyperx_4x4" => hyperx(HyperXParams {
            shape: &[4, 4],
            hosts_per_switch: 8,
            host_link: gbit,
            fabric_link: gbit,
        }),
        "linear_x8" => linear(8, 16, gbit),
        other => panic!("unknown topology {other}"),
    }
}

fn run(
    topo: Topology,
    cfg: SimConfig,
    duration: SimDuration,
    drain: SimDuration,
) -> dibs::RunResults {
    let hosts = topo.num_hosts();
    let mut cfg = cfg;
    cfg.horizon = dibs_engine::time::SimTime::ZERO + duration + drain;
    let mut sim = Simulation::new(topo, cfg);
    let root = SimRng::new(cfg.seed);
    let mut bg_rng = root.fork("workload/background");
    let mut q_rng = root.fork("workload/query");
    sim.add_flows(
        BackgroundTraffic::paper(SimDuration::from_millis(120)).generate(
            hosts,
            duration,
            &mut bg_rng,
        ),
    );
    let queries = QueryTraffic {
        qps: 1000.0,
        degree: 40.min(hosts - 1),
        response_bytes: 20_000,
    }
    .generate(hosts, duration, &mut q_rng);
    sim.add_queries(&queries);
    sim.run()
}

fn main() {
    let h = Harness::from_env();
    let mut rec = ExperimentRecord::new(
        "abl_topologies",
        "Ablation: DIBS across topology families (§7)",
        "topology_index",
    );
    rec.param("qps", 1000)
        .param("incast_degree", 40)
        .param("response_kb", 20)
        .param("duration_ms", h.scale.duration().as_millis_f64());

    let names = ["fat_tree_k8", "jellyfish", "hyperx_4x4", "linear_x8"];
    let scale = h.scale;
    let master = h.master_seed;
    let points = h
        .executor()
        .map(names.iter().enumerate().collect(), |(i, name)| {
            let seed =
                RunDescriptor::new("abl_topologies", "paired", i as u64, 0).paired_seed(master);
            let mut base = run(
                build(name),
                SimConfig::dctcp_baseline().with_seed(seed),
                scale.duration(),
                scale.drain(),
            );
            let mut dibs = run(
                build(name),
                SimConfig::dctcp_dibs().with_seed(seed),
                scale.duration(),
                scale.drain(),
            );
            SeriesPoint::at(i as f64)
                .with("qct_p99_ms_dctcp", base.qct_p99_ms().unwrap_or(f64::NAN))
                .with("qct_p99_ms_dibs", dibs.qct_p99_ms().unwrap_or(f64::NAN))
                .with("drops_dctcp", base.counters.total_drops() as f64)
                .with("drops_dibs", dibs.counters.total_drops() as f64)
                .with("detours_dibs", dibs.counters.detours as f64)
                .with("qct_done_frac_dibs", dibs.query_completion_rate())
        });
    for (i, name) in names.iter().enumerate() {
        rec.param(&format!("topology_{i}"), *name);
    }
    for p in points {
        rec.push(p);
    }
    h.finish(&rec);
}
