//! Figure 5: spare buffer capacity near hot links.
//!
//! For the baseline / heavy / extreme workloads of Fig 4, measures at each
//! sample tick the mean fraction of free buffer among the 1-hop and 2-hop
//! switch neighborhoods of hot (>= 90 % utilized) links.
//!
//! Paper shape: ~80 % of neighboring buffers stay empty in all but the
//! extreme scenario — the headroom DIBS borrows.

use dibs::presets::{mixed_workload_sim, MixedWorkload};
use dibs::SimConfig;
use dibs_bench::{parallel_map, Harness};
use dibs_engine::time::SimDuration;
use dibs_net::builders::FatTreeParams;
use dibs_stats::{ExperimentRecord, SeriesPoint};

fn main() {
    let h = Harness::from_env();
    let mut rec = ExperimentRecord::new(
        "fig05_neighbor_buffers",
        "Free buffer fraction near hot links, CDF over time (Fig 5)",
        "free_buffer_fraction",
    );
    rec.param("workloads", "300 / 2000 / 10000 qps")
        .param("sample_interval_ms", 1)
        .param("duration_ms", h.scale.heavy_duration().as_millis_f64());

    let scale = h.scale;
    let labelled: Vec<(&str, f64)> =
        vec![("baseline", 300.0), ("heavy", 2000.0), ("extreme", 10000.0)];
    let series = parallel_map(labelled, |(label, qps)| {
        let wl = MixedWorkload {
            qps,
            duration: scale.heavy_duration(),
            drain: scale.drain(),
            ..MixedWorkload::paper_default()
        };
        let mut cfg = SimConfig::dctcp_dibs();
        cfg.sample_interval = Some(SimDuration::from_millis(1));
        cfg.hot_link_threshold = 0.9;
        let results = mixed_workload_sim(FatTreeParams::paper_default(), cfg, wl).run();
        (
            label,
            results.neighbor_free_1hop,
            results.neighbor_free_2hop,
        )
    });

    // CDF over ticks of the mean free fraction (1 - x would be occupancy).
    for frac in [0.0, 0.2, 0.4, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0] {
        let mut point = SeriesPoint::at(frac);
        for (label, hop1, hop2) in &series {
            let c1 = hop1.iter().filter(|&&v| v <= frac).count();
            let c2 = hop2.iter().filter(|&&v| v <= frac).count();
            point = point
                .with(
                    &format!("cum_{label}_1hop"),
                    c1 as f64 / hop1.len().max(1) as f64,
                )
                .with(
                    &format!("cum_{label}_2hop"),
                    c2 as f64 / hop2.len().max(1) as f64,
                );
        }
        rec.push(point);
    }
    h.finish(&rec);
}
