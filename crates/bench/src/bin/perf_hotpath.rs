//! Hot-path throughput suite: event-queue ops, FIB lookups, and
//! end-to-end incast simulation rate, emitted as `BENCH_hotpath.json`.
//!
//! This binary seeds the repository's perf trajectory: it pins the pre-PR
//! baseline numbers (measured on the heap-based event queue and the
//! nested-`Vec` FIB at commit `eb3fc25`) next to the current tree's
//! numbers so every future change can be judged against both.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p dibs-bench --bin perf_hotpath            # full suite
//! cargo run --release -p dibs-bench --bin perf_hotpath -- --smoke # CI smoke
//! ```
//!
//! The full suite writes `BENCH_hotpath.json` in the working directory
//! (committed at the repo root); `--smoke` runs a trimmed workload and
//! writes `results/BENCH_hotpath_smoke.json` instead so CI runs never
//! clobber the committed record.

use dibs::presets::testbed_incast_sim;
use dibs::SimConfig;
use dibs_bench::timing::{CaseMeasurement, Group};
use dibs_engine::queue::EventQueue;
use dibs_engine::rng::SimRng;
use dibs_engine::time::{SimDuration, SimTime};
use dibs_json::{Json, ObjBuilder};
use dibs_net::builders::{fat_tree, FatTreeParams};
use dibs_net::ids::{FlowId, HostId, NodeId};
use dibs_net::routing::Fib;
use std::hint::black_box;

/// Pre-PR hot-path baseline, measured at commit `eb3fc25` (binary heap
/// event queue, nested-`Vec` FIB, no ECMP memo) with the same workloads
/// this binary runs. Pinned so the committed `BENCH_hotpath.json` always
/// records both sides of the comparison.
///
/// The shared build machine's absolute throughput drifts by tens of
/// percent across time windows (the same binary has measured anywhere
/// from ~4.9M to ~7.1M baseline events/sec), so absolute rates are only
/// comparable *within* a window. All three baselines below were
/// therefore measured with a paired protocol: a pristine `eb3fc25`
/// worktree ran probes replicating each case's exact workload and
/// measurement statistic (calibrated ~30 ms batches, best of 5)
/// immediately before the suite run that produced the committed
/// `BENCH_hotpath.json`, and a second e2e probe immediately after
/// confirmed the window held (4.81M events/sec). Across 12 paired A/B
/// runs the per-pair e2e speedup ratio ranged 1.45-1.74 while absolute
/// rates drifted, so the committed speedup figure is representative,
/// not a lucky window.
mod baseline {
    /// `e2e/incast_dibs` events per second (paired probe run in the
    /// same window as the committed suite run).
    pub const E2E_INCAST_EVENTS_PER_SEC: f64 = 4_987_516.0;
    /// `event_queue/push_pop_hot` nanoseconds per op.
    pub const QUEUE_PUSH_POP_NS_PER_OP: f64 = 36.40;
    /// `fib/select_port` nanoseconds per lookup.
    pub const FIB_SELECT_NS_PER_LOOKUP: f64 = 12.25;
    /// Commit the numbers were measured at.
    pub const COMMIT: &str = "eb3fc25";
}

struct Suite {
    smoke: bool,
    cases: Vec<CaseMeasurement>,
}

impl Suite {
    fn find(&self, group: &str, case: &str) -> Option<&CaseMeasurement> {
        self.cases
            .iter()
            .find(|m| m.group == group && m.case == case)
    }
}

fn bench_event_queue(s: &mut Suite) {
    let g = Group::new("event_queue");

    // Steady-state churn at a realistic pending-set size (~1k events, the
    // regime an incast run keeps the queue in): one pop + one reschedule
    // per iteration = 2 queue ops.
    {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.push(SimTime::from_nanos(i * 100), i);
        }
        let mut t = 0u64;
        let m = g.case_rate("push_pop_hot", "ops", || {
            t += 97;
            let (head, _) = q.pop().expect("queue stays nonempty");
            q.push(head + SimDuration::from_nanos(t % 100_000), t);
            black_box(head);
            2
        });
        s.cases.push(m);
    }

    // Bulk fill + drain with scattered timestamps (the schedule-heavy
    // start-of-run regime).
    let n: u64 = if s.smoke { 8_192 } else { 65_536 };
    let cap = usize::try_from(n).expect("fill size fits usize");
    let m = g.case_rate("fill_drain_64k", "ops", move || {
        let mut q = EventQueue::with_capacity(cap);
        for i in 0..n {
            q.push(SimTime::from_nanos((i * 2_654_435_761) % 1_000_000), i);
        }
        while let Some(e) = q.pop() {
            black_box(e);
        }
        2 * n
    });
    s.cases.push(m);
}

fn bench_fib(s: &mut Suite) {
    let g = Group::new("fib");
    let topo = fat_tree(FatTreeParams::paper_default());

    if !s.smoke {
        let m = g.case("compute_k8", || black_box(Fib::compute(&topo)));
        s.cases.push(m);
    }

    let fib = Fib::compute(&topo);
    // Deterministic lookup batch: switch nodes x random (dst, flow).
    let mut rng = SimRng::new(0xF1B);
    let switches = topo.switch_nodes().to_vec();
    let batch: Vec<(NodeId, HostId, FlowId)> = (0..1024)
        .map(|_| {
            let node = switches[rng.below(switches.len())];
            let dst = HostId::from_index(rng.below(topo.num_hosts()));
            let flow = FlowId(u32::try_from(rng.below(4096)).expect("flow id fits u32"));
            (node, dst, flow)
        })
        .collect();
    let lookups = u64::try_from(batch.len()).expect("batch size fits u64");
    let m = g.case_rate("select_port", "lookups", || {
        let mut acc = 0usize;
        for &(node, dst, flow) in &batch {
            acc = acc.wrapping_add(fib.select_port(node, dst, flow).unwrap_or(0));
        }
        black_box(acc);
        lookups
    });
    s.cases.push(m);
}

fn bench_e2e(s: &mut Suite) {
    let g = Group::new("e2e");
    // Mirrors `benches/e2e_sim.rs`: one full testbed incast per iteration.
    let (senders, bytes) = if s.smoke { (4, 32_000) } else { (10, 32_000) };
    for (name, cfg) in [
        ("incast_dibs", SimConfig::dctcp_dibs()),
        ("incast_droptail", SimConfig::dctcp_baseline()),
    ] {
        let m = g.case_rate(name, "events", || {
            let results = testbed_incast_sim(cfg, 5, senders, bytes).run();
            // The measured path IS the trace-disabled path: the default
            // Tracer::Off must record nothing and attach no report.
            assert!(
                results.trace.is_none(),
                "default build must run with tracing fully disabled"
            );
            black_box(results.events_dispatched)
        });
        s.cases.push(m);
    }
}

/// `--smoke`: compare the just-measured trace-disabled event-loop rate to
/// the committed full-suite record and warn loudly on a >2% shortfall.
///
/// A warning, not a gate: the shared build machine's absolute throughput
/// drifts by tens of percent across time windows (see the `baseline`
/// docs), and smoke runs a trimmed workload (4 senders vs the full
/// suite's 10), so only a paired A/B run on one machine can convict a
/// commit. The warning tells CI eyeballs where to point that protocol.
fn warn_if_smoke_regressed(e2e_rate: f64) {
    const COMMITTED: &str = "BENCH_hotpath.json";
    let Ok(text) = std::fs::read_to_string(COMMITTED) else {
        eprintln!("note: no committed {COMMITTED} here; skipping the smoke rate check");
        return;
    };
    let committed_rate = Json::parse(&text).ok().and_then(|j| {
        j.get("current")
            .and_then(|c| c.get("e2e_incast_events_per_sec").and_then(Json::as_f64))
    });
    let Some(committed_rate) = committed_rate else {
        eprintln!("note: {COMMITTED} has no current.e2e_incast_events_per_sec; skipping");
        return;
    };
    if committed_rate <= 0.0 {
        return;
    }
    let ratio = e2e_rate / committed_rate;
    if ratio < 0.98 {
        eprintln!(
            "\nWARNING: smoke e2e event rate is {ratio:.2}x the committed record\n\
             ({e2e_rate:.0} vs {committed_rate:.0} events/sec in {COMMITTED}).\n\
             This machine's absolute throughput drifts across time windows and\n\
             smoke runs a trimmed incast (4 senders vs 10), so this is a HINT,\n\
             not a verdict. Before reverting anything, run the paired-baseline\n\
             protocol from DESIGN.md §2c: benchmark the suspect commit and its\n\
             parent back-to-back in one window and compare those two numbers."
        );
    } else {
        println!("smoke e2e rate is {ratio:.2}x the committed record (>= 0.98x, ok)");
    }
}

fn report(s: &Suite) -> Json {
    let e2e = s.find("e2e", "incast_dibs").expect("e2e case ran");
    let queue = s.find("event_queue", "push_pop_hot").expect("queue case");
    let fib = s.find("fib", "select_port").expect("fib case");
    let e2e_rate = e2e.items_per_sec();
    let speedup = if baseline::E2E_INCAST_EVENTS_PER_SEC > 0.0 {
        e2e_rate / baseline::E2E_INCAST_EVENTS_PER_SEC
    } else {
        f64::NAN
    };

    let baseline_obj = ObjBuilder::new()
        .field("commit", baseline::COMMIT)
        .field(
            "e2e_incast_events_per_sec",
            baseline::E2E_INCAST_EVENTS_PER_SEC,
        )
        .field(
            "event_queue_push_pop_ns_per_op",
            baseline::QUEUE_PUSH_POP_NS_PER_OP,
        )
        .field(
            "fib_select_port_ns_per_lookup",
            baseline::FIB_SELECT_NS_PER_LOOKUP,
        )
        .build();

    let current_obj = ObjBuilder::new()
        .field("e2e_incast_events_per_sec", e2e_rate)
        .field(
            "event_queue_push_pop_ns_per_op",
            queue.ns_per_iter / queue.items_per_iter,
        )
        .field(
            "fib_select_port_ns_per_lookup",
            fib.ns_per_iter / fib.items_per_iter,
        )
        .build();

    let cases = Json::Arr(s.cases.iter().map(CaseMeasurement::to_json).collect());
    ObjBuilder::new()
        .field("bench", "hotpath")
        .field("mode", if s.smoke { "smoke" } else { "full" })
        .field("baseline", baseline_obj)
        .field("current", current_obj)
        .field("e2e_speedup_vs_baseline", speedup)
        .field("cases", cases)
        .build()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut suite = Suite {
        smoke,
        cases: Vec::new(),
    };

    bench_event_queue(&mut suite);
    bench_fib(&mut suite);
    bench_e2e(&mut suite);

    let json = report(&suite);
    let path = if smoke {
        let _ = std::fs::create_dir_all("results");
        "results/BENCH_hotpath_smoke.json".to_string()
    } else {
        "BENCH_hotpath.json".to_string()
    };
    match std::fs::write(&path, json.render_pretty()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }
    if let Some(speedup) = json.get("e2e_speedup_vs_baseline").and_then(Json::as_f64) {
        if speedup.is_finite() {
            println!("e2e incast speedup vs pre-PR baseline: {speedup:.2}x");
        }
    }
    if smoke {
        if let Some(e2e) = suite.find("e2e", "incast_dibs") {
            warn_if_smoke_regressed(e2e.items_per_sec());
        }
    }
}
