#![warn(missing_docs)]

//! Shared harness for the figure/table binaries.
//!
//! Every binary follows the same pattern: build the experiment's parameter
//! sweep, run the simulations (in parallel when cores allow), assemble an
//! [`ExperimentRecord`], print it as an aligned table, and persist it as
//! JSON under `results/`.
//!
//! All binaries accept `--quick` (shorter traffic windows, for smoke runs)
//! and `--full` (paper-length windows); the default sits in between so the
//! whole suite finishes in tens of minutes on one core. The scale can also
//! be set via the `DIBS_SCALE` environment variable (`quick`, `default`,
//! `full`).

pub mod timing;

use dibs::presets::MixedWorkload;
use dibs::RunResults;
use dibs_engine::time::SimDuration;
use dibs_harness::Executor;
use dibs_stats::{ExperimentRecord, SeriesPoint};
use std::path::PathBuf;

/// Master seed used by the sweep binaries unless `--seed` / `DIBS_SEED`
/// overrides it. Every run derives its own stream from this via its
/// `dibs::RunDescriptor`, so one number pins the whole suite.
pub const DEFAULT_MASTER_SEED: u64 = 0xD1B5_2014;

/// How long the traffic windows run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test: tiny windows, coarse percentiles.
    Quick,
    /// Suite default: enough queries for a stable 99th percentile.
    Default,
    /// Paper-length windows.
    Full,
}

impl Scale {
    /// Traffic generation window for mixed workloads.
    pub fn duration(self) -> SimDuration {
        match self {
            Scale::Quick => SimDuration::from_millis(120),
            Scale::Default => SimDuration::from_millis(400),
            Scale::Full => SimDuration::from_millis(1000),
        }
    }

    /// Drain time appended after the generation window.
    pub fn drain(self) -> SimDuration {
        match self {
            Scale::Quick => SimDuration::from_millis(300),
            Scale::Default => SimDuration::from_millis(600),
            Scale::Full => SimDuration::from_millis(1000),
        }
    }

    /// A short window for the very heavy experiments (10 ms background
    /// inter-arrival, extreme qps).
    pub fn heavy_duration(self) -> SimDuration {
        match self {
            Scale::Quick => SimDuration::from_millis(80),
            Scale::Default => SimDuration::from_millis(200),
            Scale::Full => SimDuration::from_millis(500),
        }
    }
}

/// Execution context shared by all figure binaries.
#[derive(Debug, Clone)]
pub struct Harness {
    /// Chosen scale.
    pub scale: Scale,
    /// Where JSON records land.
    pub out_dir: PathBuf,
    /// Worker threads for the sweep executor (`--jobs` / `DIBS_JOBS`).
    pub jobs: usize,
    /// Master seed for run-descriptor stream derivation (`--seed` /
    /// `DIBS_SEED`).
    pub master_seed: u64,
    /// Event-trace spec from `--trace` / `DIBS_TRACE`, if any.
    pub trace: Option<String>,
}

impl Default for Harness {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Harness {
    /// Builds a harness from argv (`--quick` / `--full` / `--jobs N` /
    /// `--seed N`) and the `DIBS_SCALE` / `DIBS_JOBS` / `DIBS_SEED`
    /// environment variables (argv wins).
    pub fn from_env() -> Self {
        let mut args: Vec<String> = std::env::args().skip(1).collect();
        let jobs = dibs_harness::take_jobs_flag(&mut args)
            .or_else(dibs_harness::env_jobs)
            .unwrap_or_else(dibs_harness::default_jobs);

        let mut scale = match std::env::var("DIBS_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            Ok("full") => Scale::Full,
            _ => Scale::Default,
        };
        let mut master_seed = std::env::var("DIBS_SEED")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(DEFAULT_MASTER_SEED);
        let mut trace = std::env::var("DIBS_TRACE").ok();

        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => scale = Scale::Quick,
                "--full" => scale = Scale::Full,
                "--default" => scale = Scale::Default,
                "--seed" if i + 1 < args.len() => {
                    if let Ok(s) = args[i + 1].parse::<u64>() {
                        master_seed = s;
                    }
                    i += 1;
                }
                "--trace" if i + 1 < args.len() => {
                    trace = Some(args[i + 1].clone());
                    i += 1;
                }
                other => {
                    eprintln!(
                        "warning: unrecognized argument `{other}` \
                         (expected --quick/--full/--jobs N/--seed N/--trace SPEC)"
                    );
                }
            }
            i += 1;
        }
        let out_dir = std::env::var("DIBS_RESULTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"));
        timing::meter_start();
        Harness {
            scale,
            out_dir,
            jobs,
            master_seed,
            trace,
        }
    }

    /// The tracer requested via `--trace` / `DIBS_TRACE`, falling back to
    /// `default` when neither was given (binaries with their own trace
    /// needs, like `fig02_detour_timeline`, pass a non-`off` default).
    ///
    /// A malformed user spec is reported and degrades to `default` rather
    /// than silently tracing the wrong kinds.
    pub fn tracer_or(&self, default: &str) -> dibs::Tracer {
        let requested = self.trace.as_deref();
        let spec = requested.unwrap_or(default);
        match spec.parse::<dibs::TraceSpec>() {
            Ok(s) => dibs::Tracer::from_spec(&s),
            Err(e) => {
                eprintln!("warning: bad trace spec `{spec}` ({e}); using `{default}`");
                default
                    .parse::<dibs::TraceSpec>()
                    .map(|s| dibs::Tracer::from_spec(&s))
                    .unwrap_or_else(|_| dibs::Tracer::off())
            }
        }
    }

    /// Writes a captured trace as Chrome-viewable JSON next to the
    /// records, but only when the user explicitly asked to trace (a
    /// binary's own default tracer stays internal).
    pub fn export_trace(&self, id: &str, results: &RunResults) {
        let (Some(_), Some(trace)) = (&self.trace, &results.trace) else {
            return;
        };
        if let Err(e) = std::fs::create_dir_all(&self.out_dir) {
            eprintln!("warning: cannot create {}: {e}", self.out_dir.display());
            return;
        }
        let path = self.out_dir.join(format!("trace_{id}.json"));
        match std::fs::write(&path, trace.chrome_trace().render_pretty()) {
            Ok(()) => eprintln!(
                "trace: {} events ({} observed, {} dropped) -> {} (open in chrome://tracing)",
                trace.events.len(),
                trace.observed,
                trace.dropped,
                path.display()
            ),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }

    /// The deterministic sweep executor at this harness's `--jobs` width.
    pub fn executor(&self) -> Executor {
        Executor::new(self.jobs)
    }

    /// The mixed-workload defaults at this scale (Table 2 bold values).
    pub fn workload(&self) -> MixedWorkload {
        MixedWorkload {
            duration: self.scale.duration(),
            drain: self.scale.drain(),
            ..MixedWorkload::paper_default()
        }
    }

    /// Prints the record and writes `results/<id>.json`.
    pub fn finish(&self, record: &ExperimentRecord) {
        print!("{}", record.to_table());
        if let Err(e) = std::fs::create_dir_all(&self.out_dir) {
            eprintln!("warning: cannot create {}: {e}", self.out_dir.display());
            return;
        }
        let path = self.out_dir.join(format!("{}.json", record.id));
        match std::fs::write(&path, record.to_json()) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
        // An eyeball-comparison chart next to the raw series. Milliseconds
        // span orders of magnitude across sweeps, so use a log axis.
        let chart = dibs_stats::LineChart::from_record(record, "value", true);
        let svg_path = self.out_dir.join(format!("{}.svg", record.id));
        if let Err(e) = std::fs::write(&svg_path, chart.render()) {
            eprintln!("warning: cannot write {}: {e}", svg_path.display());
        }
        // Cumulative simulation throughput for this process so far;
        // `repro_all` surfaces the final line per figure binary.
        if let Some(line) = timing::meter_summary() {
            println!("{line}");
        }
    }
}

/// Runs `f` over `items` through the deterministic sweep executor
/// ([`dibs_harness::Executor::from_env`]); preserves input order.
///
/// Prefer [`Harness::executor`] in new code so `--jobs` is honored; this
/// free function exists for binaries that have no `Harness` in scope and
/// obeys `DIBS_JOBS` only.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    Executor::from_env().map(items, f)
}

/// Extracts the standard pair of paper metrics from a finished run:
/// `(qct_p99_ms, bg_short_fct_p99_ms)`.
pub fn headline_metrics(results: &mut RunResults) -> (f64, f64) {
    timing::note_run(results);
    let qct = results.qct_p99_ms().unwrap_or(f64::NAN);
    let fct = results.bg_fct_p99_ms().unwrap_or(f64::NAN);
    (qct, fct)
}

/// Builds a `SeriesPoint` from baseline and DIBS runs of the same workload.
pub fn baseline_vs_dibs_point(x: f64, base: &mut RunResults, dibs: &mut RunResults) -> SeriesPoint {
    let (qb, fb) = headline_metrics(base);
    let (qd, fd) = headline_metrics(dibs);
    SeriesPoint::at(x)
        .with("qct_p99_ms_dctcp", qb)
        .with("qct_p99_ms_dibs", qd)
        .with("bg_fct_p99_ms_dctcp", fb)
        .with("bg_fct_p99_ms_dibs", fd)
        .with("drops_dctcp", base.counters.total_drops() as f64)
        .with("drops_dibs", dibs.counters.total_drops() as f64)
        .with("detoured_frac_dibs", dibs.counters.detoured_fraction())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect::<Vec<i32>>(), |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn scale_windows_are_ordered() {
        assert!(Scale::Quick.duration() < Scale::Default.duration());
        assert!(Scale::Default.duration() < Scale::Full.duration());
        assert!(Scale::Quick.heavy_duration() < Scale::Full.heavy_duration());
    }
}

#[cfg(test)]
mod finish_tests {
    use super::*;
    use dibs_stats::{ExperimentRecord, SeriesPoint};

    #[test]
    fn finish_writes_json_and_svg() {
        let dir = std::env::temp_dir().join(format!("dibs-bench-test-{}", std::process::id()));
        let h = Harness {
            scale: Scale::Quick,
            out_dir: dir.clone(),
            jobs: 1,
            master_seed: DEFAULT_MASTER_SEED,
            trace: None,
        };
        let mut rec = ExperimentRecord::new("unit_test_record", "t", "x");
        rec.push(SeriesPoint::at(1.0).with("m", 2.0));
        h.finish(&rec);
        let json = dir.join("unit_test_record.json");
        let svg = dir.join("unit_test_record.svg");
        assert!(json.exists());
        assert!(svg.exists());
        let svg_text = std::fs::read_to_string(&svg).unwrap();
        assert!(svg_text.starts_with("<svg"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
