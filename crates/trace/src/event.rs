//! The compact binary trace-event model: [`TraceKind`], [`TraceEvent`],
//! and the [`KindMask`] per-kind filter.

use std::fmt;

/// What happened at one instant of simulated time.
///
/// Kinds are ordered roughly along a data packet's life: emitted by a
/// host, queued and dequeued (possibly detoured, marked, or dropped) at
/// switches, and finally delivered. The discriminant is stable and part
/// of the text-dump format.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceKind {
    /// A host emitted a fresh data segment.
    Send = 0,
    /// A host re-emitted a previously sent segment.
    Retransmit = 1,
    /// A host emitted a cumulative acknowledgment.
    Ack = 2,
    /// A sender's retransmission timer fired (flow-level; `packet` is 0).
    Timeout = 3,
    /// A switch queued a packet on its desired output port.
    Enqueue = 4,
    /// A switch handed a packet to the wire.
    Dequeue = 5,
    /// A switch CE-marked a packet at enqueue time (DCTCP).
    EcnMark = 6,
    /// A switch detoured a packet to an alternate port (DIBS).
    Detour = 7,
    /// A packet was dropped (full buffer, pFabric displacement, detour
    /// budget exhausted, or host-NIC overflow).
    Drop = 8,
    /// A packet's TTL reached zero at a switch.
    TtlExpire = 9,
    /// A packet reached its destination host.
    Deliver = 10,
}

impl TraceKind {
    /// Every kind, in discriminant order.
    pub const ALL: [TraceKind; 11] = [
        TraceKind::Send,
        TraceKind::Retransmit,
        TraceKind::Ack,
        TraceKind::Timeout,
        TraceKind::Enqueue,
        TraceKind::Dequeue,
        TraceKind::EcnMark,
        TraceKind::Detour,
        TraceKind::Drop,
        TraceKind::TtlExpire,
        TraceKind::Deliver,
    ];

    /// The canonical kebab-case name used by spec strings and dumps.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Send => "send",
            TraceKind::Retransmit => "retransmit",
            TraceKind::Ack => "ack",
            TraceKind::Timeout => "timeout",
            TraceKind::Enqueue => "enqueue",
            TraceKind::Dequeue => "dequeue",
            TraceKind::EcnMark => "ecn-mark",
            TraceKind::Detour => "detour",
            TraceKind::Drop => "drop",
            TraceKind::TtlExpire => "ttl-expire",
            TraceKind::Deliver => "deliver",
        }
    }

    /// Parses a kind name; accepts the canonical names plus a few
    /// obvious aliases (`ecn`, `rtx`, `ttl`).
    pub fn from_name(name: &str) -> Option<TraceKind> {
        Some(match name {
            "send" => TraceKind::Send,
            "retransmit" | "rtx" => TraceKind::Retransmit,
            "ack" => TraceKind::Ack,
            "timeout" | "rto" => TraceKind::Timeout,
            "enqueue" => TraceKind::Enqueue,
            "dequeue" => TraceKind::Dequeue,
            "ecn-mark" | "ecn" | "mark" => TraceKind::EcnMark,
            "detour" => TraceKind::Detour,
            "drop" => TraceKind::Drop,
            "ttl-expire" | "ttl" => TraceKind::TtlExpire,
            "deliver" => TraceKind::Deliver,
            _ => return None,
        })
    }

    /// The kind's bit inside a [`KindMask`].
    #[inline]
    pub fn bit(self) -> u16 {
        1 << (self as u8)
    }
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of [`TraceKind`]s, stored as one bit per kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindMask(pub u16);

impl KindMask {
    /// The empty set.
    pub const NONE: KindMask = KindMask(0);
    /// Every kind.
    pub const ALL: KindMask = KindMask((1 << 11) - 1);

    /// Builds a mask from an explicit kind list.
    pub fn of(kinds: &[TraceKind]) -> KindMask {
        let mut m = KindMask::NONE;
        for &k in kinds {
            m.insert(k);
        }
        m
    }

    /// Adds one kind to the set.
    pub fn insert(&mut self, kind: TraceKind) {
        self.0 |= kind.bit();
    }

    /// Whether the set contains `kind`.
    #[inline]
    pub fn wants(self, kind: TraceKind) -> bool {
        self.0 & kind.bit() != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Parses a comma-separated kind list (e.g. `"detour,drop,ecn-mark"`).
    pub fn parse(list: &str) -> Result<KindMask, String> {
        let mut m = KindMask::NONE;
        for tok in list.split(',') {
            let tok = tok.trim();
            if tok.is_empty() {
                continue;
            }
            match TraceKind::from_name(tok) {
                Some(k) => m.insert(k),
                None => return Err(format!("unknown trace kind `{tok}`")),
            }
        }
        if m.is_empty() {
            return Err(format!("empty trace-kind list `{list}`"));
        }
        Ok(m)
    }
}

impl fmt::Display for KindMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == KindMask::ALL {
            return f.write_str("all");
        }
        if self.is_empty() {
            return f.write_str("none");
        }
        let mut first = true;
        for k in TraceKind::ALL {
            if self.wants(k) {
                if !first {
                    f.write_str(",")?;
                }
                f.write_str(k.name())?;
                first = false;
            }
        }
        Ok(())
    }
}

/// One recorded simulation event, 32 bytes, `Copy`.
///
/// Field meanings vary slightly by kind: `node` is a topology node id for
/// switch/host events (`u32::MAX` when unknown); `port` is the output
/// port for queue transitions and 0 for host events; `qlen` is the
/// port-queue depth *after* the transition for queue events, the number
/// of packets (re)emitted for `Timeout`, and 0 otherwise; `detours` is
/// the packet's detour count at the instant of the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time in nanoseconds.
    pub t_ns: u64,
    /// Packet id (0 for flow-level events such as `Timeout`).
    pub packet: u64,
    /// Flow id.
    pub flow: u32,
    /// Topology node id where the event happened.
    pub node: u32,
    /// Output port (queue transitions) or 0.
    pub port: u16,
    /// Queue depth after the transition, where applicable.
    pub qlen: u16,
    /// The packet's detour count at this instant.
    pub detours: u16,
    /// What happened.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Renders the event as one stable text line (the dump format).
    pub fn write_line(&self, out: &mut String) {
        use fmt::Write;
        let _ = writeln!(
            out,
            "ev {} {} node {} port {} pkt {} flow {} qlen {} detours {}",
            self.t_ns,
            self.kind,
            self.node,
            self.port,
            self.packet,
            self.flow,
            self.qlen,
            self.detours
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for k in TraceKind::ALL {
            assert_eq!(TraceKind::from_name(k.name()), Some(k));
        }
        assert_eq!(TraceKind::from_name("ecn"), Some(TraceKind::EcnMark));
        assert_eq!(TraceKind::from_name("bogus"), None);
    }

    #[test]
    fn mask_parse_and_display() {
        let m = KindMask::parse("detour, drop").unwrap();
        assert!(m.wants(TraceKind::Detour));
        assert!(m.wants(TraceKind::Drop));
        assert!(!m.wants(TraceKind::Enqueue));
        assert_eq!(m.to_string(), "detour,drop");
        assert_eq!(KindMask::ALL.to_string(), "all");
        assert!(KindMask::parse("nope").is_err());
        assert!(KindMask::parse("").is_err());
    }

    #[test]
    fn all_mask_contains_every_kind() {
        for k in TraceKind::ALL {
            assert!(KindMask::ALL.wants(k));
        }
    }

    #[test]
    fn event_line_is_stable() {
        let ev = TraceEvent {
            t_ns: 1500,
            packet: 7,
            flow: 3,
            node: 20,
            port: 2,
            qlen: 9,
            detours: 1,
            kind: TraceKind::Detour,
        };
        let mut s = String::new();
        ev.write_line(&mut s);
        assert_eq!(
            s,
            "ev 1500 detour node 20 port 2 pkt 7 flow 3 qlen 9 detours 1\n"
        );
    }
}
