//! The [`TraceSink`] trait instrumented code writes through, and the
//! no-op [`NullSink`] the default build uses.

use crate::event::{TraceEvent, TraceKind};

/// Receives trace events from instrumented simulation code.
///
/// Emission sites follow the two-step protocol
///
/// ```text
/// if sink.wants(kind) { sink.record(event); }
/// ```
///
/// so that when tracing is disabled (or the kind is filtered out) the
/// event is never even constructed. Implementations must be passive:
/// never draw randomness, never schedule simulation events, never block —
/// this is what keeps tracing non-perturbing.
pub trait TraceSink {
    /// Cheap pre-filter: would an event of this kind be kept?
    fn wants(&self, kind: TraceKind) -> bool;

    /// Records one event. Only called after `wants` returned `true` for
    /// the event's kind (callers may rely on this to skip work).
    fn record(&mut self, ev: TraceEvent);
}

/// The disabled sink: `wants` is a constant `false`, so every emission
/// site reduces to one predictable branch and `record` is unreachable in
/// practice (and a no-op regardless).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn wants(&self, _kind: TraceKind) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _ev: TraceEvent) {}
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    #[inline]
    fn wants(&self, kind: TraceKind) -> bool {
        (**self).wants(kind)
    }

    #[inline]
    fn record(&mut self, ev: TraceEvent) {
        (**self).record(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_wants_nothing() {
        let s = NullSink;
        for k in TraceKind::ALL {
            assert!(!s.wants(k));
        }
    }

    #[test]
    fn mut_ref_delegates() {
        struct Counting(u32);
        impl TraceSink for Counting {
            fn wants(&self, _k: TraceKind) -> bool {
                true
            }
            fn record(&mut self, _ev: TraceEvent) {
                self.0 += 1;
            }
        }
        fn drive<S: TraceSink>(sink: &mut S) {
            if sink.wants(TraceKind::Send) {
                sink.record(TraceEvent {
                    t_ns: 0,
                    packet: 0,
                    flow: 0,
                    node: 0,
                    port: 0,
                    qlen: 0,
                    detours: 0,
                    kind: TraceKind::Send,
                });
            }
        }
        let mut c = Counting(0);
        let mut r = &mut c;
        // `S` is instantiated at `&mut Counting`, exercising the blanket impl.
        drive(&mut r);
        assert_eq!(c.0, 1);
    }
}
