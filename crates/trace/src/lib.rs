#![warn(missing_docs)]

//! Deterministic per-packet event tracing and flight recording.
//!
//! Every figure in the DIBS paper is ultimately a statement about what
//! individual packets did: where they were detoured (Fig. 2), where they
//! were dropped or marked (Figs. 7–14), how long a queue stayed hot. This
//! crate records those facts as a stream of compact [`TraceEvent`]s so
//! post-hoc questions ("where did this packet loop?", "which port was hot
//! at t = 4 ms?") become queries instead of new instrumentation.
//!
//! # Design rules
//!
//! * **Zero overhead when disabled.** Instrumented code guards every
//!   emission with [`TraceSink::wants`]; the disabled sink answers with a
//!   constant `false`, so the default build pays one predictable branch
//!   per potential event and never constructs one.
//! * **Provably non-perturbing.** Sinks never draw from simulation RNGs,
//!   never schedule events, and trace output is structurally excluded
//!   from `RunDigest`. `tests/trace_nonperturbation.rs` pins this: golden
//!   digests are byte-identical with tracing fully on and fully off.
//! * **Bounded by default.** The [`FlightRecorder`] keeps only the last
//!   N events in a fixed ring, so "always on" flight recording is cheap;
//!   full-fidelity capture ([`TraceBuffer`]) is opt-in via `--trace all`.
//!
//! # Spec grammar
//!
//! The `--trace <spec>` / `DIBS_TRACE` argument is parsed by
//! [`TraceSpec::parse`]:
//!
//! ```text
//! off | none                     tracing disabled
//! all                            full capture, every event kind
//! detour,drop,ecn-mark           full capture, listed kinds only
//! flight                        flight recorder, default capacity (4096)
//! flight:65536                  flight recorder, explicit capacity
//! flight:1024:enqueue,dequeue   flight recorder, capacity + kind filter
//! ```

pub mod event;
pub mod export;
pub mod query;
pub mod recorder;
pub mod sink;

pub use event::{KindMask, TraceEvent, TraceKind};
pub use export::{is_chrome_trace, is_queue_transition};
pub use query::{
    detour_loop_packets, flow_packets, packet_hops, packet_lifecycle, per_flow_hops, Hop,
    OccupancyTracker,
};
pub use recorder::{FlightRecorder, TraceBuffer, TraceMode, TraceReport, TraceSpec, Tracer};
pub use sink::{NullSink, TraceSink};
