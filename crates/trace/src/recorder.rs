//! Concrete sinks ([`FlightRecorder`], [`TraceBuffer`]), the runtime
//! [`Tracer`] switch, spec parsing, and the final [`TraceReport`].

use crate::event::{KindMask, TraceEvent, TraceKind};
use crate::sink::TraceSink;

/// Default flight-recorder capacity (events) when the spec omits one.
pub const DEFAULT_FLIGHT_CAP: usize = 4096;

/// A fixed-capacity ring buffer that always holds the *last* N matching
/// events — the black-box recorder. Recording is O(1) with no
/// allocation after the first lap, so it is safe to leave on for long
/// runs.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Next slot to overwrite once the ring is full.
    next: usize,
    observed: u64,
    mask: KindMask,
}

impl FlightRecorder {
    /// Creates a recorder keeping the last `cap` events matching `mask`.
    /// A zero capacity is clamped to 1.
    pub fn new(cap: usize, mask: KindMask) -> FlightRecorder {
        let cap = cap.max(1);
        FlightRecorder {
            buf: Vec::with_capacity(cap.min(DEFAULT_FLIGHT_CAP)),
            cap,
            next: 0,
            observed: 0,
            mask,
        }
    }

    /// Total events offered to the recorder (kept or overwritten).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// The retained window, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        if self.buf.len() == self.cap {
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
        } else {
            out.extend_from_slice(&self.buf);
        }
        out
    }
}

impl TraceSink for FlightRecorder {
    #[inline]
    fn wants(&self, kind: TraceKind) -> bool {
        self.mask.wants(kind)
    }

    #[inline]
    fn record(&mut self, ev: TraceEvent) {
        self.observed += 1;
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % self.cap;
        }
    }
}

/// An unbounded capture buffer for full-fidelity tracing (`--trace all`).
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
    mask: KindMask,
}

impl TraceBuffer {
    /// Creates a buffer capturing every event matching `mask`.
    pub fn new(mask: KindMask) -> TraceBuffer {
        TraceBuffer {
            events: Vec::new(),
            mask,
        }
    }

    /// The captured events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }
}

impl TraceSink for TraceBuffer {
    #[inline]
    fn wants(&self, kind: TraceKind) -> bool {
        self.mask.wants(kind)
    }

    #[inline]
    fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }
}

/// Which sink a [`TraceSpec`] selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Tracing disabled.
    Off,
    /// Last-N ring buffer.
    Flight,
    /// Unbounded full capture.
    Full,
}

impl TraceMode {
    /// Stable lowercase label used in dumps and reports.
    pub fn label(self) -> &'static str {
        match self {
            TraceMode::Off => "off",
            TraceMode::Flight => "flight",
            TraceMode::Full => "full",
        }
    }
}

/// A parsed `--trace` / `DIBS_TRACE` specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpec {
    /// Which sink to install.
    pub mode: TraceMode,
    /// Ring capacity, used when `mode` is [`TraceMode::Flight`].
    pub flight_cap: usize,
    /// Which event kinds to keep.
    pub kinds: KindMask,
}

impl TraceSpec {
    /// The disabled spec.
    pub fn off() -> TraceSpec {
        TraceSpec {
            mode: TraceMode::Off,
            flight_cap: DEFAULT_FLIGHT_CAP,
            kinds: KindMask::NONE,
        }
    }

    /// Parses a spec string; see the crate docs for the grammar.
    pub fn parse(spec: &str) -> Result<TraceSpec, String> {
        let spec = spec.trim();
        match spec {
            "" | "off" | "none" => return Ok(TraceSpec::off()),
            "all" => {
                return Ok(TraceSpec {
                    mode: TraceMode::Full,
                    flight_cap: DEFAULT_FLIGHT_CAP,
                    kinds: KindMask::ALL,
                })
            }
            _ => {}
        }
        if let Some(rest) = spec.strip_prefix("flight") {
            let mut cap = DEFAULT_FLIGHT_CAP;
            let mut kinds = KindMask::ALL;
            for tok in rest.split(':') {
                let tok = tok.trim();
                if tok.is_empty() {
                    continue;
                }
                if let Ok(n) = tok.parse::<usize>() {
                    if n == 0 {
                        return Err("flight capacity must be > 0".to_string());
                    }
                    cap = n;
                } else {
                    kinds = KindMask::parse(tok)?;
                }
            }
            return Ok(TraceSpec {
                mode: TraceMode::Flight,
                flight_cap: cap,
                kinds,
            });
        }
        // Bare kind list: full capture of exactly those kinds.
        Ok(TraceSpec {
            mode: TraceMode::Full,
            flight_cap: DEFAULT_FLIGHT_CAP,
            kinds: KindMask::parse(spec)?,
        })
    }
}

impl std::str::FromStr for TraceSpec {
    type Err = String;
    fn from_str(s: &str) -> Result<TraceSpec, String> {
        TraceSpec::parse(s)
    }
}

/// The runtime tracing switch a simulation carries.
///
/// Stored as a concrete enum (not a generic parameter) so enabling a
/// trace never changes the simulation's type; the `Off` arm makes
/// [`TraceSink::wants`] a constant `false`, preserving the
/// zero-overhead-when-disabled property.
#[derive(Debug, Clone)]
pub enum Tracer {
    /// Tracing disabled (the default).
    Off,
    /// Last-N flight recording.
    Flight(FlightRecorder),
    /// Full capture.
    Full(TraceBuffer),
}

impl Tracer {
    /// The disabled tracer.
    pub fn off() -> Tracer {
        Tracer::Off
    }

    /// Builds the tracer a spec asks for.
    pub fn from_spec(spec: &TraceSpec) -> Tracer {
        match spec.mode {
            TraceMode::Off => Tracer::Off,
            TraceMode::Flight => Tracer::Flight(FlightRecorder::new(spec.flight_cap, spec.kinds)),
            TraceMode::Full => Tracer::Full(TraceBuffer::new(spec.kinds)),
        }
    }

    /// Whether any events can be recorded.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, Tracer::Off)
    }

    /// Consumes the tracer into a report; `None` when tracing was off.
    /// `queue_high_watermark` is the engine's peak pending-event count,
    /// carried alongside the events for the text dump.
    pub fn into_report(self, queue_high_watermark: u64) -> Option<TraceReport> {
        match self {
            Tracer::Off => None,
            Tracer::Flight(rec) => {
                let observed = rec.observed();
                let events = rec.events();
                let dropped =
                    observed.saturating_sub(u64::try_from(events.len()).unwrap_or(u64::MAX));
                Some(TraceReport {
                    mode: TraceMode::Flight,
                    kinds: rec.mask,
                    events,
                    observed,
                    dropped,
                    queue_high_watermark,
                })
            }
            Tracer::Full(buf) => {
                let observed = u64::try_from(buf.events.len()).unwrap_or(u64::MAX);
                Some(TraceReport {
                    mode: TraceMode::Full,
                    kinds: buf.mask,
                    events: buf.events,
                    observed,
                    dropped: 0,
                    queue_high_watermark,
                })
            }
        }
    }
}

impl TraceSink for Tracer {
    #[inline]
    fn wants(&self, kind: TraceKind) -> bool {
        match self {
            Tracer::Off => false,
            Tracer::Flight(r) => r.wants(kind),
            Tracer::Full(b) => b.wants(kind),
        }
    }

    #[inline]
    fn record(&mut self, ev: TraceEvent) {
        match self {
            Tracer::Off => {}
            Tracer::Flight(r) => r.record(ev),
            Tracer::Full(b) => b.record(ev),
        }
    }
}

/// The finished trace attached to a run's results.
///
/// Deliberately *not* part of `RunDigest`: digests must be identical
/// whether or not a run was traced.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// How the events were captured.
    pub mode: TraceMode,
    /// The kind filter that was active.
    pub kinds: KindMask,
    /// Captured events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Total events offered to the sink (≥ `events.len()`).
    pub observed: u64,
    /// Events the flight ring overwrote (`observed - events.len()`).
    pub dropped: u64,
    /// Peak simultaneously-pending event count in the engine queue.
    pub queue_high_watermark: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            t_ns: t,
            packet: t,
            flow: 0,
            node: 0,
            port: 0,
            qlen: 0,
            detours: 0,
            kind,
        }
    }

    #[test]
    fn flight_ring_keeps_last_n() {
        let mut r = FlightRecorder::new(3, KindMask::ALL);
        for t in 0..10 {
            r.record(ev(t, TraceKind::Enqueue));
        }
        assert_eq!(r.observed(), 10);
        let kept: Vec<u64> = r.events().iter().map(|e| e.t_ns).collect();
        assert_eq!(kept, vec![7, 8, 9]);
    }

    #[test]
    fn flight_ring_under_capacity_keeps_all_in_order() {
        let mut r = FlightRecorder::new(8, KindMask::ALL);
        for t in 0..3 {
            r.record(ev(t, TraceKind::Send));
        }
        let kept: Vec<u64> = r.events().iter().map(|e| e.t_ns).collect();
        assert_eq!(kept, vec![0, 1, 2]);
    }

    #[test]
    fn spec_grammar() {
        assert_eq!(TraceSpec::parse("off").unwrap().mode, TraceMode::Off);
        assert_eq!(TraceSpec::parse("none").unwrap().mode, TraceMode::Off);
        let all = TraceSpec::parse("all").unwrap();
        assert_eq!(all.mode, TraceMode::Full);
        assert_eq!(all.kinds, KindMask::ALL);
        let f = TraceSpec::parse("flight:128:detour,drop").unwrap();
        assert_eq!(f.mode, TraceMode::Flight);
        assert_eq!(f.flight_cap, 128);
        assert!(f.kinds.wants(TraceKind::Detour));
        assert!(!f.kinds.wants(TraceKind::Send));
        let k = TraceSpec::parse("enqueue,dequeue").unwrap();
        assert_eq!(k.mode, TraceMode::Full);
        assert!(k.kinds.wants(TraceKind::Dequeue));
        assert!(TraceSpec::parse("flight:0").is_err());
        assert!(TraceSpec::parse("wibble").is_err());
    }

    #[test]
    fn tracer_off_wants_nothing_and_reports_none() {
        let t = Tracer::off();
        assert!(!t.is_enabled());
        for k in TraceKind::ALL {
            assert!(!t.wants(k));
        }
        assert!(t.into_report(0).is_none());
    }

    #[test]
    fn tracer_filters_by_kind() {
        let spec = TraceSpec::parse("detour").unwrap();
        let mut t = Tracer::from_spec(&spec);
        assert!(t.wants(TraceKind::Detour));
        assert!(!t.wants(TraceKind::Enqueue));
        t.record(ev(5, TraceKind::Detour));
        let rep = t.into_report(42).unwrap();
        assert_eq!(rep.events.len(), 1);
        assert_eq!(rep.observed, 1);
        assert_eq!(rep.dropped, 0);
        assert_eq!(rep.queue_high_watermark, 42);
    }

    #[test]
    fn flight_report_counts_overwrites() {
        let spec = TraceSpec::parse("flight:2").unwrap();
        let mut t = Tracer::from_spec(&spec);
        for i in 0..5 {
            t.record(ev(i, TraceKind::Drop));
        }
        let rep = t.into_report(0).unwrap();
        assert_eq!(rep.mode, TraceMode::Flight);
        assert_eq!(rep.events.len(), 2);
        assert_eq!(rep.observed, 5);
        assert_eq!(rep.dropped, 3);
    }
}
