//! Exporters: Chrome `chrome://tracing` JSON, the digest-style text
//! dump, and the per-switch occupancy timeseries bridge to `dibs-stats`.

use crate::event::TraceKind;
use crate::query::OccupancyTracker;
use crate::recorder::TraceReport;
use dibs_engine::rng::hash_bytes;
use dibs_engine::time::SimTime;
use dibs_json::{Json, ObjBuilder};
use dibs_stats::timeseries::TimeSeries;
use std::collections::BTreeMap;

impl TraceReport {
    /// Renders the report in Chrome's trace-event JSON format, viewable
    /// at `chrome://tracing` (or <https://ui.perfetto.dev>). Each event
    /// becomes a thread-scoped instant event with `pid` = node id and
    /// `tid` = port, so per-switch activity lines up as tracks.
    pub fn chrome_trace(&self) -> Json {
        let mut events = Vec::with_capacity(self.events.len());
        for ev in &self.events {
            let args = ObjBuilder::new()
                .field("packet", ev.packet)
                .field("flow", u64::from(ev.flow))
                .field("qlen", u64::from(ev.qlen))
                .field("detours", u64::from(ev.detours))
                .build();
            events.push(
                ObjBuilder::new()
                    .field("name", ev.kind.name())
                    .field("cat", "dibs")
                    .field("ph", "i")
                    .field("s", "t")
                    // Chrome timestamps are microseconds; keep sub-µs
                    // resolution as a fraction.
                    .field("ts", ev.t_ns as f64 / 1000.0)
                    .field("pid", u64::from(ev.node))
                    .field("tid", u64::from(ev.port))
                    .field("args", args)
                    .build(),
            );
        }
        ObjBuilder::new()
            .field("traceEvents", Json::Arr(events))
            .field("displayTimeUnit", "ms")
            .field(
                "otherData",
                ObjBuilder::new()
                    .field("mode", self.mode.label())
                    .field("kinds", self.kinds.to_string())
                    .field("observed", self.observed)
                    .field("dropped", self.dropped)
                    .field("queue_high_watermark", self.queue_high_watermark)
                    .build(),
            )
            .build()
    }

    /// Renders the report as a stable line-oriented text dump: one
    /// header line followed by one `ev …` line per event. The format is
    /// deliberately digest-like so dumps can be fingerprinted and
    /// diffed the same way `RunDigest` transcripts are.
    pub fn text_dump(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 64);
        use std::fmt::Write;
        let _ = writeln!(
            out,
            "trace mode {} kinds {} events {} observed {} dropped {} queue_hwm {}",
            self.mode.label(),
            self.kinds,
            self.events.len(),
            self.observed,
            self.dropped,
            self.queue_high_watermark
        );
        for ev in &self.events {
            ev.write_line(&mut out);
        }
        out
    }

    /// A 64-bit fingerprint of [`TraceReport::text_dump`], using the
    /// same hash as `RunDigest::fingerprint`.
    pub fn fingerprint(&self) -> u64 {
        hash_bytes(self.text_dump().as_bytes())
    }

    /// Reconstructs per-switch total buffer occupancy over time from
    /// queue-transition events, one [`TimeSeries`] per node (keyed by
    /// node id). Requires `enqueue`, `dequeue`, and `detour` kinds to
    /// have been captured; nodes with no queue activity are absent.
    pub fn occupancy_series(&self) -> BTreeMap<u32, TimeSeries> {
        let mut tracker = OccupancyTracker::new();
        let mut series: BTreeMap<u32, TimeSeries> = BTreeMap::new();
        for ev in &self.events {
            if let Some((node, total)) = tracker.apply(ev) {
                // Depths are small integers; f64 represents them exactly.
                #[allow(clippy::cast_precision_loss)]
                series
                    .entry(node)
                    .or_default()
                    .push(SimTime::from_nanos(ev.t_ns), total as f64);
            }
        }
        series
    }
}

/// Returns `true` when a JSON value is structurally a Chrome trace:
/// an object with a `traceEvents` array whose entries carry the
/// mandatory `name`/`ph`/`ts` fields.
pub fn is_chrome_trace(v: &Json) -> bool {
    let Some(events) = v.get("traceEvents").and_then(Json::as_array) else {
        return false;
    };
    events.iter().all(|e| {
        e.get("name").and_then(Json::as_str).is_some()
            && e.get("ph").and_then(Json::as_str).is_some()
            && e.get("ts").and_then(Json::as_f64).is_some()
    })
}

/// Kinds that change a port queue's depth (used by occupancy folding).
pub fn is_queue_transition(kind: TraceKind) -> bool {
    matches!(
        kind,
        TraceKind::Enqueue | TraceKind::Dequeue | TraceKind::Detour
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{KindMask, TraceEvent};
    use crate::recorder::TraceMode;

    fn report(events: Vec<TraceEvent>) -> TraceReport {
        let observed = events.len() as u64;
        TraceReport {
            mode: TraceMode::Full,
            kinds: KindMask::ALL,
            events,
            observed,
            dropped: 0,
            queue_high_watermark: 17,
        }
    }

    fn qev(t: u64, node: u32, port: u16, qlen: u16, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            t_ns: t,
            packet: t,
            flow: 1,
            node,
            port,
            qlen,
            detours: 0,
            kind,
        }
    }

    #[test]
    fn chrome_trace_round_trips_through_parser() {
        let rep = report(vec![
            qev(1000, 20, 1, 1, TraceKind::Enqueue),
            qev(2500, 20, 1, 0, TraceKind::Dequeue),
        ]);
        let json = rep.chrome_trace();
        let rendered = json.render_pretty();
        let parsed = Json::parse(&rendered).expect("chrome trace must be valid JSON");
        assert!(is_chrome_trace(&parsed));
        let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(events[0].get("pid").unwrap().as_u64(), Some(20));
    }

    #[test]
    fn text_dump_fingerprint_is_stable_and_content_sensitive() {
        let a = report(vec![qev(1, 2, 3, 4, TraceKind::Enqueue)]);
        let b = report(vec![qev(1, 2, 3, 4, TraceKind::Enqueue)]);
        let c = report(vec![qev(1, 2, 3, 5, TraceKind::Enqueue)]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert!(a
            .text_dump()
            .starts_with("trace mode full kinds all events 1"));
    }

    #[test]
    fn occupancy_series_folds_queue_transitions() {
        let rep = report(vec![
            qev(10, 7, 0, 1, TraceKind::Enqueue),
            qev(20, 7, 1, 1, TraceKind::Detour),
            qev(30, 7, 0, 0, TraceKind::Dequeue),
            qev(40, 9, 0, 1, TraceKind::Enqueue),
            // Non-queue kinds are ignored.
            qev(50, 7, 0, 0, TraceKind::Deliver),
        ]);
        let series = rep.occupancy_series();
        assert_eq!(series.len(), 2);
        let s7 = &series[&7];
        // Totals: 1 (enq p0), 2 (detour p1), 1 (deq p0).
        assert_eq!(s7.len(), 3);
        assert_eq!(s7.max_value(), Some(2.0));
        assert_eq!(series[&9].len(), 1);
    }
}
