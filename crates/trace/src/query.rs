//! Post-hoc queries over a captured event stream: packet lifecycles,
//! per-flow hop lists, detour-loop detection, occupancy folding.
//!
//! All helpers take a plain `&[TraceEvent]` slice (as held by a
//! `TraceReport`), assume it is in emission order — which equals
//! non-decreasing `t_ns` order, since sinks record synchronously — and
//! use only ordered containers so results are deterministic.

use crate::event::{TraceEvent, TraceKind};
use crate::export::is_queue_transition;
use std::collections::{BTreeMap, BTreeSet};

/// One stop on a packet's path through the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Simulated time of the queue admission, nanoseconds.
    pub t_ns: u64,
    /// Topology node id of the switch.
    pub node: u32,
    /// Output port the packet was queued on.
    pub port: u16,
    /// Whether this hop was a DIBS detour rather than the desired port.
    pub detour: bool,
}

/// Every event mentioning `packet`, in time order. The full lifecycle:
/// send, per-switch enqueue/detour/mark/dequeue, and the terminal
/// deliver/drop/ttl-expire.
pub fn packet_lifecycle(events: &[TraceEvent], packet: u64) -> Vec<TraceEvent> {
    events
        .iter()
        .filter(|e| e.packet == packet)
        .copied()
        .collect()
}

/// The packet's hop sequence: one [`Hop`] per switch queue admission
/// (`Enqueue` or `Detour` event), in path order.
pub fn packet_hops(events: &[TraceEvent], packet: u64) -> Vec<Hop> {
    events
        .iter()
        .filter(|e| e.packet == packet)
        .filter_map(|e| match e.kind {
            TraceKind::Enqueue | TraceKind::Detour => Some(Hop {
                t_ns: e.t_ns,
                node: e.node,
                port: e.port,
                detour: e.kind == TraceKind::Detour,
            }),
            _ => None,
        })
        .collect()
}

/// Distinct packet ids observed for `flow`, in first-appearance order.
pub fn flow_packets(events: &[TraceEvent], flow: u32) -> Vec<u64> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for e in events.iter().filter(|e| e.flow == flow) {
        if e.packet != 0 && seen.insert(e.packet) {
            out.push(e.packet);
        }
    }
    out
}

/// Per-packet hop lists for every packet of `flow`, keyed by packet id.
pub fn per_flow_hops(events: &[TraceEvent], flow: u32) -> BTreeMap<u64, Vec<Hop>> {
    let mut out: BTreeMap<u64, Vec<Hop>> = BTreeMap::new();
    for e in events.iter().filter(|e| e.flow == flow) {
        let detour = match e.kind {
            TraceKind::Enqueue => false,
            TraceKind::Detour => true,
            _ => continue,
        };
        out.entry(e.packet).or_default().push(Hop {
            t_ns: e.t_ns,
            node: e.node,
            port: e.port,
            detour,
        });
    }
    out
}

/// Packets that revisited a switch they had already been queued at,
/// with at least one detour in between — the detour-loop signature the
/// paper's TTL bound exists to break (§4.3). Returns packet ids in
/// ascending order.
pub fn detour_loop_packets(events: &[TraceEvent]) -> Vec<u64> {
    let mut visited: BTreeMap<u64, BTreeSet<u32>> = BTreeMap::new();
    let mut detoured: BTreeSet<u64> = BTreeSet::new();
    let mut looped: BTreeSet<u64> = BTreeSet::new();
    for e in events {
        match e.kind {
            TraceKind::Detour => {
                detoured.insert(e.packet);
            }
            TraceKind::Enqueue => {}
            _ => continue,
        }
        let nodes = visited.entry(e.packet).or_default();
        if !nodes.insert(e.node) && detoured.contains(&e.packet) {
            looped.insert(e.packet);
        }
    }
    looped.into_iter().collect()
}

/// Folds queue-transition events into per-switch total occupancy.
///
/// Each `Enqueue`/`Detour`/`Dequeue` event carries the *per-port* depth
/// after the transition; the tracker integrates those into a running
/// per-node total (the quantity DBA bounds). Feed events in order via
/// [`OccupancyTracker::apply`]; it returns the node's updated total on
/// every queue transition.
#[derive(Debug, Default)]
pub struct OccupancyTracker {
    per_port: BTreeMap<(u32, u16), u32>,
    per_node: BTreeMap<u32, u32>,
}

impl OccupancyTracker {
    /// Creates an empty tracker.
    pub fn new() -> OccupancyTracker {
        OccupancyTracker::default()
    }

    /// Applies one event; returns `(node, new_total)` when the event is
    /// a queue transition, `None` otherwise.
    pub fn apply(&mut self, ev: &TraceEvent) -> Option<(u32, u32)> {
        if !is_queue_transition(ev.kind) {
            return None;
        }
        let key = (ev.node, ev.port);
        let new = u32::from(ev.qlen);
        let old = self.per_port.insert(key, new).unwrap_or(0);
        let total = self.per_node.entry(ev.node).or_insert(0);
        *total = total.wrapping_add(new).wrapping_sub(old);
        Some((ev.node, *total))
    }

    /// The current total depth at `node` (0 if never seen).
    pub fn total(&self, node: u32) -> u32 {
        self.per_node.get(&node).copied().unwrap_or(0)
    }

    /// Iterates current `(node, total)` pairs in node order.
    pub fn totals(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.per_node.iter().map(|(&n, &t)| (n, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, packet: u64, flow: u32, node: u32, port: u16, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            t_ns: t,
            packet,
            flow,
            node,
            port,
            qlen: 1,
            detours: 0,
            kind,
        }
    }

    #[test]
    fn lifecycle_and_hops_reconstruct_a_path() {
        let events = vec![
            ev(0, 1, 9, 100, 0, TraceKind::Send),
            ev(10, 1, 9, 20, 2, TraceKind::Enqueue),
            ev(20, 1, 9, 20, 2, TraceKind::Dequeue),
            ev(30, 1, 9, 21, 1, TraceKind::Detour),
            ev(40, 1, 9, 21, 1, TraceKind::Dequeue),
            ev(50, 1, 9, 101, 0, TraceKind::Deliver),
            // A different packet interleaved.
            ev(15, 2, 9, 20, 0, TraceKind::Enqueue),
        ];
        let life = packet_lifecycle(&events, 1);
        assert_eq!(life.len(), 6);
        assert_eq!(life[0].kind, TraceKind::Send);
        assert_eq!(life[5].kind, TraceKind::Deliver);
        let hops = packet_hops(&events, 1);
        assert_eq!(hops.len(), 2);
        assert_eq!((hops[0].node, hops[0].detour), (20, false));
        assert_eq!((hops[1].node, hops[1].detour), (21, true));
    }

    #[test]
    fn flow_queries_group_by_packet() {
        let events = vec![
            ev(0, 1, 7, 20, 0, TraceKind::Enqueue),
            ev(1, 2, 7, 20, 0, TraceKind::Enqueue),
            ev(2, 1, 7, 21, 0, TraceKind::Detour),
            ev(3, 5, 8, 20, 0, TraceKind::Enqueue),
        ];
        assert_eq!(flow_packets(&events, 7), vec![1, 2]);
        let hops = per_flow_hops(&events, 7);
        assert_eq!(hops[&1].len(), 2);
        assert_eq!(hops[&2].len(), 1);
        assert!(!hops.contains_key(&5));
    }

    #[test]
    fn detour_loops_require_revisit_after_detour() {
        let events = vec![
            // Packet 1: 20 -> detour 21 -> back to 20 (a loop).
            ev(0, 1, 0, 20, 0, TraceKind::Enqueue),
            ev(1, 1, 0, 21, 0, TraceKind::Detour),
            ev(2, 1, 0, 20, 0, TraceKind::Enqueue),
            // Packet 2: straight path, no revisit.
            ev(0, 2, 0, 20, 0, TraceKind::Enqueue),
            ev(1, 2, 0, 21, 0, TraceKind::Enqueue),
        ];
        assert_eq!(detour_loop_packets(&events), vec![1]);
    }

    #[test]
    fn occupancy_tracker_integrates_per_port_depths() {
        let mut t = OccupancyTracker::new();
        let mut e1 = ev(0, 1, 0, 20, 0, TraceKind::Enqueue);
        e1.qlen = 3;
        assert_eq!(t.apply(&e1), Some((20, 3)));
        let mut e2 = ev(1, 2, 0, 20, 1, TraceKind::Enqueue);
        e2.qlen = 2;
        assert_eq!(t.apply(&e2), Some((20, 5)));
        let mut e3 = ev(2, 1, 0, 20, 0, TraceKind::Dequeue);
        e3.qlen = 2;
        assert_eq!(t.apply(&e3), Some((20, 4)));
        assert_eq!(t.total(20), 4);
        assert_eq!(t.total(99), 0);
        let e4 = ev(3, 1, 0, 20, 0, TraceKind::Deliver);
        assert_eq!(t.apply(&e4), None);
    }
}
