//! The future-event list.
//!
//! A thin wrapper over a binary heap keyed on `(time, sequence)`. The
//! monotone sequence number gives deterministic FIFO ordering among events
//! scheduled for the same instant, which is what makes whole simulation runs
//! reproducible from a seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest event first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// Events popped from the queue come out in nondecreasing time order; ties
/// are broken by insertion order.
///
/// # Examples
///
/// ```
/// use dibs_engine::queue::EventQueue;
/// use dibs_engine::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(2), "late");
/// q.push(SimTime::from_millis(1), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(2), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    pushed: u64,
    popped: u64,
    /// `(time, seq)` of the most recent pop, for the debug-build audit
    /// that dispatch order is strictly increasing.
    last_popped: Option<(SimTime, u64)>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pushed: 0,
            popped: 0,
            last_popped: None,
        }
    }

    /// Creates an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            pushed: 0,
            popped: 0,
            last_popped: None,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    ///
    /// Debug builds audit that pops come out in strictly increasing
    /// `(time, seq)` order — the total order every deterministic run
    /// depends on.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.popped += 1;
        debug_assert!(
            self.last_popped
                .is_none_or(|last| last < (entry.time, entry.seq)),
            "event queue popped out of (time, seq) order: {:?} after {:?}",
            (entry.time, entry.seq),
            self.last_popped,
        );
        self.last_popped = Some((entry.time, entry.seq));
        Some((entry.time, entry.event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events ever dispatched.
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Discards all pending events.
    ///
    /// Also resets the pop-order audit: a cleared queue may be reused
    /// for a fresh timeline.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.last_popped = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        for i in (0..100u64).rev() {
            q.push(SimTime::from_nanos(i * 7), i);
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            n += 1;
        }
        assert_eq!(n, 100);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.push(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO + SimDuration::from_nanos(1), ());
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.total_popped(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
