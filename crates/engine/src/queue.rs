//! The future-event list: a hierarchical timing wheel.
//!
//! # Ordering contract
//!
//! Events pop in ascending `(time, seq)` order, where `seq` is a monotone
//! per-queue sequence number assigned at push: nondecreasing time, FIFO
//! among events scheduled for the same instant. This is the total order
//! every deterministic run depends on, and it is byte-identical to the
//! binary-heap implementation this wheel replaced (kept in [`heap`] as the
//! differential-test oracle).
//!
//! In exchange for near-O(1) schedule/pop the wheel requires what the
//! engine already guarantees: **no event may be scheduled earlier than the
//! time of the most recently popped event** (the simulation clock never
//! runs backwards). Debug builds assert this on every push; the old heap
//! accepted such pushes only to trip its own pop-order audit one pop later.
//!
//! # Layout
//!
//! Eleven levels of 64 slots cover the full 64-bit nanosecond clock, each
//! level spanning 6 more bits of the timestamp. An event lands in the level
//! where its timestamp first diverges from `elapsed` (the last popped
//! time), so imminent events sit in level 0 — where each occupied slot
//! holds exactly one timestamp and pops are a bitmap scan plus an
//! unlink. Popping past a higher-level slot *cascades* it: the slot's
//! events redistribute into strictly lower levels, preserving push order,
//! so each event cascades at most `LEVELS - 1` times over its life.
//!
//! Storage is a node slab with intrusive per-slot FIFO chains: events are
//! written once on push and read once on pop, and a cascade relinks nodes
//! (one index write each) instead of moving entries between containers.

use crate::time::SimTime;

/// Bits of timestamp consumed per wheel level. Six bits keeps the
/// occupancy bitmaps in single machine words; wider levels (7 bits,
/// `u128` masks) measured slower end to end.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Levels; `11 * 6 = 66 >= 64` bits covers any `SimTime`.
const LEVELS: usize = 11;
/// Per-level occupancy bitmap type; must hold `SLOTS` bits.
type SlotMask = u64;

/// Sentinel node index: "no node" in slot chains and the free list.
const NIL: u32 = u32::MAX;

struct Node<E> {
    time: SimTime,
    /// Insertion order, read only by the debug pop-order audit: FIFO
    /// tie-breaking is structural (per-slot chains appended at the tail),
    /// so release builds drop the field entirely.
    #[cfg(debug_assertions)]
    seq: u64,
    /// Next node in this slot's FIFO chain, or in the free list.
    next: u32,
    /// `None` only while the node sits on the free list.
    event: Option<E>,
}

/// The wheel level at which `t` first diverges from `elapsed`.
#[inline]
fn level_for(elapsed: u64, t: u64) -> usize {
    let diff = elapsed ^ t;
    if diff == 0 {
        0
    } else {
        ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
    }
}

/// The slot within `level` that holds timestamp `t`.
#[inline]
fn slot_of(t: u64, level: usize) -> usize {
    // Bounded by construction: the shift is at most 60 and the masked
    // value is below SLOTS.
    #[allow(clippy::cast_possible_truncation)]
    {
        ((t >> (level as u32 * SLOT_BITS)) & (SLOTS as u64 - 1)) as usize
    }
}

/// The earliest timestamp that maps to `(level, slot)` given the current
/// `elapsed` (the slot's high bits come from `elapsed`, everything below
/// the slot's own bits is zero).
#[inline]
fn slot_start(elapsed: u64, level: usize, slot: usize) -> u64 {
    // `level` is below LEVELS (11), so the cast and shift are in range.
    #[allow(clippy::cast_possible_truncation)]
    let lsh = level as u32 * SLOT_BITS;
    let high = if lsh + SLOT_BITS >= 64 {
        0
    } else {
        (elapsed >> (lsh + SLOT_BITS)) << (lsh + SLOT_BITS)
    };
    high | ((slot as u64) << lsh)
}

/// A deterministic future-event list.
///
/// Events popped from the queue come out in nondecreasing time order; ties
/// are broken by insertion order.
///
/// # Examples
///
/// ```
/// use dibs_engine::queue::EventQueue;
/// use dibs_engine::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(2), "late");
/// q.push(SimTime::from_millis(1), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(2), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// Node slab: every pending event lives here; freed nodes chain into
    /// `free_head` and are reused LIFO, so a pop-then-push cycle recycles
    /// still-cache-hot memory. Slot membership is intrusive (`Node::next`),
    /// so a cascade relinks nodes with one index write each instead of
    /// moving ~100-byte entries between deques.
    nodes: Vec<Node<E>>,
    /// Head of the free list (`NIL` when every slab node is live).
    free_head: u32,
    /// Per-slot FIFO chain heads, level-major (`NIL` = empty).
    head: [u32; LEVELS * SLOTS],
    /// Per-slot FIFO chain tails, level-major (`NIL` = empty).
    tail: [u32; LEVELS * SLOTS],
    /// Per-level bitmap of nonempty slots.
    occupied: [SlotMask; LEVELS],
    /// Nanosecond timestamp of the most recent pop (0 initially): the
    /// reference point every pending event is placed relative to.
    elapsed: u64,
    len: usize,
    next_seq: u64,
    pushed: u64,
    popped: u64,
    /// `(time, seq)` of the most recent pop, for the debug-build audit
    /// that dispatch order is strictly increasing.
    #[cfg(debug_assertions)]
    last_popped: Option<(SimTime, u64)>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            nodes: Vec::new(),
            free_head: NIL,
            head: [NIL; LEVELS * SLOTS],
            tail: [NIL; LEVELS * SLOTS],
            occupied: [0; LEVELS],
            elapsed: 0,
            len: 0,
            next_seq: 0,
            pushed: 0,
            popped: 0,
            #[cfg(debug_assertions)]
            last_popped: None,
        }
    }

    /// Creates an empty queue sized for roughly `cap` pending events
    /// (see [`EventQueue::reserve`]).
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::new();
        q.reserve(cap);
        q
    }

    /// Pre-sizes the node slab for an expected pending-event population
    /// of `expected_events`, so the steady-state hot path never grows it.
    ///
    /// The slab holds only *concurrently pending* events (popped nodes are
    /// recycled), so callers may pass a whole run's event count: the hint
    /// is capped at 64 Ki nodes, beyond any plausible pending set.
    pub fn reserve(&mut self, expected_events: usize) {
        let want = expected_events.min(1 << 16);
        let spare = self.nodes.capacity() - self.nodes.len();
        if spare < want {
            self.nodes.reserve(want - spare);
        }
    }

    /// Takes a node off the free list (or grows the slab) and writes
    /// `node` into it, returning its index.
    #[inline]
    fn alloc(&mut self, node: Node<E>) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let cell = &mut self.nodes[idx as usize];
            self.free_head = cell.next;
            *cell = node;
            idx
        } else {
            let Ok(idx) = u32::try_from(self.nodes.len()) else {
                unreachable!("more than u32::MAX pending events")
            };
            self.nodes.push(node);
            idx
        }
    }

    /// Appends node `idx` to the FIFO chain of the slot its timestamp maps
    /// to under the current `elapsed`. Callers always link in ascending
    /// `seq` order, which is what keeps every chain FIFO.
    #[inline]
    fn link(&mut self, idx: u32) {
        let t = self.nodes[idx as usize].time.as_nanos();
        debug_assert!(
            t >= self.elapsed,
            "event scheduled at {t} ns, before the last popped time {} ns",
            self.elapsed,
        );
        let level = level_for(self.elapsed, t);
        let slot = slot_of(t, level);
        let li = level * SLOTS + slot;
        let tail = self.tail[li];
        if tail == NIL {
            self.head[li] = idx;
        } else {
            self.nodes[tail as usize].next = idx;
        }
        self.tail[li] = idx;
        self.nodes[idx as usize].next = NIL;
        self.occupied[level] |= (1 as SlotMask) << slot;
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// `time` must not precede the most recently popped event's time (the
    /// simulation clock); debug builds assert it.
    pub fn push(&mut self, time: SimTime, event: E) {
        self.next_seq += 1;
        self.pushed += 1;
        self.len += 1;
        let idx = self.alloc(Node {
            time,
            #[cfg(debug_assertions)]
            seq: self.next_seq - 1,
            next: NIL,
            event: Some(event),
        });
        self.link(idx);
    }

    /// Removes and returns the earliest event, if any.
    ///
    /// Debug builds audit that pops come out in strictly increasing
    /// `(time, seq)` order — the total order every deterministic run
    /// depends on.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_impl(u64::MAX)
    }

    /// Pops the earliest event only if its time is `<= horizon`; returns
    /// `None` (without popping) when the queue is empty or the head lies
    /// beyond the horizon.
    ///
    /// One wheel walk instead of the `peek_time` + `pop` pair, which is
    /// what the engine's dispatch loop runs per event.
    pub fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        self.pop_impl(horizon.as_nanos())
    }

    fn pop_impl(&mut self, horizon: u64) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Fast path: level 0, where every occupied slot holds exactly
            // one timestamp and the lowest set bit is the earliest.
            if self.occupied[0] != 0 {
                let slot = self.occupied[0].trailing_zeros() as usize;
                let idx = self.head[slot];
                debug_assert_ne!(idx, NIL, "occupied bit set for empty slot");
                let time = self.nodes[idx as usize].time;
                if time.as_nanos() > horizon {
                    return None;
                }
                let next = self.nodes[idx as usize].next;
                self.head[slot] = next;
                if next == NIL {
                    self.tail[slot] = NIL;
                    self.occupied[0] &= !((1 as SlotMask) << slot);
                }
                let Some(event) = self.nodes[idx as usize].event.take() else {
                    unreachable!("linked node carries no event")
                };
                self.nodes[idx as usize].next = self.free_head;
                self.free_head = idx;
                self.len -= 1;
                self.popped += 1;
                self.elapsed = time.as_nanos();
                #[cfg(debug_assertions)]
                {
                    let seq = self.nodes[idx as usize].seq;
                    assert!(
                        self.last_popped.is_none_or(|last| last < (time, seq)),
                        "event queue popped out of (time, seq) order: {:?} after {:?}",
                        (time, seq),
                        self.last_popped,
                    );
                    self.last_popped = Some((time, seq));
                }
                return Some((time, event));
            }

            // Cascade: relink the earliest occupied higher-level slot's
            // chain into strictly lower levels and retry. Nodes stay put
            // in the slab; only their `next` links and the slot head/tail
            // indices change.
            let Some(level) = (1..LEVELS).find(|&l| self.occupied[l] != 0) else {
                unreachable!("len > 0 but no occupied slot")
            };
            let slot = self.occupied[level].trailing_zeros() as usize;
            let li = level * SLOTS + slot;
            if horizon < u64::MAX {
                // A blocked pop must not mutate (a cascade advances
                // `elapsed` past the last popped time, which would reject
                // still-legal pushes), so decide from the slot's time span
                // before touching it; only when the horizon cuts through
                // the span does the slot's actual minimum matter.
                let start = slot_start(self.elapsed, level, slot);
                if start > horizon {
                    return None;
                }
                #[allow(clippy::cast_possible_truncation)]
                let span = 1u64 << (level as u32 * SLOT_BITS);
                if start.saturating_add(span - 1) > horizon {
                    let mut min_t = u64::MAX;
                    let mut walk = self.head[li];
                    while walk != NIL {
                        let n = &self.nodes[walk as usize];
                        min_t = min_t.min(n.time.as_nanos());
                        walk = n.next;
                    }
                    if min_t > horizon {
                        return None;
                    }
                }
            }
            let mut walk = self.head[li];
            self.head[li] = NIL;
            self.tail[li] = NIL;
            self.occupied[level] &= !((1 as SlotMask) << slot);
            // Advancing to the slot's start keeps `elapsed` at or below
            // every pending event, and relinking lands each node in a
            // strictly lower level, so the loop terminates. Walking in
            // chain order and appending preserves FIFO within each target
            // slot.
            self.elapsed = slot_start(self.elapsed, level, slot);
            while walk != NIL {
                let next = self.nodes[walk as usize].next;
                self.link(walk);
                walk = next;
            }
        }
    }

    /// The timestamp of the earliest pending event.
    ///
    /// Non-mutating: when the head sits in a higher-level slot this scans
    /// that one slot for its minimum (the subsequent `pop` cascades the
    /// same slot, so the scan amortizes away).
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if self.occupied[0] != 0 {
            let slot = self.occupied[0].trailing_zeros() as usize;
            let idx = self.head[slot];
            debug_assert_ne!(idx, NIL, "occupied bit set for empty slot");
            return Some(self.nodes[idx as usize].time);
        }
        let level = (1..LEVELS).find(|&l| self.occupied[l] != 0)?;
        let slot = self.occupied[level].trailing_zeros() as usize;
        let mut min_t: Option<SimTime> = None;
        let mut walk = self.head[level * SLOTS + slot];
        while walk != NIL {
            let n = &self.nodes[walk as usize];
            min_t = Some(min_t.map_or(n.time, |m: SimTime| m.min(n.time)));
            walk = n.next;
        }
        min_t
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total events ever scheduled.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events ever dispatched.
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Discards all pending events.
    ///
    /// Also resets the clock reference and the pop-order audit: a cleared
    /// queue may be reused for a fresh timeline starting at time zero.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free_head = NIL;
        self.head = [NIL; LEVELS * SLOTS];
        self.tail = [NIL; LEVELS * SLOTS];
        self.occupied = [0; LEVELS];
        self.len = 0;
        self.elapsed = 0;
        #[cfg(debug_assertions)]
        {
            self.last_popped = None;
        }
    }
}

/// The binary-heap future-event list the timing wheel replaced.
///
/// Kept (behind the default-on `heap-oracle` feature) as the reference
/// implementation for differential tests and benchmarks: its pop order is
/// the specification the wheel must reproduce exactly. Disable with
/// `--no-default-features` to strip it from a build.
#[cfg(feature = "heap-oracle")]
pub mod heap {
    use crate::time::SimTime;
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    struct Entry<E> {
        time: SimTime,
        seq: u64,
        event: E,
    }

    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }
    impl<E> Eq for Entry<E> {}

    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reverse: BinaryHeap is a max-heap, we want the earliest
            // event first.
            other
                .time
                .cmp(&self.time)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    /// A deterministic future-event list over `BinaryHeap`, ordered by
    /// `(time, seq)` with FIFO tie-breaking — the wheel's oracle.
    pub struct HeapEventQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        next_seq: u64,
        pushed: u64,
        popped: u64,
    }

    impl<E> Default for HeapEventQueue<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> HeapEventQueue<E> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            HeapEventQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
                pushed: 0,
                popped: 0,
            }
        }

        /// Schedules `event` to fire at `time`.
        pub fn push(&mut self, time: SimTime, event: E) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.pushed += 1;
            self.heap.push(Entry { time, seq, event });
        }

        /// Removes and returns the earliest event, if any.
        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            let entry = self.heap.pop()?;
            self.popped += 1;
            Some((entry.time, entry.event))
        }

        /// The timestamp of the earliest pending event.
        pub fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|e| e.time)
        }

        /// Number of pending events.
        pub fn len(&self) -> usize {
            self.heap.len()
        }

        /// Whether no events are pending.
        pub fn is_empty(&self) -> bool {
            self.heap.is_empty()
        }

        /// Total events ever scheduled.
        pub fn total_pushed(&self) -> u64 {
            self.pushed
        }

        /// Total events ever dispatched.
        pub fn total_popped(&self) -> u64 {
            self.popped
        }

        /// Discards all pending events.
        pub fn clear(&mut self) {
            self.heap.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        for i in (0..100u64).rev() {
            q.push(SimTime::from_nanos(i * 7), i);
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            n += 1;
        }
        assert_eq!(n, 100);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.push(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO + SimDuration::from_nanos(1), ());
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.total_popped(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn crosses_level_boundaries_in_order() {
        // Timestamps straddling every wheel level boundary, pushed in a
        // scrambled order, must still pop sorted.
        let mut times = Vec::new();
        for level in 0..u32::try_from(LEVELS).expect("LEVELS fits u32") {
            let base = 1u64 << (level * SLOT_BITS);
            times.extend([base.wrapping_sub(1), base, base + 1, base + (base >> 1)]);
        }
        times.push(u64::MAX);
        times.push(0);
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        times.sort_unstable();
        let mut popped = Vec::new();
        while let Some((t, _)) = q.pop() {
            popped.push(t.as_nanos());
        }
        assert_eq!(popped, times);
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        // Pops interleaved with pushes that respect the clock contract
        // (never below the last popped time).
        let mut q = EventQueue::new();
        let mut x = 9u64;
        for i in 0..64u64 {
            q.push(SimTime::from_nanos(i * 1000), i);
        }
        let mut last = 0u64;
        let mut popped = 0u64;
        while let Some((t, _)) = q.pop() {
            popped += 1;
            assert!(t.as_nanos() >= last);
            last = t.as_nanos();
            if popped <= 5000 {
                // Xorshift-ish scramble for a spread of future deltas.
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                q.push(t + SimDuration::from_nanos(x % 500_000), popped + 64);
            }
        }
        assert_eq!(popped, 5000 + 64);
    }

    #[test]
    fn pop_at_or_before_respects_horizon() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(1_000_000), "b");
        let h = SimTime::from_nanos(500);
        assert_eq!(q.pop_at_or_before(h), Some((SimTime::from_nanos(10), "a")));
        assert_eq!(q.pop_at_or_before(h), None);
        assert_eq!(q.len(), 1, "beyond-horizon event stays pending");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1_000_000), "b")));
    }

    #[test]
    fn clear_resets_for_a_fresh_timeline() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), 1u32);
        q.pop();
        q.push(SimTime::from_secs(9), 2);
        q.clear();
        // A cleared queue accepts a timeline restarting at zero.
        q.push(SimTime::ZERO, 3);
        assert_eq!(q.pop(), Some((SimTime::ZERO, 3)));
    }

    #[test]
    fn reserve_is_inert_behaviorally() {
        let mut q = EventQueue::with_capacity(100_000);
        q.reserve(1_000_000);
        q.push(SimTime::from_nanos(7), 1u8);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(7), 1)));
    }

    #[cfg(feature = "heap-oracle")]
    #[test]
    fn heap_oracle_matches_on_ties() {
        let mut w = EventQueue::new();
        let mut h = heap::HeapEventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..32u64 {
            let at = if i % 3 == 0 {
                t
            } else {
                SimTime::from_nanos(i)
            };
            w.push(at, i);
            h.push(at, i);
        }
        while let (Some(a), Some(b)) = (w.pop(), h.pop()) {
            assert_eq!(a, b);
        }
        assert!(w.is_empty() && h.is_empty());
    }
}
