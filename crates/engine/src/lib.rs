#![warn(missing_docs)]

//! Deterministic discrete-event simulation engine.
//!
//! This crate is the lowest layer of the DIBS reproduction: a simulation
//! clock ([`time::SimTime`]), a future-event list ([`queue::EventQueue`]),
//! seeded random streams ([`rng::SimRng`]), and a small driver
//! ([`Engine`]) that owns the clock and the queue.
//!
//! The engine is intentionally generic over the event type: the network
//! simulator in the `dibs` crate defines its own event enum and drives the
//! loop itself, keeping all mutable simulation state in plain arenas rather
//! than behind shared-ownership cells.
//!
//! # Examples
//!
//! ```
//! use dibs_engine::{Engine, time::{SimDuration, SimTime}};
//!
//! #[derive(Debug)]
//! enum Ev { Ping(u32) }
//!
//! let mut engine: Engine<Ev> = Engine::new();
//! engine.schedule_in(SimDuration::from_millis(5), Ev::Ping(1));
//! engine.schedule_in(SimDuration::from_millis(1), Ev::Ping(2));
//!
//! let mut order = vec![];
//! while let Some(ev) = engine.next_event() {
//!     match ev { Ev::Ping(n) => order.push(n) }
//! }
//! assert_eq!(order, vec![2, 1]);
//! assert_eq!(engine.now(), SimTime::from_millis(5));
//! ```

pub mod queue;
pub mod rng;
pub mod testkit;
pub mod time;

pub use queue::EventQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};

/// Clock plus future-event list.
///
/// `Engine` does not dispatch events itself; callers pop events with
/// [`Engine::next_event`] and handle them, which sidesteps borrow conflicts
/// between the handler and the schedule.
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    horizon: SimTime,
    /// Peak pending-event count ever observed; feeds trace reports.
    high_watermark: usize,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine at time zero with no horizon.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            horizon: SimTime::MAX,
            high_watermark: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sets the stop horizon: events scheduled after this instant are never
    /// dispatched, and [`Engine::next_event`] returns `None` once the head of
    /// the queue crosses it.
    pub fn set_horizon(&mut self, horizon: SimTime) {
        self.horizon = horizon;
    }

    /// The configured stop horizon.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, event);
        self.note_pending();
    }

    /// Schedules `event` after a delay.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
        self.note_pending();
    }

    #[inline]
    fn note_pending(&mut self) {
        let pending = self.queue.len();
        if pending > self.high_watermark {
            self.high_watermark = pending;
        }
    }

    /// Pops the next event and advances the clock to its timestamp.
    ///
    /// Returns `None` when the queue is empty or the next event lies beyond
    /// the horizon (the clock is then parked at the horizon).
    pub fn next_event(&mut self) -> Option<E> {
        match self.queue.pop_at_or_before(self.horizon) {
            Some((t, ev)) => {
                debug_assert!(t >= self.now, "engine clock moved backwards");
                self.now = t;
                Some(ev)
            }
            None => {
                if !self.queue.is_empty() {
                    // Head lies beyond the horizon: park the clock there.
                    self.now = self.horizon;
                }
                None
            }
        }
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.queue.total_popped()
    }

    /// Largest number of simultaneously pending events ever observed.
    ///
    /// Purely observational (surfaced through trace reports); never part
    /// of run digests, so it cannot perturb golden fingerprints.
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }

    /// Direct access to the event queue (mainly for benchmarks).
    pub fn queue_mut(&mut self) -> &mut EventQueue<E> {
        &mut self.queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_stops_dispatch() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_at(SimTime::from_millis(1), 1);
        e.schedule_at(SimTime::from_millis(3), 2);
        e.set_horizon(SimTime::from_millis(2));
        assert_eq!(e.next_event(), Some(1));
        assert_eq!(e.next_event(), None);
        assert_eq!(e.now(), SimTime::from_millis(2));
        // Event 2 is still pending but will never run.
        assert_eq!(e.pending(), 1);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut e: Engine<u32> = Engine::new();
        for i in 0..50 {
            e.schedule_at(
                SimTime::from_nanos((i * 37) % 100),
                u32::try_from(i).unwrap(),
            );
        }
        let mut last = SimTime::ZERO;
        while e.next_event().is_some() {
            assert!(e.now() >= last);
            last = e.now();
        }
        assert_eq!(e.dispatched(), 50);
    }

    #[test]
    fn high_watermark_tracks_peak_pending() {
        let mut e: Engine<u32> = Engine::new();
        assert_eq!(e.high_watermark(), 0);
        e.schedule_at(SimTime::from_millis(1), 1);
        e.schedule_at(SimTime::from_millis(2), 2);
        e.schedule_at(SimTime::from_millis(3), 3);
        assert_eq!(e.high_watermark(), 3);
        // Draining does not lower the watermark.
        while e.next_event().is_some() {}
        assert_eq!(e.pending(), 0);
        assert_eq!(e.high_watermark(), 3);
        // A smaller later burst does not raise it.
        e.schedule_in(SimDuration::from_millis(1), 4);
        assert_eq!(e.high_watermark(), 3);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_at(SimTime::from_millis(1), 1);
        e.next_event();
        e.schedule_at(SimTime::ZERO, 2);
    }
}
