//! Deterministic random-number generation.
//!
//! Every stochastic component of the simulator (workload arrivals, ECMP
//! hashing salt, DIBS detour-port choice, ...) draws from its own
//! [`SimRng`], forked from a single root seed. Forking is label-based, so
//! adding a new consumer does not perturb the streams of existing ones.

/// SplitMix64 step; used to derive fork seeds from (seed, label) pairs.
///
/// This is the canonical splitmix64 finalizer from Steele et al., a cheap,
/// well-distributed mixing function.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic 64-bit hash of a byte string, built from splitmix64.
///
/// Used wherever a stable identifier (a fork label, a run-descriptor
/// field) must be folded into a seed. The hash depends only on the bytes,
/// never on pointer identity or platform, so it is safe to persist.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    // Seed the fold with an arbitrary non-zero constant so the empty
    // string does not hash to zero.
    let mut h = 0x6A09_E667_F3BC_C908;
    for &b in bytes {
        h = splitmix64(h ^ u64::from(b));
    }
    // Length suffix: distinguishes "ab" + "c" from "a" + "bc" when callers
    // concatenate hashed fields.
    splitmix64(h ^ bytes.len() as u64)
}

/// Derives the seed of an independent random stream identified by a
/// sequence of words (typically hashed run-descriptor fields) under a
/// master seed.
///
/// This is the sweep executor's seeding scheme: the derived seed is a pure
/// function of `(master, words)` — never of thread identity, completion
/// order, or submission order — so a parallel sweep reproduces a serial
/// one bit for bit. Word order matters; empty word lists are valid.
pub fn derive_stream_seed(master: u64, words: &[u64]) -> u64 {
    let mut h = splitmix64(master ^ 0x9E37_79B9_7F4A_7C15);
    for &w in words {
        h = splitmix64(h ^ w);
    }
    splitmix64(h ^ words.len() as u64)
}

/// A seeded random stream.
///
/// A self-contained xoshiro256++ generator with a convenience API and
/// deterministic label-based forking. The implementation carries no
/// external dependencies and no global state, so identical seeds give
/// bit-identical streams on every platform and build.
///
/// # Examples
///
/// ```
/// use dibs_engine::rng::SimRng;
///
/// let mut a = SimRng::new(42).fork("workload");
/// let mut b = SimRng::new(42).fork("workload");
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
pub struct SimRng {
    state: [u64; 4],
    seed: u64,
}

impl SimRng {
    /// Creates a stream from a root seed.
    pub fn new(seed: u64) -> Self {
        // Expand the seed through splitmix64, per the xoshiro authors'
        // recommendation; the all-zero state is unreachable this way.
        let mut s = splitmix64(seed);
        let mut state = [0u64; 4];
        for word in &mut state {
            s = splitmix64(s);
            *word = s;
        }
        SimRng { state, seed }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream identified by `label`.
    ///
    /// Forking does not consume randomness from `self`, so the set of forks
    /// taken from a stream never affects the stream's own output.
    pub fn fork(&self, label: &str) -> SimRng {
        let mut h = self.seed;
        for b in label.bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        SimRng::new(splitmix64(h ^ 0xD1B5_4A32_D192_ED03))
    }

    /// Derives an independent child stream identified by an index.
    pub fn fork_idx(&self, label: &str, idx: u64) -> SimRng {
        let forked = self.fork(label);
        SimRng::new(splitmix64(forked.seed ^ splitmix64(idx)))
    }

    /// Derives an independent child stream identified by a pre-hashed
    /// 64-bit word (e.g. a [`hash_bytes`] of a run descriptor).
    ///
    /// Like [`SimRng::fork`], this never consumes randomness from `self`.
    pub fn fork_hash(&self, hash: u64) -> SimRng {
        SimRng::new(derive_stream_seed(self.seed, &[hash]))
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits scaled into the unit interval.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        let bound = n as u64;
        usize::try_from(self.bounded(bound)).expect("bound fits usize")
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.bounded(hi - lo)
    }

    /// Unbiased uniform value in `[0, bound)` via rejection sampling.
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Classic Lemire-style threshold rejection: discard the biased
        // low region so every residue is equally likely.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            if x >= threshold {
                return x % bound;
            }
        }
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "invalid mean: {mean}");
        // Inverse transform; 1 - u avoids ln(0).
        let u = self.uniform();
        -mean * (1.0 - u).ln()
    }

    /// Picks one element of a non-empty slice uniformly at random.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len())]
    }

    /// Samples `k` distinct indices from `0..n` (Floyd's algorithm), returned
    /// in random order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct from {n}");
        // Floyd's algorithm gives distinctness in O(k) expected time; a final
        // Fisher-Yates pass randomizes the order.
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.below(j + 1);
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        // Shuffle.
        for i in (1..chosen.len()).rev() {
            let j = self.below(i + 1);
            chosen.swap(i, j);
        }
        chosen
    }
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimRng").field("seed", &self.seed).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let parent = SimRng::new(7);
        let mut f1 = parent.fork("x");
        let mut parent2 = SimRng::new(7);
        parent2.next_u64(); // Consume from the parent.
        let mut f2 = parent2.fork("x");
        assert_eq!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn different_labels_differ() {
        let parent = SimRng::new(7);
        assert_ne!(parent.fork("a").next_u64(), parent.fork("b").next_u64());
        assert_ne!(
            parent.fork_idx("a", 0).next_u64(),
            parent.fork_idx("a", 1).next_u64()
        );
    }

    #[test]
    fn hash_bytes_is_stable_and_length_sensitive() {
        assert_eq!(hash_bytes(b"fig12"), hash_bytes(b"fig12"));
        assert_ne!(hash_bytes(b"fig12"), hash_bytes(b"fig13"));
        assert_ne!(hash_bytes(b""), 0);
        // Field-boundary sensitivity for concatenating callers.
        assert_ne!(
            derive_stream_seed(1, &[hash_bytes(b"ab"), hash_bytes(b"c")]),
            derive_stream_seed(1, &[hash_bytes(b"a"), hash_bytes(b"bc")])
        );
    }

    #[test]
    fn derive_stream_seed_depends_on_all_inputs() {
        let w = [hash_bytes(b"scenario"), hash_bytes(b"point"), 3];
        assert_eq!(derive_stream_seed(7, &w), derive_stream_seed(7, &w));
        assert_ne!(derive_stream_seed(7, &w), derive_stream_seed(8, &w));
        let mut reordered = w;
        reordered.swap(0, 1);
        assert_ne!(derive_stream_seed(7, &w), derive_stream_seed(7, &reordered));
        assert_ne!(derive_stream_seed(7, &[]), derive_stream_seed(7, &[0]));
    }

    #[test]
    fn fork_hash_matches_derivation_and_ignores_consumption() {
        let h = hash_bytes(b"run-0");
        let parent = SimRng::new(9);
        let mut consumed = SimRng::new(9);
        consumed.next_u64();
        assert_eq!(parent.fork_hash(h).seed(), consumed.fork_hash(h).seed());
        assert_eq!(parent.fork_hash(h).seed(), derive_stream_seed(9, &[h]));
        assert_ne!(parent.fork_hash(h).seed(), parent.fork_hash(h ^ 1).seed());
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::new(3);
        let n = 200_000;
        let mean = 4.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() < 0.05 * mean,
            "observed mean {observed}"
        );
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        let mut rng = SimRng::new(11);
        for _ in 0..200 {
            let s = rng.sample_distinct(40, 12);
            assert_eq!(s.len(), 12);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 12);
            assert!(s.iter().all(|&x| x < 40));
        }
    }

    #[test]
    fn sample_distinct_full_range() {
        let mut rng = SimRng::new(11);
        let mut s = rng.sample_distinct(10, 10);
        s.sort_unstable();
        assert_eq!(s, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = SimRng::new(5);
        for _ in 0..1000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
