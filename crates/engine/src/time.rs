//! Simulation clock types.
//!
//! The simulator keeps time as an unsigned 64-bit count of nanoseconds.
//! Nanosecond resolution is far below any physically meaningful interval in
//! the simulated networks (a 1500-byte frame on a 1 Gbps link serializes in
//! 12 µs), and a `u64` of nanoseconds covers roughly 584 years, so overflow
//! is not a practical concern.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since the start of the
/// run.
///
/// # Examples
///
/// ```
/// use dibs_engine::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_nanos(), 3_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from a raw nanosecond count.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates an instant from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time: {s}");
        // Saturating by construction: a rounded nonnegative finite f64
        // above u64::MAX is out of this simulator's representable range.
        #[allow(clippy::cast_possible_truncation)]
        SimTime((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The instant expressed in microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The instant expressed in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The instant expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from a raw nanosecond count.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        // Same representable-range argument as SimTime::from_secs_f64.
        #[allow(clippy::cast_possible_truncation)]
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration expressed in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Serialization delay for `bytes` on a link of `rate_bps` bits/second.
    ///
    /// Rounds up to the next nanosecond so back-to-back transmissions never
    /// overlap.
    ///
    /// # Panics
    ///
    /// Panics if `rate_bps` is zero.
    pub fn serialization(bytes: u64, rate_bps: u64) -> Self {
        assert!(rate_bps > 0, "link rate must be positive");
        // ns = bits * 1e9 / rate. Every real frame (bytes < ~2.3e9) fits
        // the u64 fast path; the u128 fall-back exists only so absurd
        // inputs stay correct. Both paths round identically (div_ceil on
        // the same integers), so results are bit-equal.
        if let Some(scaled) = bytes.checked_mul(8_000_000_000) {
            return SimDuration(scaled.div_ceil(rate_bps));
        }
        let ns = (bytes as u128 * 8_000_000_000).div_ceil(rate_bps as u128);
        SimDuration(u64::try_from(ns).unwrap_or(u64::MAX))
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// The larger of two durations.
    pub fn max(self, other: Self) -> Self {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: Self) -> Self {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        assert!(rhs.is_finite() && rhs >= 0.0, "invalid factor: {rhs}");
        // Nonnegative finite product; values beyond u64::MAX are outside
        // the simulator's representable range.
        #[allow(clippy::cast_possible_truncation)]
        SimDuration((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimTime::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimTime::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_micros(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn serialization_delay_1gbps() {
        // 1500 bytes at 1 Gbps = 12 us.
        let d = SimDuration::serialization(1500, 1_000_000_000);
        assert_eq!(d.as_nanos(), 12_000);
        // 64 bytes at 1 Gbps = 512 ns.
        let d = SimDuration::serialization(64, 1_000_000_000);
        assert_eq!(d.as_nanos(), 512);
    }

    #[test]
    fn serialization_rounds_up() {
        // 1 byte at 3 bps = 8/3 * 1e9 ns, which must round up.
        let d = SimDuration::serialization(1, 3);
        assert_eq!(d.as_nanos(), 2_666_666_667);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(1));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(100);
        assert_eq!(d * 3u64, SimDuration::from_micros(300));
        assert_eq!(d * 0.5f64, SimDuration::from_micros(50));
        assert_eq!(d / 4, SimDuration::from_micros(25));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn instant_subtraction_underflow_panics() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }
}
