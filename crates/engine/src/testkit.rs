//! A deterministic property-testing harness.
//!
//! The workspace's property tests draw their random inputs from [`SimRng`]
//! rather than an external fuzzing framework: every case is a pure function
//! of a fixed root seed, the test's label, and the case index, so a failure
//! reported on one machine replays identically on every other. The trade is
//! no shrinking — tests should print their inputs in assertion messages.

use crate::rng::SimRng;

/// Root seed for all property-test streams. Fixed on purpose: test inputs
/// are part of the repository's deterministic surface.
pub const ROOT_SEED: u64 = 0xD1B5_7E57;

/// Default number of cases per property.
pub const DEFAULT_CASES: usize = 96;

/// Runs `f` for [`DEFAULT_CASES`] independently seeded cases.
///
/// `label` must be unique per property within a test binary; it isolates the
/// property's random stream so adding or reordering properties never changes
/// the inputs of existing ones.
pub fn cases(label: &str, f: impl FnMut(&mut SimRng, usize)) {
    cases_n(label, DEFAULT_CASES, f);
}

/// Runs `f` for `n` independently seeded cases.
pub fn cases_n(label: &str, n: usize, mut f: impl FnMut(&mut SimRng, usize)) {
    let root = SimRng::new(ROOT_SEED);
    for i in 0..n {
        let mut rng = root.fork_idx(label, i as u64);
        f(&mut rng, i);
    }
}

/// Draws a vector of length in `len` with elements from `gen`.
pub fn vec_of<T>(
    rng: &mut SimRng,
    len: std::ops::Range<usize>,
    mut gen: impl FnMut(&mut SimRng) -> T,
) -> Vec<T> {
    let n = rng.below(len.end.saturating_sub(len.start)) + len.start;
    (0..n).map(|_| gen(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_reproducible() {
        let mut first = Vec::new();
        cases_n("repro", 10, |rng, _| first.push(rng.next_u64()));
        let mut second = Vec::new();
        cases_n("repro", 10, |rng, _| second.push(rng.next_u64()));
        assert_eq!(first, second);
    }

    #[test]
    fn labels_isolate_streams() {
        let mut a = Vec::new();
        cases_n("a", 4, |rng, _| a.push(rng.next_u64()));
        let mut b = Vec::new();
        cases_n("b", 4, |rng, _| b.push(rng.next_u64()));
        assert_ne!(a, b);
    }

    #[test]
    fn vec_of_respects_bounds() {
        cases_n("vec-bounds", 20, |rng, _| {
            let v = vec_of(rng, 1..50, |r| r.below(10));
            assert!((1..50).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        });
    }
}
