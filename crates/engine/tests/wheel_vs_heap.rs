//! Differential test: the timing wheel must reproduce the binary-heap
//! oracle's pop sequence exactly — same `(time, event)` pairs, same FIFO
//! order among same-timestamp events — under a long randomized
//! schedule/pop/clear workload.
//!
//! The workload respects the queue contract (no push below the last
//! popped time, which is what the engine's monotone clock guarantees) and
//! deliberately generates long same-timestamp runs, cross-level jumps,
//! and periodic `clear()`s (the cancel-everything path).

#![cfg(feature = "heap-oracle")]

use dibs_engine::queue::{heap::HeapEventQueue, EventQueue};
use dibs_engine::rng::SimRng;
use dibs_engine::time::{SimDuration, SimTime};

/// Total schedule/pop/clear operations driven through both queues.
const TOTAL_OPS: u64 = 1_200_000;

#[test]
fn wheel_matches_heap_on_randomized_workload() {
    let mut rng = SimRng::new(0xD1FF_5EED);
    let mut wheel: EventQueue<u64> = EventQueue::new();
    let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();

    // The queue contract: pushes never precede the last popped time.
    let mut clock = SimTime::ZERO;
    let mut next_id = 0u64;
    let mut pops = 0u64;
    let mut tie_runs = 0u64;

    for op in 0..TOTAL_OPS {
        match rng.below(10) {
            // 0..=4: schedule one event at a varied future offset.
            0..=4 => {
                // Mix tight offsets (level 0/1) with long jumps that land
                // several wheel levels out.
                let delta = match rng.below(4) {
                    0 => rng.range_u64(0, 64),
                    1 => rng.range_u64(0, 4_096),
                    2 => rng.range_u64(0, 1 << 20),
                    _ => rng.range_u64(0, 1 << 36),
                };
                let at = clock + SimDuration::from_nanos(delta);
                wheel.push(at, next_id);
                heap.push(at, next_id);
                next_id += 1;
            }
            // 5: schedule a same-timestamp FIFO run (the tie-break path).
            5 => {
                let at = clock + SimDuration::from_nanos(rng.range_u64(0, 10_000));
                let run = 2 + rng.below(14);
                for _ in 0..run {
                    wheel.push(at, next_id);
                    heap.push(at, next_id);
                    next_id += 1;
                }
                tie_runs += 1;
            }
            // 6..=8: pop from both and compare.
            6..=8 => {
                let a = wheel.pop();
                let b = heap.pop();
                assert_eq!(a, b, "pop #{pops} diverged at op {op}");
                if let Some((t, _)) = a {
                    assert!(t >= clock, "pop went backwards at op {op}");
                    clock = t;
                    pops += 1;
                }
                assert_eq!(wheel.peek_time(), heap.peek_time());
                assert_eq!(wheel.len(), heap.len());
            }
            // 9: occasionally cancel everything (the clear path). Rare so
            // the pending set grows into the hundreds of thousands.
            _ => {
                if rng.chance(0.001) {
                    wheel.clear();
                    heap.clear();
                    clock = SimTime::ZERO;
                }
            }
        }
    }

    // Drain both queues to the end; tails must match too.
    loop {
        let a = wheel.pop();
        let b = heap.pop();
        assert_eq!(a, b, "drain diverged after {pops} pops");
        if a.is_none() {
            break;
        }
        pops += 1;
    }
    assert!(wheel.is_empty() && heap.is_empty());
    assert!(
        pops > 100_000,
        "workload too small to be meaningful: {pops}"
    );
    assert!(tie_runs > 10_000, "tie coverage too small: {tie_runs}");
}

#[test]
fn wheel_matches_heap_under_horizon_pops() {
    // `pop_at_or_before` against the oracle's peek+pop equivalent.
    let mut rng = SimRng::new(0x0A11_0F12);
    let mut wheel: EventQueue<u32> = EventQueue::new();
    let mut heap: HeapEventQueue<u32> = HeapEventQueue::new();
    let mut clock = SimTime::ZERO;

    for i in 0..200_000u32 {
        if rng.chance(0.6) {
            let at = clock + SimDuration::from_nanos(rng.range_u64(0, 1 << 22));
            wheel.push(at, i);
            heap.push(at, i);
        } else {
            let horizon = clock + SimDuration::from_nanos(rng.range_u64(0, 1 << 18));
            let a = wheel.pop_at_or_before(horizon);
            let b = match heap.peek_time() {
                Some(t) if t <= horizon => heap.pop(),
                _ => None,
            };
            assert_eq!(a, b, "horizon pop diverged at step {i}");
            if let Some((t, _)) = a {
                clock = t;
            }
        }
    }
}
