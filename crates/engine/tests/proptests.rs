//! Property-based tests for the engine primitives.

use dibs_engine::queue::EventQueue;
use dibs_engine::rng::SimRng;
use dibs_engine::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always come out of the queue in nondecreasing time order, and
    /// every pushed event is popped exactly once.
    #[test]
    fn queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut popped = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some((t, i)) = q.pop() {
            prop_assert!(t >= last);
            // FIFO among equal timestamps: any earlier pop with the same time
            // must carry a smaller insertion index.
            if t == last {
                if let Some(&prev) = popped.last() {
                    if times[prev] == times[i] {
                        prop_assert!(prev < i);
                    }
                }
            }
            last = t;
            popped.push(i);
        }
        let mut sorted = popped.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..times.len()).collect::<Vec<_>>());
    }

    /// Serialization delay is monotone in size and antitone in rate.
    #[test]
    fn serialization_monotone(bytes in 1u64..1_000_000, rate in 1_000u64..100_000_000_000) {
        let d = SimDuration::serialization(bytes, rate);
        let d_bigger = SimDuration::serialization(bytes + 1, rate);
        let d_faster = SimDuration::serialization(bytes, rate * 2);
        prop_assert!(d_bigger >= d);
        prop_assert!(d_faster <= d);
        // Never zero for a nonzero packet.
        prop_assert!(d > SimDuration::ZERO);
    }

    /// Identical seeds yield identical streams; different seeds almost surely differ.
    #[test]
    fn rng_determinism(seed in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        prop_assert_eq!(va, vb);
    }

    /// sample_distinct returns exactly k distinct in-range values for all valid (n, k).
    #[test]
    fn sample_distinct_contract(n in 1usize..200, frac in 0.0f64..1.0, seed in any::<u64>()) {
        let k = ((n as f64) * frac) as usize;
        let mut rng = SimRng::new(seed);
        let s = rng.sample_distinct(n, k);
        prop_assert_eq!(s.len(), k);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k);
        prop_assert!(s.iter().all(|&x| x < n));
    }

    /// Time arithmetic: (t + d) - t == d for all representable pairs.
    #[test]
    fn time_addition_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(t);
        let d = SimDuration::from_nanos(d);
        prop_assert_eq!((t + d) - t, d);
    }
}
