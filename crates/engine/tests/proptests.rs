//! Property-based tests for the engine primitives, driven by the
//! deterministic harness in `dibs_engine::testkit`.

use dibs_engine::queue::EventQueue;
use dibs_engine::rng::SimRng;
use dibs_engine::testkit::{cases, vec_of};
use dibs_engine::time::{SimDuration, SimTime};

/// Events always come out of the queue in nondecreasing time order, and
/// every pushed event is popped exactly once.
#[test]
fn queue_is_a_stable_priority_queue() {
    cases("queue-stable", |rng, _| {
        let times = vec_of(rng, 1..200, |r| r.range_u64(0, 1_000_000));
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut popped: Vec<usize> = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some((t, i)) = q.pop() {
            assert!(t >= last, "time went backwards: {t:?} after {last:?}");
            // FIFO among equal timestamps: any earlier pop with the same
            // time must carry a smaller insertion index.
            if t == last {
                if let Some(&prev) = popped.last() {
                    if times[prev] == times[i] {
                        assert!(prev < i, "FIFO violated: {prev} popped before {i}");
                    }
                }
            }
            last = t;
            popped.push(i);
        }
        let mut sorted = popped.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..times.len()).collect::<Vec<_>>());
    });
}

/// Pops are totally ordered by `(time, seq)`: among equal times, insertion
/// order (the queue's internal sequence number) breaks the tie, with no
/// exceptions even under heavy timestamp collision.
#[test]
fn queue_pops_totally_ordered_by_time_then_seq() {
    cases("queue-total-order", |rng, _| {
        // Few distinct timestamps → many collisions → the tiebreak carries
        // the ordering most of the time.
        let distinct = rng.range_u64(1, 8);
        let times = vec_of(rng, 2..300, |r| r.range_u64(0, distinct) * 1000);
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut prev: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            let key = (t, i);
            if let Some(p) = prev {
                assert!(
                    p < key,
                    "pop order not strictly increasing by (time, seq): {p:?} then {key:?}"
                );
            }
            prev = Some(key);
        }
    });
}

/// Serialization delay is monotone in size and antitone in rate.
#[test]
fn serialization_monotone() {
    cases("serialization-monotone", |rng, _| {
        let bytes = rng.range_u64(1, 1_000_000);
        let rate = rng.range_u64(1_000, 100_000_000_000);
        let d = SimDuration::serialization(bytes, rate);
        let d_bigger = SimDuration::serialization(bytes + 1, rate);
        let d_faster = SimDuration::serialization(bytes, rate * 2);
        assert!(d_bigger >= d);
        assert!(d_faster <= d);
        // Never zero for a nonzero packet.
        assert!(d > SimDuration::ZERO);
    });
}

/// Identical seeds yield identical streams.
#[test]
fn rng_determinism() {
    cases("rng-determinism", |rng, _| {
        let seed = rng.next_u64();
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb, "seed {seed}");
    });
}

/// sample_distinct returns exactly k distinct in-range values for all
/// valid (n, k).
#[test]
fn sample_distinct_contract() {
    cases("sample-distinct", |rng, _| {
        let n = usize::try_from(rng.range_u64(1, 200)).unwrap();
        let k = rng.below(n + 1);
        let seed = rng.next_u64();
        let mut inner = SimRng::new(seed);
        let s = inner.sample_distinct(n, k);
        assert_eq!(s.len(), k, "n={n} k={k} seed={seed}");
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), k, "duplicates for n={n} k={k} seed={seed}");
        assert!(s.iter().all(|&x| x < n));
    });
}

/// Time arithmetic: (t + d) - t == d for all representable pairs.
#[test]
fn time_addition_roundtrip() {
    cases("time-roundtrip", |rng, _| {
        let t = SimTime::from_nanos(rng.range_u64(0, u64::MAX / 4));
        let d = SimDuration::from_nanos(rng.range_u64(0, u64::MAX / 4));
        assert_eq!((t + d) - t, d);
    });
}
