//! Sample collections, percentiles, and distribution summaries.

use dibs_json::{FromJson, Json, JsonError, ObjReader, ToJson};

/// A collection of scalar samples with exact percentile queries.
///
/// Samples are stored raw (runs here are bounded to at most a few million
/// samples) and sorted lazily on first query.
///
/// # Examples
///
/// ```
/// use dibs_stats::summary::Samples;
///
/// let mut s = Samples::new();
/// for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
///     s.push(v);
/// }
/// assert_eq!(s.percentile(0.5), Some(3.0));
/// assert_eq!(s.max(), Some(5.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Samples::default()
    }

    /// Adds a sample.
    ///
    /// # Panics
    ///
    /// Panics on NaN (NaN would poison ordering).
    pub fn push(&mut self, v: f64) {
        assert!(!v.is_nan(), "NaN sample");
        self.values.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw values (unordered).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            self.sorted = true;
        }
    }

    /// Exact percentile `p` in `[0, 1]` using the nearest-rank method.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let p = p.clamp(0.0, 1.0);
        // p in [0,1] bounds the product by len, which is a usize.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = ((p * self.values.len() as f64).ceil() as usize).clamp(1, self.values.len());
        Some(self.values[rank - 1])
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
    }

    /// Smallest sample.
    pub fn min(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.values.first().copied()
    }

    /// Largest sample.
    pub fn max(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.values.last().copied()
    }

    /// Full summary (None if empty).
    pub fn summarize(&mut self) -> Option<Summary> {
        if self.values.is_empty() {
            return None;
        }
        Some(Summary {
            count: self.len() as u64,
            mean: self.mean().expect("nonempty"),
            min: self.min().expect("nonempty"),
            p50: self.percentile(0.50).expect("nonempty"),
            p90: self.percentile(0.90).expect("nonempty"),
            p99: self.percentile(0.99).expect("nonempty"),
            p999: self.percentile(0.999).expect("nonempty"),
            max: self.max().expect("nonempty"),
        })
    }

    /// Empirical CDF as `(value, cumulative fraction)` points, downsampled
    /// to at most `max_points` (for figure output).
    pub fn cdf_points(&mut self, max_points: usize) -> Vec<(f64, f64)> {
        if self.values.is_empty() || max_points == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.values.len();
        let step = (n as f64 / max_points as f64).max(1.0);
        let mut pts = Vec::new();
        let mut i = 0.0;
        // i stays in [0, n]: a nonnegative f64 bounded by a usize.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        while (i as usize) < n {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let idx = i as usize;
            pts.push((self.values[idx], (idx + 1) as f64 / n as f64));
            i += step;
        }
        if pts.last().map(|&(v, _)| v) != Some(self.values[n - 1]) {
            pts.push((self.values[n - 1], 1.0));
        }
        pts
    }
}

/// A distribution summary, serializable for experiment records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub count: u64,
    /// Mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile (the paper's headline metric for QCT/FCT).
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Maximum.
    pub max: f64,
}

macro_rules! summary_fields {
    ($m:ident) => {
        $m!(count: u64, mean: f64, min: f64, p50: f64, p90: f64, p99: f64, p999: f64, max: f64)
    };
}

impl ToJson for Summary {
    fn to_json(&self) -> Json {
        macro_rules! emit {
            ($($f:ident: $t:ty),*) => {
                Json::Obj(vec![$((stringify!($f).to_string(), self.$f.to_json())),*])
            };
        }
        summary_fields!(emit)
    }
}

impl FromJson for Summary {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut r = ObjReader::new(v, "Summary")?;
        macro_rules! read {
            ($($f:ident: $t:ty),*) => {{
                let s = Summary { $($f: r.required::<$t>(stringify!($f))?,)* };
                r.deny_unknown()?;
                Ok(s)
            }};
        }
        summary_fields!(read)
    }
}

/// Jain's fairness index over per-flow throughputs (§5.6): 1 is perfectly
/// fair; `1/n` is maximally unfair.
///
/// Returns `None` for empty input or all-zero throughputs.
pub fn jain_index(throughputs: &[f64]) -> Option<f64> {
    if throughputs.is_empty() {
        return None;
    }
    let sum: f64 = throughputs.iter().sum();
    let sum_sq: f64 = throughputs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return None;
    }
    Some(sum * sum / (throughputs.len() as f64 * sum_sq))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = Samples::new();
        for v in 1..=100 {
            s.push(v as f64);
        }
        assert_eq!(s.percentile(0.50), Some(50.0));
        assert_eq!(s.percentile(0.99), Some(99.0));
        assert_eq!(s.percentile(1.0), Some(100.0));
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(100.0));
    }

    #[test]
    fn empty_yields_none() {
        let mut s = Samples::new();
        assert_eq!(s.percentile(0.5), None);
        assert_eq!(s.mean(), None);
        assert!(s.summarize().is_none());
        assert!(s.cdf_points(10).is_empty());
    }

    #[test]
    fn single_sample() {
        let mut s = Samples::new();
        s.push(7.0);
        let sum = s.summarize().unwrap();
        assert_eq!(sum.p50, 7.0);
        assert_eq!(sum.p99, 7.0);
        assert_eq!(sum.count, 1);
    }

    #[test]
    fn push_after_query_resorts() {
        let mut s = Samples::new();
        s.push(5.0);
        assert_eq!(s.percentile(0.5), Some(5.0));
        s.push(1.0);
        assert_eq!(s.percentile(0.0), Some(1.0));
    }

    #[test]
    fn cdf_points_cover_range() {
        let mut s = Samples::new();
        for v in 0..1000 {
            s.push(v as f64);
        }
        let pts = s.cdf_points(50);
        assert!(pts.len() <= 52);
        assert_eq!(pts.last().unwrap().1, 1.0);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Samples::new().push(f64::NAN);
    }

    #[test]
    fn jain_extremes() {
        assert_eq!(jain_index(&[]), None);
        assert_eq!(jain_index(&[0.0, 0.0]), None);
        let fair = jain_index(&[5.0, 5.0, 5.0, 5.0]).unwrap();
        assert!((fair - 1.0).abs() < 1e-12);
        let unfair = jain_index(&[1.0, 0.0, 0.0, 0.0]).unwrap();
        assert!((unfair - 0.25).abs() < 1e-12);
        // Mild variance stays high.
        let mild = jain_index(&[0.9, 1.0, 1.1, 1.0]).unwrap();
        assert!(mild > 0.99);
    }
}
