//! Minimal dependency-free SVG line charts for the figure binaries.
//!
//! Every `ExperimentRecord` can render itself as a multi-series line chart
//! (one series per metric), close enough to the paper's gnuplot figures for
//! eyeball comparison. The renderer supports linear and log-10 y axes —
//! several paper figures (7, 12) are log-scale.

use crate::record::ExperimentRecord;
use std::fmt::Write as _;

/// Chart dimensions and margins, in SVG user units.
const WIDTH: f64 = 760.0;
const HEIGHT: f64 = 440.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 210.0; // Room for the legend.
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 55.0;

/// A qualitative 10-color palette (Tableau-like).
const COLORS: [&str; 10] = [
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
    "#9c755f", "#bab0ac",
];

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points in x order; non-finite y values break the line.
    pub points: Vec<(f64, f64)>,
}

/// A multi-series line chart.
#[derive(Debug, Clone)]
pub struct LineChart {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Log-10 y axis (paper figures 7/12/14 are log-scale).
    pub log_y: bool,
    /// The series to draw.
    pub series: Vec<Series>,
}

impl LineChart {
    /// Builds a chart from an experiment record: one series per metric.
    pub fn from_record(record: &ExperimentRecord, y_label: &str, log_y: bool) -> Self {
        let series = record
            .metric_names()
            .into_iter()
            .map(|m| Series {
                points: record
                    .points
                    .iter()
                    .filter_map(|p| p.y.get(&m).map(|&v| (p.x, v)))
                    .collect(),
                name: m,
            })
            .collect();
        LineChart {
            title: format!("{} — {}", record.id, record.title),
            x_label: record.x_label.clone(),
            y_label: y_label.to_string(),
            log_y,
            series,
        }
    }

    fn bounds(&self) -> Option<(f64, f64, f64, f64)> {
        let mut xs: Vec<f64> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        for s in &self.series {
            for &(x, y) in &s.points {
                if x.is_finite() {
                    xs.push(x);
                }
                if y.is_finite() && (!self.log_y || y > 0.0) {
                    ys.push(y);
                }
            }
        }
        if xs.is_empty() || ys.is_empty() {
            return None;
        }
        let (x0, x1) = (
            xs.iter().cloned().fold(f64::INFINITY, f64::min),
            xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        );
        let (y0, y1) = (
            ys.iter().cloned().fold(f64::INFINITY, f64::min),
            ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        );
        Some((x0, x1, y0, y1))
    }

    /// Renders the chart to an SVG document.
    ///
    /// Charts with no finite data render a placeholder note instead of
    /// panicking.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
        );
        let _ = write!(
            out,
            r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
        );
        let _ = write!(
            out,
            r#"<text x="{}" y="22" font-size="15" text-anchor="middle">{}</text>"#,
            (MARGIN_L + WIDTH - MARGIN_R) / 2.0,
            xml_escape(&self.title)
        );

        let Some((x0, x1, mut y0, mut y1)) = self.bounds() else {
            let _ = write!(
                out,
                r#"<text x="{}" y="{}" font-size="13" text-anchor="middle">no data</text></svg>"#,
                WIDTH / 2.0,
                HEIGHT / 2.0
            );
            return out;
        };
        // Pad degenerate ranges.
        let x_span = if x1 > x0 { x1 - x0 } else { 1.0 };
        if self.log_y {
            if y1 <= y0 {
                y1 = y0 * 10.0;
            }
        } else {
            if y1 <= y0 {
                y1 = y0 + 1.0;
            }
            y0 = y0.min(0.0).min(y0); // Anchor linear charts at <= 0 when data is positive.
            if y0 > 0.0 {
                y0 = 0.0;
            }
        }

        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let sx = |x: f64| MARGIN_L + (x - x0) / x_span * plot_w;
        let sy = |y: f64| -> f64 {
            let t = if self.log_y {
                (y.ln() - y0.ln()) / (y1.ln() - y0.ln())
            } else {
                (y - y0) / (y1 - y0)
            };
            MARGIN_T + (1.0 - t.clamp(0.0, 1.0)) * plot_h
        };

        // Axes.
        let _ = write!(
            out,
            r#"<line x1="{MARGIN_L}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
            HEIGHT - MARGIN_B,
            WIDTH - MARGIN_R,
            HEIGHT - MARGIN_B
        );
        let _ = write!(
            out,
            r#"<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" y2="{}" stroke="black"/>"#,
            HEIGHT - MARGIN_B
        );
        // X ticks (5) and Y ticks (5 or decades).
        for i in 0..=4 {
            let x = x0 + x_span * f64::from(i) / 4.0;
            let px = sx(x);
            let _ = write!(
                out,
                r#"<line x1="{px}" y1="{}" x2="{px}" y2="{}" stroke="black"/><text x="{px}" y="{}" font-size="11" text-anchor="middle">{}</text>"#,
                HEIGHT - MARGIN_B,
                HEIGHT - MARGIN_B + 5.0,
                HEIGHT - MARGIN_B + 18.0,
                fmt_tick(x)
            );
        }
        let y_ticks: Vec<f64> = if self.log_y {
            let mut t = Vec::new();
            let mut d = 10f64.powf(y0.log10().floor());
            while d <= y1 * 1.0001 {
                if d >= y0 * 0.9999 {
                    t.push(d);
                }
                d *= 10.0;
            }
            if t.is_empty() {
                t.push(y0);
                t.push(y1);
            }
            t
        } else {
            (0..=4)
                .map(|i| y0 + (y1 - y0) * f64::from(i) / 4.0)
                .collect()
        };
        for &y in &y_ticks {
            let py = sy(y);
            let _ = write!(
                out,
                r#"<line x1="{}" y1="{py}" x2="{MARGIN_L}" y2="{py}" stroke="black"/><text x="{}" y="{}" font-size="11" text-anchor="end">{}</text>"#,
                MARGIN_L - 5.0,
                MARGIN_L - 8.0,
                py + 4.0,
                fmt_tick(y)
            );
            // Light gridline.
            let _ = write!(
                out,
                r##"<line x1="{MARGIN_L}" y1="{py}" x2="{}" y2="{py}" stroke="#dddddd" stroke-width="0.5"/>"##,
                WIDTH - MARGIN_R
            );
        }
        // Axis labels.
        let _ = write!(
            out,
            r#"<text x="{}" y="{}" font-size="13" text-anchor="middle">{}</text>"#,
            (MARGIN_L + WIDTH - MARGIN_R) / 2.0,
            HEIGHT - 12.0,
            xml_escape(&self.x_label)
        );
        let _ = write!(
            out,
            r#"<text x="18" y="{}" font-size="13" text-anchor="middle" transform="rotate(-90 18 {})">{}</text>"#,
            (MARGIN_T + HEIGHT - MARGIN_B) / 2.0,
            (MARGIN_T + HEIGHT - MARGIN_B) / 2.0,
            xml_escape(&self.y_label)
        );

        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let color = COLORS[i % COLORS.len()];
            let mut path = String::new();
            let mut pen_down = false;
            for &(x, y) in &s.points {
                if !y.is_finite() || (self.log_y && y <= 0.0) {
                    pen_down = false;
                    continue;
                }
                let (px, py) = (sx(x), sy(y));
                let _ = write!(path, "{}{px:.1},{py:.1} ", if pen_down { "L" } else { "M" });
                pen_down = true;
                let _ = write!(
                    out,
                    r#"<circle cx="{px:.1}" cy="{py:.1}" r="3" fill="{color}"/>"#
                );
            }
            let _ = write!(
                out,
                r#"<path d="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
                path.trim_end()
            );
            // Legend entry.
            let ly = MARGIN_T + 16.0 * i as f64;
            let lx = WIDTH - MARGIN_R + 12.0;
            let _ = write!(
                out,
                r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="3"/><text x="{}" y="{}" font-size="11">{}</text>"#,
                lx + 18.0,
                lx + 24.0,
                ly + 4.0,
                xml_escape(&s.name)
            );
        }
        out.push_str("</svg>");
        out
    }
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 10_000.0 || v.abs() < 0.01 {
        format!("{v:.0e}")
    } else if v.fract().abs() < 1e-9 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SeriesPoint;

    fn sample_chart(log_y: bool) -> LineChart {
        LineChart {
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            log_y,
            series: vec![
                Series {
                    name: "a".into(),
                    points: vec![(1.0, 10.0), (2.0, 20.0), (3.0, 15.0)],
                },
                Series {
                    name: "b".into(),
                    points: vec![(1.0, 5.0), (2.0, f64::NAN), (3.0, 40.0)],
                },
            ],
        }
    }

    #[test]
    fn renders_valid_svg_linear_and_log() {
        for log_y in [false, true] {
            let svg = sample_chart(log_y).render();
            assert!(svg.starts_with("<svg"));
            assert!(svg.ends_with("</svg>"));
            // Two series paths, legend labels present.
            assert_eq!(svg.matches("<path").count(), 2);
            assert!(svg.contains(">a</text>"));
            assert!(svg.contains(">b</text>"));
            // 5 finite points drawn as circles.
            assert_eq!(svg.matches("<circle").count(), 5);
        }
    }

    #[test]
    fn nan_breaks_the_line() {
        let svg = sample_chart(false).render();
        // Series b has a NaN gap, so its path contains two `M` segments and
        // no `L` joining across the gap (3 M total: one for series a, two
        // for series b).
        assert_eq!(svg.matches('M').count(), 3);
    }

    #[test]
    fn empty_chart_renders_placeholder() {
        let c = LineChart {
            title: "empty".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            log_y: false,
            series: vec![],
        };
        let svg = c.render();
        assert!(svg.contains("no data"));
    }

    #[test]
    fn from_record_one_series_per_metric() {
        let mut r = ExperimentRecord::new("id", "title", "x");
        r.push(SeriesPoint::at(1.0).with("m1", 2.0).with("m2", 3.0));
        r.push(SeriesPoint::at(2.0).with("m1", 4.0).with("m2", 5.0));
        let c = LineChart::from_record(&r, "ms", false);
        assert_eq!(c.series.len(), 2);
        assert_eq!(c.series[0].points.len(), 2);
        let svg = c.render();
        assert!(svg.contains("m1") && svg.contains("m2"));
    }

    #[test]
    fn log_axis_rejects_nonpositive() {
        let c = LineChart {
            title: "log".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            log_y: true,
            series: vec![Series {
                name: "s".into(),
                points: vec![(1.0, 0.0), (2.0, 100.0), (3.0, 10.0)],
            }],
        };
        let svg = c.render();
        // Only the two positive points are drawn.
        assert_eq!(svg.matches("<circle").count(), 2);
    }

    #[test]
    fn escaping() {
        assert_eq!(xml_escape("a<b&c>d"), "a&lt;b&amp;c&gt;d");
        assert_eq!(fmt_tick(0.0), "0");
        assert_eq!(fmt_tick(42.0), "42");
        assert_eq!(fmt_tick(120000.0), "1e5");
    }
}
