//! Experiment result records: the rows the benchmark harness prints and
//! the JSON it persists for EXPERIMENTS.md.

use dibs_json::{FromJson, Json, JsonError, ObjReader, ToJson};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One point of one series of a figure: an x value (the swept parameter)
/// and named y values (e.g. `qct_p99_ms`, `bg_fct_p99_ms`).
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// The swept parameter value.
    pub x: f64,
    /// Named metrics at this point.
    pub y: BTreeMap<String, f64>,
}

impl SeriesPoint {
    /// Creates a point at `x`.
    pub fn at(x: f64) -> Self {
        SeriesPoint {
            x,
            y: BTreeMap::new(),
        }
    }

    /// Adds a metric (builder style).
    pub fn with(mut self, key: &str, value: f64) -> Self {
        self.y.insert(key.to_string(), value);
        self
    }
}

/// A complete experiment record: identifies the figure/table, the fixed
/// parameters, and the measured series.
#[derive(Debug, Clone)]
pub struct ExperimentRecord {
    /// Experiment id, e.g. `fig08_bg_interarrival`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Name of the swept parameter (x axis).
    pub x_label: String,
    /// Fixed configuration, stringified.
    pub params: BTreeMap<String, String>,
    /// Measured points, in x order.
    pub points: Vec<SeriesPoint>,
}

impl ExperimentRecord {
    /// Creates an empty record.
    pub fn new(id: &str, title: &str, x_label: &str) -> Self {
        ExperimentRecord {
            id: id.to_string(),
            title: title.to_string(),
            x_label: x_label.to_string(),
            params: BTreeMap::new(),
            points: Vec::new(),
        }
    }

    /// Records a fixed parameter.
    pub fn param(&mut self, key: &str, value: impl ToString) -> &mut Self {
        self.params.insert(key.to_string(), value.to_string());
        self
    }

    /// Appends a measured point.
    pub fn push(&mut self, point: SeriesPoint) {
        self.points.push(point);
    }

    /// Every metric name appearing in any point, sorted.
    pub fn metric_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .points
            .iter()
            .flat_map(|p| p.y.keys().cloned())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Renders an aligned text table (what the figure binaries print).
    pub fn to_table(&self) -> String {
        let metrics = self.metric_names();
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        for (k, v) in &self.params {
            let _ = writeln!(out, "#   {k} = {v}");
        }
        let _ = write!(out, "{:>16}", self.x_label);
        for m in &metrics {
            let _ = write!(out, " {m:>18}");
        }
        let _ = writeln!(out);
        for p in &self.points {
            let _ = write!(out, "{:>16.4}", p.x);
            for m in &metrics {
                match p.y.get(m) {
                    Some(v) => {
                        let _ = write!(out, " {v:>18.4}");
                    }
                    None => {
                        let _ = write!(out, " {:>18}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        ToJson::to_json(self).render_pretty()
    }

    /// Parses a record back from JSON.
    pub fn from_json(s: &str) -> Result<Self, JsonError> {
        FromJson::from_json(&Json::parse(s)?)
    }
}

impl ToJson for SeriesPoint {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("x".to_string(), self.x.to_json()),
            ("y".to_string(), self.y.to_json()),
        ])
    }
}

impl FromJson for SeriesPoint {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut r = ObjReader::new(v, "SeriesPoint")?;
        let p = SeriesPoint {
            x: r.required("x")?,
            y: r.required("y")?,
        };
        r.deny_unknown()?;
        Ok(p)
    }
}

impl ToJson for ExperimentRecord {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".to_string(), self.id.to_json()),
            ("title".to_string(), self.title.to_json()),
            ("x_label".to_string(), self.x_label.to_json()),
            ("params".to_string(), self.params.to_json()),
            ("points".to_string(), self.points.to_json()),
        ])
    }
}

impl FromJson for ExperimentRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut r = ObjReader::new(v, "ExperimentRecord")?;
        let rec = ExperimentRecord {
            id: r.required("id")?,
            title: r.required("title")?,
            x_label: r.required("x_label")?,
            params: r.required("params")?,
            points: r.required("points")?,
        };
        r.deny_unknown()?;
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentRecord {
        let mut r = ExperimentRecord::new("fig09", "Variable query arrival rate", "qps");
        r.param("incast_degree", 40).param("response_kb", 20);
        r.push(
            SeriesPoint::at(300.0)
                .with("qct_p99_ms", 12.5)
                .with("fct_p99_ms", 2.1),
        );
        r.push(
            SeriesPoint::at(500.0)
                .with("qct_p99_ms", 13.0)
                .with("fct_p99_ms", 2.2),
        );
        r
    }

    #[test]
    fn json_roundtrip() {
        let r = sample();
        let back = ExperimentRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(back.id, "fig09");
        assert_eq!(back.points, r.points);
        assert_eq!(back.params, r.params);
    }

    #[test]
    fn table_renders_all_columns() {
        let t = sample().to_table();
        assert!(t.contains("qct_p99_ms"));
        assert!(t.contains("fct_p99_ms"));
        assert!(t.contains("300.0000"));
        assert!(t.contains("incast_degree = 40"));
    }

    #[test]
    fn missing_metric_renders_dash() {
        let mut r = ExperimentRecord::new("x", "t", "p");
        r.push(SeriesPoint::at(1.0).with("a", 1.0));
        r.push(SeriesPoint::at(2.0).with("b", 2.0));
        let t = r.to_table();
        assert!(t.contains('-'));
        assert_eq!(r.metric_names(), vec!["a".to_string(), "b".to_string()]);
    }
}
