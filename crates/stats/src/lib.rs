#![warn(missing_docs)]

//! Metrics and result records for the DIBS reproduction.
//!
//! * [`summary`] — sample collections, exact percentiles, Jain's index.
//! * [`counters`] — network-wide event counters.
//! * [`timeseries`] — detour scatter logs and occupancy snapshots (Fig 2).
//! * [`record`] — serializable experiment records and table rendering.
//! * [`svg`] — dependency-free SVG line charts of those records.

pub mod counters;
pub mod record;
pub mod summary;
pub mod svg;
pub mod timeseries;

pub use counters::NetCounters;
pub use record::{ExperimentRecord, SeriesPoint};
pub use summary::{jain_index, Samples, Summary};
pub use svg::{LineChart, Series};
pub use timeseries::{DetourEvent, DetourLog, OccupancySnapshot, TimeSeries};
