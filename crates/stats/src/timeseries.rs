//! Time-series collectors for the Figure 2 style diagnostics.

use dibs_engine::time::SimTime;

/// A `(time, value)` series.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    /// Samples in insertion (time) order, seconds + value.
    pub points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, t: SimTime, v: f64) {
        self.points.push((t.as_secs_f64(), v));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Maximum value, if any.
    pub fn max_value(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(m) => m.max(v),
            })
        })
    }
}

/// One detour event: which switch detoured a packet and when (Fig 2a plots
/// exactly this scatter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetourEvent {
    /// Time in seconds.
    pub time_s: f64,
    /// Switch index (topology `SwitchId`).
    pub switch: u32,
    /// Switch layer: 0 = edge, 1 = aggregation, 2 = core, 3 = other.
    pub layer: u8,
}

/// An append-only log of detour events with a hard cap (the scatter only
/// needs enough points to draw; unbounded logging would dominate memory in
/// extreme runs).
#[derive(Debug, Clone)]
pub struct DetourLog {
    /// Captured events (up to `cap`).
    pub events: Vec<DetourEvent>,
    /// Capacity cap.
    pub cap: usize,
    /// Events observed in total, including those beyond the cap.
    pub observed: u64,
}

impl DetourLog {
    /// Creates a log capped at `cap` events.
    pub fn new(cap: usize) -> Self {
        DetourLog {
            events: Vec::new(),
            cap,
            observed: 0,
        }
    }

    /// Records a detour at `switch`/`layer`.
    pub fn record(&mut self, time: SimTime, switch: u32, layer: u8) {
        self.observed += 1;
        if self.events.len() < self.cap {
            self.events.push(DetourEvent {
                time_s: time.as_secs_f64(),
                switch,
                layer,
            });
        }
    }

    /// Whether events were discarded due to the cap.
    pub fn truncated(&self) -> bool {
        self.observed > self.events.len() as u64
    }
}

/// A buffer-occupancy snapshot for one switch: one value per port (Fig 2b's
/// bar groups).
#[derive(Debug, Clone)]
pub struct OccupancySnapshot {
    /// Time in seconds.
    pub time_s: f64,
    /// `per_switch[s][p]` = packets queued on port `p` of switch `s`.
    pub per_switch: Vec<Vec<usize>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accumulates() {
        let mut ts = TimeSeries::new();
        assert!(ts.is_empty());
        ts.push(SimTime::from_millis(1), 3.0);
        ts.push(SimTime::from_millis(2), 5.0);
        ts.push(SimTime::from_millis(3), 4.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.max_value(), Some(5.0));
        assert_eq!(ts.points[0], (0.001, 3.0));
    }

    #[test]
    fn detour_log_caps() {
        let mut log = DetourLog::new(3);
        for i in 0..10 {
            log.record(SimTime::from_micros(i), u32::try_from(i).unwrap(), 0);
        }
        assert_eq!(log.events.len(), 3);
        assert_eq!(log.observed, 10);
        assert!(log.truncated());
    }

    #[test]
    fn empty_series_max() {
        assert_eq!(TimeSeries::new().max_value(), None);
    }

    #[test]
    fn empty_series_is_empty_and_default() {
        let ts = TimeSeries::default();
        assert!(ts.is_empty());
        assert_eq!(ts.len(), 0);
        assert_eq!(ts.points, Vec::new());
    }

    #[test]
    fn single_sample_series() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_micros(250), 7.5);
        assert!(!ts.is_empty());
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.max_value(), Some(7.5));
        assert_eq!(ts.points[0], (0.000_25, 7.5));
    }

    #[test]
    fn max_handles_negative_values() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::ZERO, -3.0);
        ts.push(SimTime::from_micros(1), -1.5);
        assert_eq!(ts.max_value(), Some(-1.5));
    }

    #[test]
    fn detour_log_under_cap_is_not_truncated() {
        let mut log = DetourLog::new(8);
        log.record(SimTime::from_micros(1), 3, 1);
        assert_eq!(log.events.len(), 1);
        assert_eq!(log.observed, 1);
        assert!(!log.truncated());
        assert_eq!(
            log.events[0],
            DetourEvent {
                time_s: 1e-6,
                switch: 3,
                layer: 1
            }
        );
    }

    #[test]
    fn detour_log_zero_cap_records_nothing_but_counts() {
        let mut log = DetourLog::new(0);
        log.record(SimTime::ZERO, 0, 0);
        log.record(SimTime::from_micros(1), 1, 2);
        assert!(log.events.is_empty());
        assert_eq!(log.observed, 2);
        assert!(log.truncated());
    }
}
