//! Network-wide event counters.

use dibs_json::{FromJson, Json, JsonError, ObjReader, ToJson};

/// Aggregate counters across a whole simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Data + ack packets injected by hosts.
    pub packets_sent: u64,
    /// Packets delivered to their destination host.
    pub packets_delivered: u64,
    /// Drops due to full buffers.
    pub drops_buffer: u64,
    /// Drops due to TTL expiry (Fig 13).
    pub drops_ttl: u64,
    /// pFabric priority displacements.
    pub drops_displaced: u64,
    /// Packets dropped at a host's own (bounded) NIC queue.
    pub drops_host_nic: u64,
    /// Packets destroyed by injected faults: probabilistic drop/corrupt
    /// profiles, crashed-switch blackholing, and frames cut by a link
    /// going down mid-flight.
    pub drops_fault: u64,
    /// Packets detoured at least one time... incremented per detour event.
    pub detours: u64,
    /// Packets that experienced at least one detour, counted at delivery.
    pub delivered_detoured: u64,
    /// ECN CE marks applied.
    pub ecn_marks: u64,
    /// Sender retransmission timeouts.
    pub rto_timeouts: u64,
    /// Sender fast retransmits.
    pub fast_retransmits: u64,
    /// Timeouts later proven spurious via timestamp echo (Eifel undo).
    pub spurious_timeouts: u64,
    /// Switch hops traversed by all delivered packets (path-length stats).
    pub delivered_hops: u64,
    /// Delivered *data* packets belonging to query (incast) flows.
    pub query_pkts_delivered: u64,
    /// Delivered query data packets that took at least one detour.
    pub query_pkts_detoured: u64,
    /// Delivered *data* packets belonging to background flows.
    pub bg_pkts_delivered: u64,
    /// Delivered background data packets that took at least one detour.
    pub bg_pkts_detoured: u64,
}

impl NetCounters {
    /// Total drops of any kind.
    pub fn total_drops(&self) -> u64 {
        self.drops_buffer
            + self.drops_ttl
            + self.drops_displaced
            + self.drops_host_nic
            + self.drops_fault
    }

    /// Fraction of delivered *background* data packets that were detoured
    /// (the paper reports ~1% even under load).
    pub fn bg_detoured_fraction(&self) -> f64 {
        if self.bg_pkts_delivered == 0 {
            0.0
        } else {
            self.bg_pkts_detoured as f64 / self.bg_pkts_delivered as f64
        }
    }

    /// Of all detoured data packets, the fraction belonging to query
    /// traffic (the paper reports > 90%).
    pub fn detoured_query_share(&self) -> f64 {
        let total = self.query_pkts_detoured + self.bg_pkts_detoured;
        if total == 0 {
            0.0
        } else {
            self.query_pkts_detoured as f64 / total as f64
        }
    }

    /// Fraction of delivered packets that took at least one detour.
    pub fn detoured_fraction(&self) -> f64 {
        if self.packets_delivered == 0 {
            0.0
        } else {
            self.delivered_detoured as f64 / self.packets_delivered as f64
        }
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &NetCounters) {
        self.packets_sent += other.packets_sent;
        self.packets_delivered += other.packets_delivered;
        self.drops_buffer += other.drops_buffer;
        self.drops_ttl += other.drops_ttl;
        self.drops_displaced += other.drops_displaced;
        self.drops_host_nic += other.drops_host_nic;
        self.drops_fault += other.drops_fault;
        self.detours += other.detours;
        self.delivered_detoured += other.delivered_detoured;
        self.ecn_marks += other.ecn_marks;
        self.rto_timeouts += other.rto_timeouts;
        self.fast_retransmits += other.fast_retransmits;
        self.spurious_timeouts += other.spurious_timeouts;
        self.delivered_hops += other.delivered_hops;
        self.query_pkts_delivered += other.query_pkts_delivered;
        self.query_pkts_detoured += other.query_pkts_detoured;
        self.bg_pkts_delivered += other.bg_pkts_delivered;
        self.bg_pkts_detoured += other.bg_pkts_detoured;
    }
}

/// Expands once per counter field so serialization, parsing, and merging
/// can never drift out of sync with the struct definition.
macro_rules! counter_fields {
    ($m:ident) => {
        $m!(
            packets_sent,
            packets_delivered,
            drops_buffer,
            drops_ttl,
            drops_displaced,
            drops_host_nic,
            drops_fault,
            detours,
            delivered_detoured,
            ecn_marks,
            rto_timeouts,
            fast_retransmits,
            spurious_timeouts,
            delivered_hops,
            query_pkts_delivered,
            query_pkts_detoured,
            bg_pkts_delivered,
            bg_pkts_detoured
        )
    };
}

impl ToJson for NetCounters {
    fn to_json(&self) -> Json {
        macro_rules! emit {
            ($($f:ident),*) => {
                Json::Obj(vec![$((stringify!($f).to_string(), self.$f.to_json())),*])
            };
        }
        counter_fields!(emit)
    }
}

impl FromJson for NetCounters {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut r = ObjReader::new(v, "NetCounters")?;
        macro_rules! read {
            ($($f:ident),*) => {{
                let c = NetCounters {
                    $($f: r.optional(stringify!($f), 0)?,)*
                };
                r.deny_unknown()?;
                Ok(c)
            }};
        }
        counter_fields!(read)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let c = NetCounters {
            packets_delivered: 100,
            delivered_detoured: 25,
            drops_buffer: 3,
            drops_ttl: 2,
            drops_displaced: 1,
            drops_fault: 4,
            ..Default::default()
        };
        assert_eq!(c.total_drops(), 10);
        assert!((c.detoured_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(NetCounters::default().detoured_fraction(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = NetCounters {
            packets_sent: 10,
            detours: 5,
            ..Default::default()
        };
        let b = NetCounters {
            packets_sent: 7,
            detours: 1,
            ecn_marks: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.packets_sent, 17);
        assert_eq!(a.detours, 6);
        assert_eq!(a.ecn_marks, 2);
    }

    #[test]
    fn merge_across_shards_equals_direct_sum() {
        // Eight per-worker shards, each with a distinct per-field pattern,
        // folded pairwise in two different orders: both folds must equal
        // the straight per-field sum (merge is associative + commutative).
        let shards: Vec<NetCounters> = (0..8u64)
            .map(|i| NetCounters {
                packets_sent: 10 + i,
                packets_delivered: 20 + 2 * i,
                drops_buffer: i % 3,
                drops_ttl: i % 2,
                drops_host_nic: i,
                detours: 100 * i,
                delivered_detoured: 3 * i,
                ecn_marks: 7 * i,
                rto_timeouts: i / 2,
                delivered_hops: 50 + i,
                query_pkts_delivered: 5 * i,
                bg_pkts_delivered: 4 * i,
                bg_pkts_detoured: i % 4,
                ..Default::default()
            })
            .collect();

        let mut forward = NetCounters::default();
        for s in &shards {
            forward.merge(s);
        }
        let mut reverse = NetCounters::default();
        for s in shards.iter().rev() {
            reverse.merge(s);
        }
        assert_eq!(forward, reverse);

        assert_eq!(forward.packets_sent, (0..8).map(|i| 10 + i).sum::<u64>());
        assert_eq!(forward.detours, (0..8).map(|i| 100 * i).sum::<u64>());
        assert_eq!(
            forward.total_drops(),
            shards.iter().map(NetCounters::total_drops).sum::<u64>()
        );

        // Merging the identity changes nothing.
        let before = forward;
        forward.merge(&NetCounters::default());
        assert_eq!(forward, before);
    }

    #[test]
    fn fractions_on_empty_counters_are_zero_not_nan() {
        let c = NetCounters::default();
        assert_eq!(c.bg_detoured_fraction(), 0.0);
        assert_eq!(c.detoured_query_share(), 0.0);
        assert_eq!(c.detoured_fraction(), 0.0);
    }

    #[test]
    fn json_roundtrip() {
        let c = NetCounters {
            packets_sent: 10,
            drops_ttl: 3,
            bg_pkts_detoured: 1,
            ..Default::default()
        };
        let parsed = NetCounters::from_json(&c.to_json()).unwrap();
        assert_eq!(parsed, c);
        let reparsed =
            NetCounters::from_json(&Json::parse(&c.to_json().render()).unwrap()).unwrap();
        assert_eq!(reparsed, c);
    }
}
