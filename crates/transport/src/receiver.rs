//! The TCP receiver: cumulative acks, out-of-order reassembly, ECN echo.
//!
//! DIBS deliberately reorders packets, so the receiver's reassembly queue is
//! exercised heavily. Two acknowledgment modes are supported:
//!
//! * **Per-packet immediate acks** (`ack_every = 1`, the default): every
//!   data packet is acked at once, with the ECN Echo bit relaying that
//!   packet's CE mark. This gives the sender an exact marked-byte count.
//! * **DCTCP delayed acks** (`ack_every = m > 1`): the state machine from
//!   the DCTCP paper [18] — one cumulative ack per `m` in-order packets,
//!   except that a change in the CE state triggers an immediate ack for the
//!   just-ended run (carrying that run's ECE), and out-of-order, duplicate,
//!   gap-filling, or stream-completing packets are always acked
//!   immediately. These immediate-ack rules also make a delayed-ack timer
//!   unnecessary: every situation in which the sender is blocked on the
//!   final unacked packet generates an immediate ack.

use crate::IdGen;
use dibs_engine::time::SimTime;
use dibs_net::ids::{FlowId, HostId};
use dibs_net::packet::Packet;
use std::collections::BTreeMap;

/// Receiver-side counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReceiverCounters {
    /// Data packets accepted (in order or buffered).
    pub packets_received: u64,
    /// Packets that arrived out of order and were buffered.
    pub out_of_order: u64,
    /// Packets that duplicated already-received data.
    pub duplicates: u64,
    /// Acks emitted.
    pub acks_sent: u64,
}

/// Reassembly and acknowledgment state for one flow.
#[derive(Debug)]
pub struct TcpReceiver {
    flow: FlowId,
    /// The receiving host (source of acks).
    host: HostId,
    /// The sending host (destination of acks).
    peer: HostId,
    expected: u64,
    rcv_nxt: u64,
    /// Out-of-order segments: start -> end, non-overlapping, coalesced.
    ooo: BTreeMap<u64, u64>,
    ack_ttl: u8,
    completed: Option<SimTime>,
    counters: ReceiverCounters,
    /// Ack coalescing factor `m` (1 = immediate per-packet acks).
    ack_every: u32,
    /// In-order packets received since the last ack.
    pending: u32,
    /// CE state of the current run (DCTCP delayed-ack state machine).
    last_ce: bool,
    /// Send time of the newest pending packet (for the timestamp echo).
    pending_ts: Option<SimTime>,
}

impl TcpReceiver {
    /// Creates a receiver expecting `expected` bytes on `flow`, acking
    /// every packet immediately.
    pub fn new(flow: FlowId, host: HostId, peer: HostId, expected: u64, ack_ttl: u8) -> Self {
        Self::with_delayed_acks(flow, host, peer, expected, ack_ttl, 1)
    }

    /// Creates a receiver with DCTCP delayed acks: one ack per `ack_every`
    /// in-order packets (see the module docs for the immediate-ack rules).
    ///
    /// # Panics
    ///
    /// Panics if `ack_every` is zero.
    pub fn with_delayed_acks(
        flow: FlowId,
        host: HostId,
        peer: HostId,
        expected: u64,
        ack_ttl: u8,
        ack_every: u32,
    ) -> Self {
        assert!(ack_every >= 1, "ack_every must be at least 1");
        TcpReceiver {
            flow,
            host,
            peer,
            expected,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            ack_ttl,
            completed: None,
            counters: ReceiverCounters::default(),
            ack_every,
            pending: 0,
            last_ce: false,
            pending_ts: None,
        }
    }

    /// The flow id.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Next expected byte.
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Whether all expected bytes have arrived in order.
    pub fn is_complete(&self) -> bool {
        self.completed.is_some()
    }

    /// When the final byte arrived.
    pub fn completed_at(&self) -> Option<SimTime> {
        self.completed
    }

    /// Number of buffered out-of-order segments.
    pub fn ooo_segments(&self) -> usize {
        self.ooo.len()
    }

    /// Counter snapshot.
    pub fn counters(&self) -> ReceiverCounters {
        self.counters
    }

    /// Processes a data packet; returns the ack to send, if the ack policy
    /// emits one now.
    ///
    /// With `ack_every = 1` (the default) this always returns `Some` and
    /// the ack's ECE bit echoes the packet's CE mark. With delayed acks the
    /// DCTCP state machine decides (see the module docs).
    pub fn on_data(&mut self, pkt: &Packet, now: SimTime, ids: &mut IdGen) -> Option<Packet> {
        debug_assert!(pkt.is_data());
        debug_assert_eq!(pkt.flow, self.flow);
        let (start, end) = (pkt.seq, pkt.seq_end());
        self.counters.packets_received += 1;

        let mut exceptional = false; // Duplicate / OOO / gap-filling.
        if end <= self.rcv_nxt {
            self.counters.duplicates += 1;
            exceptional = true;
        } else if start <= self.rcv_nxt {
            // In-order (possibly partially duplicate): advance and drain the
            // reassembly queue.
            let had_gap_waiting = !self.ooo.is_empty();
            self.rcv_nxt = end;
            self.drain_ooo();
            if had_gap_waiting {
                exceptional = true;
            }
        } else {
            self.insert_ooo(start, end);
            exceptional = true;
        }

        if self.completed.is_none() && self.rcv_nxt >= self.expected {
            self.completed = Some(now);
        }

        if self.ack_every == 1 {
            return Some(self.make_ack(pkt.ce, Some(pkt.sent_at), now, ids));
        }

        // DCTCP delayed-ack state machine.
        if pkt.ce != self.last_ce {
            // CE state change: immediately ack the run that just ended,
            // carrying the *old* state, then start a new run with this
            // packet pending.
            let old_state = self.last_ce;
            self.last_ce = pkt.ce;
            let echo = self.pending_ts.take();
            self.pending = 1;
            self.pending_ts = Some(pkt.sent_at);
            return Some(self.make_ack(old_state, echo.or(Some(pkt.sent_at)), now, ids));
        }
        self.pending += 1;
        self.pending_ts = Some(pkt.sent_at);
        let done = self.rcv_nxt >= self.expected;
        if exceptional || done || self.pending >= self.ack_every {
            self.pending = 0;
            let echo = self.pending_ts.take();
            return Some(self.make_ack(self.last_ce, echo, now, ids));
        }
        None
    }

    fn make_ack(
        &mut self,
        ece: bool,
        ts_echo: Option<SimTime>,
        now: SimTime,
        ids: &mut IdGen,
    ) -> Packet {
        self.counters.acks_sent += 1;
        let mut ack = Packet::ack(
            ids.next(),
            self.flow,
            self.host,
            self.peer,
            self.rcv_nxt,
            ece,
            self.ack_ttl,
            now,
        );
        // TCP timestamps (RFC 7323): echo the send time of the newest
        // packet this ack covers, so the sender can sample RTT even across
        // retransmissions.
        ack.ts_echo = ts_echo;
        ack
    }

    fn drain_ooo(&mut self) {
        while let Some((&start, &end)) = self.ooo.first_key_value() {
            if start > self.rcv_nxt {
                break;
            }
            self.ooo.pop_first();
            if end > self.rcv_nxt {
                self.rcv_nxt = end;
            }
        }
    }

    fn insert_ooo(&mut self, start: u64, end: u64) {
        // Check whether the new range is already fully covered.
        if let Some((&s, &e)) = self.ooo.range(..=start).next_back() {
            if s <= start && end <= e {
                self.counters.duplicates += 1;
                return;
            }
        }
        self.counters.out_of_order += 1;
        // Merge with any overlapping or adjacent ranges.
        let mut new_start = start;
        let mut new_end = end;
        // Predecessor overlapping/touching.
        if let Some((&s, &e)) = self.ooo.range(..=start).next_back() {
            if e >= new_start {
                new_start = s;
                new_end = new_end.max(e);
                self.ooo.remove(&s);
            }
        }
        // Successors overlapping/touching.
        let keys: Vec<u64> = self
            .ooo
            .range(new_start..=new_end)
            .map(|(&s, _)| s)
            .collect();
        for s in keys {
            let e = self.ooo.remove(&s).expect("key exists");
            new_end = new_end.max(e);
        }
        self.ooo.insert(new_start, new_end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibs_net::ids::PacketId;

    fn data(seq: u64, len: u32, ce: bool) -> Packet {
        let mut p = Packet::data(
            PacketId(seq),
            FlowId(1),
            HostId(0),
            HostId(1),
            seq,
            len,
            64,
            SimTime::ZERO,
        );
        p.ce = ce;
        p
    }

    fn rcv(expected: u64) -> (TcpReceiver, IdGen) {
        (
            TcpReceiver::new(FlowId(1), HostId(1), HostId(0), expected, 255),
            IdGen::new(),
        )
    }

    #[test]
    fn in_order_delivery() {
        let (mut r, mut ids) = rcv(4380);
        for i in 0..3 {
            let ack = r
                .on_data(&data(i * 1460, 1460, false), SimTime::ZERO, &mut ids)
                .unwrap();
            assert_eq!(ack.seq, (i + 1) * 1460);
            assert!(!ack.ece);
            assert!(ack.is_ack());
            assert_eq!(ack.src, HostId(1));
            assert_eq!(ack.dst, HostId(0));
        }
        assert!(r.is_complete());
        assert_eq!(r.ooo_segments(), 0);
    }

    #[test]
    fn reorder_buffers_and_drains() {
        let (mut r, mut ids) = rcv(4380);
        // Segments 2, 1, 0.
        let a = r
            .on_data(&data(2920, 1460, false), SimTime::ZERO, &mut ids)
            .unwrap();
        assert_eq!(a.seq, 0, "nothing in order yet");
        let a = r
            .on_data(&data(1460, 1460, false), SimTime::ZERO, &mut ids)
            .unwrap();
        assert_eq!(a.seq, 0);
        assert_eq!(r.ooo_segments(), 1, "adjacent ranges coalesce");
        let a = r
            .on_data(&data(0, 1460, false), SimTime::ZERO, &mut ids)
            .unwrap();
        assert_eq!(a.seq, 4380, "drains the whole queue");
        assert!(r.is_complete());
        assert_eq!(r.counters().out_of_order, 2);
    }

    #[test]
    fn duplicates_still_ack() {
        let (mut r, mut ids) = rcv(2920);
        r.on_data(&data(0, 1460, false), SimTime::ZERO, &mut ids);
        let a = r
            .on_data(&data(0, 1460, false), SimTime::ZERO, &mut ids)
            .unwrap();
        assert_eq!(a.seq, 1460, "dupack repeats rcv_nxt");
        assert_eq!(r.counters().duplicates, 1);
        assert_eq!(r.counters().acks_sent, 2);
    }

    #[test]
    fn ece_echoes_ce_per_packet() {
        let (mut r, mut ids) = rcv(4380);
        let a = r
            .on_data(&data(0, 1460, true), SimTime::ZERO, &mut ids)
            .unwrap();
        assert!(a.ece);
        let a = r
            .on_data(&data(1460, 1460, false), SimTime::ZERO, &mut ids)
            .unwrap();
        assert!(!a.ece);
    }

    #[test]
    fn completion_records_time() {
        let (mut r, mut ids) = rcv(1460);
        let t = SimTime::from_millis(3);
        r.on_data(&data(0, 1460, false), t, &mut ids);
        assert_eq!(r.completed_at(), Some(t));
        // Late duplicates do not move the completion time.
        r.on_data(&data(0, 1460, false), SimTime::from_millis(9), &mut ids);
        assert_eq!(r.completed_at(), Some(t));
    }

    #[test]
    fn heavy_shuffle_reassembles_exactly() {
        // 50 segments delivered in a fixed scrambled order, some twice.
        let (mut r, mut ids) = rcv(50 * 1460);
        let mut order: Vec<u64> = (0..50).collect();
        // Deterministic scramble.
        for i in 0..order.len() {
            let j = (i * 37 + 11) % order.len();
            order.swap(i, j);
        }
        for &i in &order {
            r.on_data(&data(i * 1460, 1460, false), SimTime::ZERO, &mut ids);
            // Duplicate every 7th.
            if i % 7 == 0 {
                r.on_data(&data(i * 1460, 1460, false), SimTime::ZERO, &mut ids);
            }
        }
        assert!(r.is_complete());
        assert_eq!(r.rcv_nxt(), 50 * 1460);
        assert_eq!(r.ooo_segments(), 0);
    }

    #[test]
    fn overlapping_ooo_ranges_merge() {
        let (mut r, mut ids) = rcv(10_000);
        // Two overlapping out-of-order writes.
        r.on_data(&data(3000, 2000, false), SimTime::ZERO, &mut ids);
        r.on_data(&data(4000, 2000, false), SimTime::ZERO, &mut ids);
        assert_eq!(r.ooo_segments(), 1);
        // A covered duplicate does not add segments.
        r.on_data(&data(3500, 1000, false), SimTime::ZERO, &mut ids);
        assert_eq!(r.ooo_segments(), 1);
        assert_eq!(r.counters().duplicates, 1);
    }

    fn rcv_delayed(expected: u64, m: u32) -> (TcpReceiver, IdGen) {
        (
            TcpReceiver::with_delayed_acks(FlowId(1), HostId(1), HostId(0), expected, 255, m),
            IdGen::new(),
        )
    }

    #[test]
    fn delayed_acks_coalesce_in_order_packets() {
        let (mut r, mut ids) = rcv_delayed(10 * 1460, 2);
        // Packet 1: held. Packet 2: cumulative ack for both.
        assert!(r
            .on_data(&data(0, 1460, false), SimTime::ZERO, &mut ids)
            .is_none());
        let a = r
            .on_data(&data(1460, 1460, false), SimTime::ZERO, &mut ids)
            .unwrap();
        assert_eq!(a.seq, 2920);
        assert_eq!(r.counters().acks_sent, 1);
    }

    #[test]
    fn delayed_acks_flush_on_ce_state_change() {
        let (mut r, mut ids) = rcv_delayed(10 * 1460, 4);
        // Unmarked packet held; a marked packet ends the unmarked run with
        // an immediate ack carrying ECE = false (the old state).
        assert!(r
            .on_data(&data(0, 1460, false), SimTime::ZERO, &mut ids)
            .is_none());
        let a = r
            .on_data(&data(1460, 1460, true), SimTime::ZERO, &mut ids)
            .unwrap();
        assert!(!a.ece, "state-change ack reports the run that ended");
        assert_eq!(a.seq, 2920);
        // Returning to unmarked flushes the marked run with ECE = true.
        let a = r
            .on_data(&data(2920, 1460, false), SimTime::ZERO, &mut ids)
            .unwrap();
        assert!(a.ece);
    }

    #[test]
    fn delayed_acks_flush_on_out_of_order() {
        let (mut r, mut ids) = rcv_delayed(10 * 1460, 4);
        // An out-of-order packet must produce an immediate (dup)ack so the
        // sender sees the signal.
        let a = r
            .on_data(&data(2920, 1460, false), SimTime::ZERO, &mut ids)
            .unwrap();
        assert_eq!(a.seq, 0);
        // While a gap is outstanding, every arrival acks immediately
        // (standard TCP behavior during an out-of-order episode).
        let a = r
            .on_data(&data(0, 1460, false), SimTime::ZERO, &mut ids)
            .unwrap();
        assert_eq!(a.seq, 1460);
        let a = r
            .on_data(&data(1460, 1460, false), SimTime::ZERO, &mut ids)
            .unwrap();
        assert_eq!(a.seq, 4380, "gap fill drains the whole queue");
    }

    #[test]
    fn delayed_acks_flush_on_completion() {
        let (mut r, mut ids) = rcv_delayed(3 * 1460, 4);
        assert!(r
            .on_data(&data(0, 1460, false), SimTime::ZERO, &mut ids)
            .is_none());
        assert!(r
            .on_data(&data(1460, 1460, false), SimTime::ZERO, &mut ids)
            .is_none());
        // The final packet of the stream always acks immediately.
        let a = r
            .on_data(&data(2920, 1460, false), SimTime::ZERO, &mut ids)
            .unwrap();
        assert_eq!(a.seq, 3 * 1460);
        assert!(r.is_complete());
    }

    #[test]
    fn delayed_ack_echo_uses_newest_covered_packet() {
        let (mut r, mut ids) = rcv_delayed(10 * 1460, 2);
        let mut p0 = data(0, 1460, false);
        p0.sent_at = SimTime::from_micros(100);
        let mut p1 = data(1460, 1460, false);
        p1.sent_at = SimTime::from_micros(200);
        assert!(r.on_data(&p0, SimTime::ZERO, &mut ids).is_none());
        let a = r.on_data(&p1, SimTime::ZERO, &mut ids).unwrap();
        assert_eq!(a.ts_echo, Some(SimTime::from_micros(200)));
    }
}
