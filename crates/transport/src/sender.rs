//! The TCP sender state machine.
//!
//! A byte-sequence sliding-window sender with pluggable congestion control
//! (Reno / DCTCP / fixed-window), RTO management with Karn's rule and
//! exponential backoff, optional dupack-threshold fast retransmit, and
//! pFabric remaining-size priority stamping.
//!
//! The sender is substrate-free: methods return the packets to transmit and
//! expose the current retransmission-timer demand via [`TcpSender::timer`];
//! the simulator core owns actual event scheduling and calls back into
//! [`TcpSender::on_ack`] / [`TcpSender::on_rto`].

use crate::config::{CcAlgorithm, FastRetransmit, TcpConfig};
use crate::IdGen;
use dibs_engine::time::{SimDuration, SimTime};
use dibs_net::ids::{FlowId, HostId};
use dibs_net::packet::Packet;
use dibs_trace::{TraceEvent, TraceKind, TraceSink};

/// Reports one host-emitted packet to `sink`, classified as `Send`,
/// `Retransmit`, or `Ack` from the packet's own flags. `node` is the
/// topology node id of the emitting host (the transport layer does not
/// know the topology, so the caller supplies it).
pub fn trace_packet_out<S: TraceSink>(pkt: &Packet, t_ns: u64, node: u32, sink: &mut S) {
    let kind = if !pkt.is_data() {
        TraceKind::Ack
    } else if pkt.retransmit {
        TraceKind::Retransmit
    } else {
        TraceKind::Send
    };
    if sink.wants(kind) {
        sink.record(TraceEvent {
            t_ns,
            packet: pkt.id.0,
            flow: pkt.flow.0,
            node,
            port: 0,
            qlen: 0,
            detours: pkt.detours,
            kind,
        });
    }
}

/// Sender-side counters (per flow).
#[derive(Debug, Clone, Copy, Default)]
pub struct SenderCounters {
    /// Data packets emitted (including retransmissions).
    pub packets_sent: u64,
    /// Payload bytes emitted (including retransmissions).
    pub bytes_sent: u64,
    /// Retransmission timeouts taken.
    pub timeouts: u64,
    /// Fast retransmissions taken.
    pub fast_retransmits: u64,
    /// Timeouts later proven spurious via the timestamp echo (Eifel).
    pub spurious_timeouts: u64,
    /// Cumulative duplicate acks observed.
    pub dupacks: u64,
}

/// A single unidirectional TCP data transfer.
#[derive(Debug)]
pub struct TcpSender {
    cfg: TcpConfig,
    flow: FlowId,
    src: HostId,
    dst: HostId,
    size: u64,

    snd_una: u64,
    snd_nxt: u64,
    cwnd: f64,
    ssthresh: f64,
    dupacks: u32,
    /// Fast-recovery high-water mark: no second fast retransmit until
    /// `snd_una` passes it.
    recover: u64,

    // RTT estimation (RFC 6298) and timer state.
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    backoff: u32,
    timer_gen: u64,
    timer_deadline: Option<SimTime>,
    /// Send-time history of in-flight segments, `(segment end, send time)`,
    /// oldest first. Each advancing ack yields an RTT sample from the
    /// newest segment it covers — matching NS-3's per-segment RTT history,
    /// which keeps the RTO tracking queue buildup *within* a burst.
    /// Invalidated by any retransmission (Karn's rule). Unused once the
    /// peer echoes timestamps (see [`TcpSender::on_ack_ts`]).
    rtt_history: std::collections::VecDeque<(u64, SimTime)>,
    /// Whether a timestamp echo has been seen (disables history sampling).
    timestamps_seen: bool,
    /// Eifel spurious-timeout detection state: `(timeout instant,
    /// pre-collapse cwnd, pre-collapse ssthresh)`, armed by each RTO.
    spurious_check: Option<(SimTime, f64, f64)>,

    // DCTCP state.
    alpha: f64,
    bytes_acked_window: u64,
    bytes_marked_window: u64,
    window_end: u64,
    /// One multiplicative decrease per window.
    cwr: bool,

    started: Option<SimTime>,
    completed: Option<SimTime>,
    counters: SenderCounters,
}

impl TcpSender {
    /// Creates a sender for `size` bytes from `src` to `dst`.
    pub fn new(cfg: TcpConfig, flow: FlowId, src: HostId, dst: HostId, size: u64) -> Self {
        let cwnd = f64::from(cfg.init_cwnd) * f64::from(cfg.mss);
        TcpSender {
            cfg,
            flow,
            src,
            dst,
            size,
            snd_una: 0,
            snd_nxt: 0,
            cwnd,
            ssthresh: f64::MAX,
            dupacks: 0,
            recover: 0,
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto: cfg.fixed_rto.unwrap_or(cfg.min_rto),
            backoff: 0,
            timer_gen: 0,
            timer_deadline: None,
            rtt_history: std::collections::VecDeque::new(),
            timestamps_seen: false,
            spurious_check: None,
            alpha: 1.0,
            bytes_acked_window: 0,
            bytes_marked_window: 0,
            window_end: 0,
            cwr: false,
            started: None,
            completed: None,
            counters: SenderCounters::default(),
        }
    }

    /// The flow id.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Source host.
    pub fn src(&self) -> HostId {
        self.src
    }

    /// Destination host.
    pub fn dst(&self) -> HostId {
        self.dst
    }

    /// Total bytes this flow will transfer.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Whether every byte has been cumulatively acknowledged.
    pub fn is_complete(&self) -> bool {
        self.completed.is_some()
    }

    /// Completion time, if complete.
    pub fn completed_at(&self) -> Option<SimTime> {
        self.completed
    }

    /// Start time (first `start` call).
    pub fn started_at(&self) -> Option<SimTime> {
        self.started
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Current DCTCP alpha estimate.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Current retransmission timeout value.
    pub fn rto(&self) -> SimDuration {
        self.rto
    }

    /// Smoothed RTT, once at least one sample exists.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Counter snapshot.
    pub fn counters(&self) -> SenderCounters {
        self.counters
    }

    /// Unacknowledged bytes in flight.
    pub fn inflight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// The timer the sender currently needs: `(deadline, generation)`.
    ///
    /// The core schedules one event per *new* generation and calls
    /// [`TcpSender::on_rto`] with it; stale generations are ignored there.
    pub fn timer(&self) -> Option<(SimTime, u64)> {
        self.timer_deadline.map(|d| (d, self.timer_gen))
    }

    /// Opens the flow: emits the initial window.
    ///
    /// Zero-byte flows complete immediately and emit nothing.
    pub fn start(&mut self, now: SimTime, ids: &mut IdGen) -> Vec<Packet> {
        self.started = Some(now);
        self.window_end = 0;
        if self.size == 0 {
            self.completed = Some(now);
            return Vec::new();
        }
        let pkts = self.pump(now, ids);
        self.arm_timer(now);
        pkts
    }

    /// Handles a cumulative acknowledgment carrying the receiver's ECN echo
    /// and (when available) the RFC 7323 timestamp echo.
    pub fn on_ack_ts(
        &mut self,
        ack: u64,
        ece: bool,
        ts_echo: Option<SimTime>,
        now: SimTime,
        ids: &mut IdGen,
    ) -> Vec<Packet> {
        // Timestamp-based RTT sample: valid regardless of retransmissions
        // (the echo identifies the actual transmission being acked), so it
        // keeps the RTO tracking queue buildup even after a spurious
        // timeout, where Karn's rule would go blind.
        if let Some(echo) = ts_echo {
            self.timestamps_seen = true;
            self.update_rtt(now.saturating_since(echo));
            // Eifel detection (RFC 3522 spirit): an advancing ack whose
            // echo predates the last timeout acknowledges the *original*
            // transmission — the timeout was spurious. Undo the congestion
            // response instead of crawling back through slow start.
            if let Some((rto_at, prior_cwnd, prior_ssthresh)) = self.spurious_check {
                if ack > self.snd_una {
                    if echo < rto_at && self.cfg.cc != CcAlgorithm::Fixed {
                        self.cwnd = prior_cwnd;
                        self.ssthresh = prior_ssthresh;
                        self.backoff = 0;
                        self.counters.spurious_timeouts += 1;
                    }
                    self.spurious_check = None;
                }
            }
        }
        self.on_ack(ack, ece, now, ids)
    }

    /// Handles a cumulative acknowledgment carrying the receiver's ECN echo.
    pub fn on_ack(&mut self, ack: u64, ece: bool, now: SimTime, ids: &mut IdGen) -> Vec<Packet> {
        if self.completed.is_some() || self.started.is_none() {
            return Vec::new();
        }
        if ack > self.snd_nxt {
            // After a go-back-N timeout, data sent before the timeout is
            // still in flight and may be acked beyond the rewound snd_nxt;
            // accept it as the new high-water mark.
            self.snd_nxt = ack;
        }
        if ack <= self.snd_una {
            return self.on_dupack(ack, now, ids);
        }

        let newly = ack - self.snd_una;
        self.snd_una = ack;
        self.dupacks = 0;
        self.backoff = 0;

        // RTT sample: the newest fully-acked segment in the send-time
        // history (Karn: the history is cleared on any retransmission).
        let mut newest_covered: Option<SimTime> = None;
        while let Some(&(seg_end, sent_at)) = self.rtt_history.front() {
            if ack >= seg_end {
                newest_covered = Some(sent_at);
                self.rtt_history.pop_front();
            } else {
                break;
            }
        }
        if let Some(sent_at) = newest_covered {
            if !self.timestamps_seen {
                self.update_rtt(now.saturating_since(sent_at));
            }
        }

        // DCTCP per-window marking accounting. The window "ends" when the
        // ack passes the snd_nxt recorded at the previous window end; the
        // new window extends to the post-pump snd_nxt (set below).
        self.bytes_acked_window += newly;
        if ece {
            self.bytes_marked_window += newly;
        }
        let window_ended = ack >= self.window_end;
        if window_ended {
            self.end_marking_window();
        }

        // ECE reaction: at most one reduction per window.
        if ece && !self.cwr {
            self.cwr = true;
            let factor = match self.cfg.cc {
                CcAlgorithm::Dctcp { .. } => 1.0 - self.alpha / 2.0,
                CcAlgorithm::Reno => 0.5,
                CcAlgorithm::Fixed => 1.0,
            };
            self.cwnd = (self.cwnd * factor).max(self.cfg.min_cwnd());
            self.ssthresh = self.cwnd;
        } else if self.cfg.cc != CcAlgorithm::Fixed {
            // Additive growth.
            if self.cwnd < self.ssthresh {
                // Slow start: cwnd grows by the bytes acked.
                self.cwnd = (self.cwnd + newly as f64).min(self.ssthresh.min(1e18));
            } else {
                // Congestion avoidance: +MSS per cwnd of acked data.
                let mss = f64::from(self.cfg.mss);
                self.cwnd += mss * (newly as f64 / self.cwnd);
            }
        }

        if self.snd_una >= self.size {
            self.completed = Some(now);
            self.disarm_timer();
            return Vec::new();
        }

        let pkts = self.pump(now, ids);
        if window_ended {
            self.window_end = self.snd_nxt;
        }
        self.arm_timer(now);
        pkts
    }

    /// [`TcpSender::on_rto`] with trace emission: a genuine (non-stale)
    /// firing is reported as one flow-level `Timeout` event before the
    /// retransmitted segments are returned. `node` is the sending host's
    /// topology node id; `qlen` carries the retransmission count.
    pub fn on_rto_traced<S: TraceSink>(
        &mut self,
        gen: u64,
        now: SimTime,
        ids: &mut IdGen,
        node: u32,
        sink: &mut S,
    ) -> Vec<Packet> {
        let timeouts_before = self.counters.timeouts;
        let pkts = self.on_rto(gen, now, ids);
        if self.counters.timeouts > timeouts_before && sink.wants(TraceKind::Timeout) {
            sink.record(TraceEvent {
                t_ns: now.as_nanos(),
                packet: 0,
                flow: self.flow.0,
                node,
                port: 0,
                qlen: u16::try_from(pkts.len()).unwrap_or(u16::MAX),
                detours: 0,
                kind: TraceKind::Timeout,
            });
        }
        pkts
    }

    /// Handles a retransmission-timer firing. `gen` must match the
    /// generation returned by [`TcpSender::timer`] when the event was
    /// scheduled; stale firings are ignored.
    pub fn on_rto(&mut self, gen: u64, now: SimTime, ids: &mut IdGen) -> Vec<Packet> {
        if gen != self.timer_gen || self.timer_deadline.is_none() || self.completed.is_some() {
            return Vec::new();
        }
        self.counters.timeouts += 1;

        // Multiplicative backoff (skipped under a fixed RTO, per pFabric).
        if self.cfg.fixed_rto.is_none() {
            self.backoff = (self.backoff + 1).min(10);
        }

        // Collapse the window and go back to snd_una, remembering the
        // pre-collapse state for Eifel undo.
        if self.cfg.cc != CcAlgorithm::Fixed {
            let inflight = self.inflight() as f64;
            self.spurious_check = Some((now, self.cwnd, self.ssthresh));
            self.ssthresh = (inflight / 2.0).max(2.0 * f64::from(self.cfg.mss));
            self.cwnd = self.cfg.min_cwnd();
        }
        self.snd_nxt = self.snd_una;
        self.dupacks = 0;
        self.recover = self.snd_una;
        self.rtt_history.clear(); // Karn's rule.
        self.cwr = false;
        self.window_end = self.snd_una;
        self.bytes_acked_window = 0;
        self.bytes_marked_window = 0;

        let pkts = if self.cfg.cc == CcAlgorithm::Fixed {
            // pFabric probe mode: a timed-out flow retransmits a single
            // segment per RTO rather than re-injecting its whole window,
            // bounding the retransmission storm its small fixed RTO would
            // otherwise create.
            let pkt = self.make_segment(self.snd_una, now, ids, true);
            self.snd_nxt = self.snd_una + u64::from(pkt.payload_bytes);
            vec![pkt]
        } else {
            self.pump_retransmit(now, ids)
        };
        self.arm_timer(now);
        pkts
    }

    fn on_dupack(&mut self, _ack: u64, now: SimTime, ids: &mut IdGen) -> Vec<Packet> {
        self.dupacks += 1;
        self.counters.dupacks += 1;
        let FastRetransmit::DupAckThreshold(k) = self.cfg.fast_retransmit else {
            return Vec::new();
        };
        if self.dupacks != k || self.snd_una < self.recover {
            return Vec::new();
        }
        // Fast retransmit + simplified fast recovery.
        self.counters.fast_retransmits += 1;
        self.recover = self.snd_nxt;
        if self.cfg.cc != CcAlgorithm::Fixed {
            let inflight = self.inflight() as f64;
            self.ssthresh = (inflight / 2.0).max(2.0 * f64::from(self.cfg.mss));
            self.cwnd = self.ssthresh;
        }
        self.rtt_history.clear(); // Karn's rule.
        let pkt = self.make_segment(self.snd_una, now, ids, true);
        self.arm_timer(now);
        vec![pkt]
    }

    /// Emits as many new segments as the window allows.
    fn pump(&mut self, now: SimTime, ids: &mut IdGen) -> Vec<Packet> {
        let mut out = Vec::new();
        while self.snd_nxt < self.size && (self.inflight() as f64) < self.cwnd {
            let pkt = self.make_segment(self.snd_nxt, now, ids, false);
            self.snd_nxt += u64::from(pkt.payload_bytes);
            self.rtt_history.push_back((self.snd_nxt, now));
            out.push(pkt);
        }
        out
    }

    /// After a timeout: retransmit one window starting at `snd_una`.
    fn pump_retransmit(&mut self, now: SimTime, ids: &mut IdGen) -> Vec<Packet> {
        let mut out = Vec::new();
        while self.snd_nxt < self.size && (self.inflight() as f64) < self.cwnd {
            let pkt = self.make_segment(self.snd_nxt, now, ids, true);
            self.snd_nxt += u64::from(pkt.payload_bytes);
            out.push(pkt);
        }
        out
    }

    fn make_segment(&mut self, seq: u64, now: SimTime, ids: &mut IdGen, rtx: bool) -> Packet {
        let remaining = self.size - seq;
        // min() against the u32 MSS bounds the value below u32::MAX.
        #[allow(clippy::cast_possible_truncation)]
        let len = remaining.min(u64::from(self.cfg.mss)) as u32;
        let mut pkt = Packet::data(
            ids.next(),
            self.flow,
            self.src,
            self.dst,
            seq,
            len,
            self.cfg.initial_ttl,
            now,
        );
        pkt.retransmit = rtx;
        if self.cfg.priority_stamping {
            // pFabric: priority is the flow's remaining size.
            pkt.priority = self.size - self.snd_una;
        }
        self.counters.packets_sent += 1;
        self.counters.bytes_sent += u64::from(len);
        pkt
    }

    fn end_marking_window(&mut self) {
        if let CcAlgorithm::Dctcp { g } = self.cfg.cc {
            if self.bytes_acked_window > 0 {
                let f = self.bytes_marked_window as f64 / self.bytes_acked_window as f64;
                self.alpha = (1.0 - g) * self.alpha + g * f;
            }
        }
        self.bytes_acked_window = 0;
        self.bytes_marked_window = 0;
        // Note: the caller sets the next `window_end` after pumping, so the
        // new window spans everything in flight afterwards.
        self.cwr = false;
    }

    fn update_rtt(&mut self, sample: SimDuration) {
        if self.cfg.fixed_rto.is_some() {
            return;
        }
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2;
            }
            Some(srtt) => {
                // RFC 6298 with alpha=1/8, beta=1/4, in integer nanoseconds.
                let diff = if srtt > sample {
                    srtt - sample
                } else {
                    sample - srtt
                };
                self.rttvar =
                    SimDuration::from_nanos((3 * self.rttvar.as_nanos() + diff.as_nanos()) / 4);
                self.srtt = Some(SimDuration::from_nanos(
                    (7 * srtt.as_nanos() + sample.as_nanos()) / 8,
                ));
            }
        }
        let srtt = self.srtt.expect("just set");
        let candidate = srtt + self.rttvar.saturating_mul(4);
        self.rto = candidate.max(self.cfg.min_rto).min(self.cfg.max_rto);
    }

    fn current_rto(&self) -> SimDuration {
        if let Some(fixed) = self.cfg.fixed_rto {
            return fixed;
        }
        self.rto
            .saturating_mul(1u64 << self.backoff.min(10))
            .min(self.cfg.max_rto)
            .max(self.cfg.min_rto)
    }

    fn arm_timer(&mut self, now: SimTime) {
        if self.inflight() == 0 && self.snd_nxt >= self.size {
            self.disarm_timer();
            return;
        }
        self.timer_gen += 1;
        self.timer_deadline = Some(now + self.current_rto());
    }

    fn disarm_timer(&mut self) {
        self.timer_gen += 1;
        self.timer_deadline = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sender(size: u64) -> (TcpSender, IdGen) {
        (
            TcpSender::new(
                TcpConfig::dctcp_baseline(),
                FlowId(1),
                HostId(0),
                HostId(1),
                size,
            ),
            IdGen::new(),
        )
    }

    #[test]
    fn initial_window_is_ten_segments() {
        let (mut s, mut ids) = sender(1_000_000);
        let pkts = s.start(SimTime::ZERO, &mut ids);
        assert_eq!(pkts.len(), 10);
        assert_eq!(s.inflight(), 14_600);
        assert!(s.timer().is_some());
        // Sequential segments, full MSS each.
        for (i, p) in pkts.iter().enumerate() {
            assert_eq!(p.seq, i as u64 * 1460);
            assert_eq!(p.payload_bytes, 1460);
        }
    }

    #[test]
    fn small_flow_sends_all_at_once() {
        let (mut s, mut ids) = sender(3000);
        let pkts = s.start(SimTime::ZERO, &mut ids);
        assert_eq!(pkts.len(), 3);
        assert_eq!(pkts[2].payload_bytes, 3000 - 2 * 1460);
    }

    #[test]
    fn zero_flow_completes_immediately() {
        let (mut s, mut ids) = sender(0);
        let pkts = s.start(SimTime::ZERO, &mut ids);
        assert!(pkts.is_empty());
        assert!(s.is_complete());
        assert!(s.timer().is_none());
    }

    #[test]
    fn acks_advance_and_complete() {
        let (mut s, mut ids) = sender(2920);
        let t0 = SimTime::ZERO;
        s.start(t0, &mut ids);
        let t1 = SimTime::from_micros(100);
        let more = s.on_ack(1460, false, t1, &mut ids);
        assert!(more.is_empty(), "window already covers the flow");
        assert!(!s.is_complete());
        s.on_ack(2920, false, SimTime::from_micros(200), &mut ids);
        assert!(s.is_complete());
        assert_eq!(s.completed_at(), Some(SimTime::from_micros(200)));
        assert!(s.timer().is_none(), "timer disarmed at completion");
    }

    #[test]
    fn slow_start_doubles_window() {
        let (mut s, mut ids) = sender(10_000_000);
        s.start(SimTime::ZERO, &mut ids);
        let cwnd0 = s.cwnd();
        // Ack the whole initial window without marks.
        let mut sent = 14_600;
        let pkts = s.on_ack(sent, false, SimTime::from_micros(100), &mut ids);
        assert!(s.cwnd() >= cwnd0 * 1.9, "slow start should ~double");
        // And the pump refills the (now larger) window.
        sent += pkts.iter().map(|p| u64::from(p.payload_bytes)).sum::<u64>();
        assert_eq!(s.inflight(), sent - 14_600);
    }

    #[test]
    fn dctcp_alpha_tracks_marking() {
        let (mut s, mut ids) = sender(1_000_000_000);
        s.start(SimTime::ZERO, &mut ids);
        // Pin the window into congestion avoidance so 200 window-sized acks
        // do not exhaust the flow via slow-start doubling.
        s.ssthresh = 4.0 * 1460.0;
        s.cwnd = 4.0 * 1460.0;
        assert_eq!(s.alpha(), 1.0);
        // Repeatedly ack whole windows with no marks: alpha decays toward 0.
        let mut now = SimTime::ZERO;
        for _ in 0..100 {
            now += SimDuration::from_micros(100);
            let ack_to = s.snd_nxt_test();
            s.on_ack(ack_to, false, now, &mut ids);
        }
        assert!(!s.is_complete());
        assert!(s.alpha() < 0.01, "alpha should decay: {}", s.alpha());
        // Now mark everything: alpha climbs back up.
        for _ in 0..100 {
            now += SimDuration::from_micros(100);
            let ack_to = s.snd_nxt_test();
            s.on_ack(ack_to, true, now, &mut ids);
        }
        assert!(!s.is_complete());
        assert!(s.alpha() > 0.9, "alpha should rise: {}", s.alpha());
    }

    #[test]
    fn ece_cuts_at_most_once_per_window() {
        let (mut s, mut ids) = sender(100_000_000);
        s.start(SimTime::ZERO, &mut ids);
        // Drive alpha to a known value by ending one fully-marked window.
        let w = s.snd_nxt_test();
        s.on_ack(w, true, SimTime::from_micros(50), &mut ids);
        let after_first = s.cwnd();
        // A second ECE ack in the same window must not cut again.
        s.on_ack(w + 1460, true, SimTime::from_micros(60), &mut ids);
        assert!(s.cwnd() >= after_first, "second cut within window");
    }

    #[test]
    fn rto_collapses_window_and_retransmits() {
        let (mut s, mut ids) = sender(1_000_000);
        s.start(SimTime::ZERO, &mut ids);
        let (deadline, gen) = s.timer().unwrap();
        assert_eq!(deadline, SimTime::ZERO + SimDuration::from_millis(10));
        let pkts = s.on_rto(gen, deadline, &mut ids);
        assert_eq!(s.counters().timeouts, 1);
        assert_eq!(s.cwnd(), 1460.0);
        assert_eq!(pkts.len(), 1, "one segment at cwnd = 1 MSS");
        assert_eq!(pkts[0].seq, 0);
        assert!(pkts[0].retransmit);
        // Backoff doubles the next deadline.
        let (d2, _) = s.timer().unwrap();
        assert_eq!(d2, deadline + SimDuration::from_millis(20));
    }

    #[test]
    fn stale_rto_generation_is_ignored() {
        let (mut s, mut ids) = sender(1_000_000);
        s.start(SimTime::ZERO, &mut ids);
        let (_, gen) = s.timer().unwrap();
        // An ack re-arms the timer, bumping the generation.
        s.on_ack(1460, false, SimTime::from_micros(100), &mut ids);
        let pkts = s.on_rto(gen, SimTime::from_millis(10), &mut ids);
        assert!(pkts.is_empty());
        assert_eq!(s.counters().timeouts, 0);
    }

    #[test]
    fn fast_retransmit_fires_at_threshold() {
        let (mut s, mut ids) = sender(1_000_000);
        s.start(SimTime::ZERO, &mut ids);
        let t = SimTime::from_micros(100);
        // First ack advances, then three dups trigger a fast retransmit.
        s.on_ack(1460, false, t, &mut ids);
        assert!(s.on_ack(1460, false, t, &mut ids).is_empty());
        assert!(s.on_ack(1460, false, t, &mut ids).is_empty());
        let rtx = s.on_ack(1460, false, t, &mut ids);
        assert_eq!(rtx.len(), 1);
        assert_eq!(rtx[0].seq, 1460);
        assert!(rtx[0].retransmit);
        assert_eq!(s.counters().fast_retransmits, 1);
        // Further dups in the same recovery epoch do not retransmit again.
        assert!(s.on_ack(1460, false, t, &mut ids).is_empty());
    }

    #[test]
    fn fast_retransmit_disabled_for_dibs() {
        let mut s = TcpSender::new(
            TcpConfig::dctcp_dibs(),
            FlowId(1),
            HostId(0),
            HostId(1),
            1_000_000,
        );
        let mut ids = IdGen::new();
        s.start(SimTime::ZERO, &mut ids);
        let t = SimTime::from_micros(100);
        s.on_ack(1460, false, t, &mut ids);
        for _ in 0..50 {
            assert!(s.on_ack(1460, false, t, &mut ids).is_empty());
        }
        assert_eq!(s.counters().fast_retransmits, 0);
    }

    #[test]
    fn pfabric_stamps_remaining_size() {
        let mut s = TcpSender::new(
            TcpConfig::pfabric(),
            FlowId(1),
            HostId(0),
            HostId(1),
            14_600,
        );
        let mut ids = IdGen::new();
        let pkts = s.start(SimTime::ZERO, &mut ids);
        assert!(pkts.iter().all(|p| p.priority == 14_600));
        // After half is acked, fresh packets carry the smaller remainder.
        let more = s.on_ack(7300, false, SimTime::from_micros(50), &mut ids);
        assert!(more.iter().all(|p| p.priority == 7300));
        // Fixed window: cwnd unchanged throughout.
        assert_eq!(s.cwnd(), 14_600.0);
    }

    #[test]
    fn pfabric_rto_is_fixed() {
        let mut s = TcpSender::new(
            TcpConfig::pfabric(),
            FlowId(1),
            HostId(0),
            HostId(1),
            1_000_000,
        );
        let mut ids = IdGen::new();
        s.start(SimTime::ZERO, &mut ids);
        let (d1, g1) = s.timer().unwrap();
        assert_eq!(d1, SimTime::ZERO + SimDuration::from_micros(350));
        s.on_rto(g1, d1, &mut ids);
        let (d2, _) = s.timer().unwrap();
        // No backoff: still exactly 350 us later.
        assert_eq!(d2, d1 + SimDuration::from_micros(350));
        // Fixed CC: window not collapsed.
        assert_eq!(s.cwnd(), 14_600.0);
    }

    #[test]
    fn rtt_estimation_updates_rto() {
        let (mut s, mut ids) = sender(10_000_000);
        s.start(SimTime::ZERO, &mut ids);
        // Whole window acked 2 ms later: sample = 2 ms, but min_rto = 10 ms
        // dominates.
        s.on_ack(14_600, false, SimTime::from_millis(2), &mut ids);
        assert_eq!(s.srtt(), Some(SimDuration::from_millis(2)));
        assert_eq!(s.rto(), SimDuration::from_millis(10));
    }

    #[test]
    fn timestamp_echo_samples_rtt_across_retransmissions() {
        let (mut s, mut ids) = sender(1_000_000);
        s.start(SimTime::ZERO, &mut ids);
        let (deadline, gen) = s.timer().unwrap();
        // Spurious timeout at 10 ms; no samples yet.
        s.on_rto(gen, deadline, &mut ids);
        // The original ack arrives late, echoing the original send time
        // (t=0): the sample must be taken despite the retransmission
        // (Karn's rule would have discarded it).
        let late = SimTime::from_millis(15);
        s.on_ack_ts(1460, false, Some(SimTime::ZERO), late, &mut ids);
        assert_eq!(s.srtt(), Some(SimDuration::from_millis(15)));
        assert!(s.rto() >= SimDuration::from_millis(15));
    }

    #[test]
    fn eifel_undo_restores_window_after_spurious_timeout() {
        let (mut s, mut ids) = sender(10_000_000);
        s.start(SimTime::ZERO, &mut ids);
        let cwnd_before = s.cwnd();
        let (deadline, gen) = s.timer().unwrap();
        s.on_rto(gen, deadline, &mut ids);
        assert_eq!(s.cwnd(), 1460.0, "window collapsed by the timeout");
        // Ack echoing a pre-timeout send time proves the timeout spurious.
        s.on_ack_ts(
            14_600,
            false,
            Some(SimTime::ZERO),
            SimTime::from_millis(15),
            &mut ids,
        );
        assert!(
            s.cwnd() >= cwnd_before,
            "Eifel must restore the window: {} < {cwnd_before}",
            s.cwnd()
        );
        assert_eq!(s.counters().spurious_timeouts, 1);
    }

    #[test]
    fn genuine_timeout_is_not_undone() {
        let (mut s, mut ids) = sender(10_000_000);
        s.start(SimTime::ZERO, &mut ids);
        let (deadline, gen) = s.timer().unwrap();
        s.on_rto(gen, deadline, &mut ids);
        // Ack echoing the *retransmission's* send time (>= timeout instant):
        // the loss was real, so the collapse stands.
        s.on_ack_ts(
            1460,
            false,
            Some(deadline),
            deadline + SimDuration::from_micros(100),
            &mut ids,
        );
        assert_eq!(s.counters().spurious_timeouts, 0);
        assert!(s.cwnd() < 14_600.0);
    }

    #[test]
    fn pfabric_probe_mode_retransmits_one_segment() {
        let mut s = TcpSender::new(
            TcpConfig::pfabric(),
            FlowId(1),
            HostId(0),
            HostId(1),
            1_000_000,
        );
        let mut ids = IdGen::new();
        s.start(SimTime::ZERO, &mut ids);
        let (d, g) = s.timer().unwrap();
        let pkts = s.on_rto(g, d, &mut ids);
        assert_eq!(pkts.len(), 1, "probe mode sends exactly one segment");
        assert_eq!(pkts[0].seq, 0);
        // Repeated timeouts keep probing without window inflation.
        let (d2, g2) = s.timer().unwrap();
        let pkts2 = s.on_rto(g2, d2, &mut ids);
        assert_eq!(pkts2.len(), 1);
    }

    impl TcpSender {
        /// Test helper: expose snd_nxt.
        fn snd_nxt_test(&self) -> u64 {
            self.snd_nxt
        }
    }

    #[test]
    fn trace_packet_out_classifies_kinds() {
        use dibs_net::ids::PacketId;
        use dibs_trace::{KindMask, TraceBuffer};
        let mut buf = TraceBuffer::new(KindMask::ALL);
        let mut data = Packet::data(
            PacketId(1),
            FlowId(2),
            HostId(0),
            HostId(1),
            0,
            1460,
            64,
            SimTime::ZERO,
        );
        trace_packet_out(&data, 10, 100, &mut buf);
        data.retransmit = true;
        trace_packet_out(&data, 20, 100, &mut buf);
        let ack = Packet::ack(
            PacketId(3),
            FlowId(2),
            HostId(1),
            HostId(0),
            1460,
            false,
            64,
            SimTime::ZERO,
        );
        trace_packet_out(&ack, 30, 101, &mut buf);
        let kinds: Vec<TraceKind> = buf.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![TraceKind::Send, TraceKind::Retransmit, TraceKind::Ack]
        );
        assert_eq!(buf.events()[0].node, 100);
    }

    #[test]
    fn on_rto_traced_emits_only_for_genuine_firings() {
        use dibs_trace::{KindMask, TraceBuffer};
        let (mut s, mut ids) = sender(1_000_000);
        s.start(SimTime::ZERO, &mut ids);
        let (deadline, gen) = s.timer().unwrap();
        let mut buf = TraceBuffer::new(KindMask::ALL);
        // A stale generation is ignored and must not be traced.
        let stale = s.on_rto_traced(gen + 99, deadline, &mut ids, 5, &mut buf);
        assert!(stale.is_empty());
        assert!(buf.events().is_empty());
        // The genuine firing produces exactly one flow-level event.
        let pkts = s.on_rto_traced(gen, deadline, &mut ids, 5, &mut buf);
        assert!(!pkts.is_empty());
        assert_eq!(buf.events().len(), 1);
        let ev = buf.events()[0];
        assert_eq!(ev.kind, TraceKind::Timeout);
        assert_eq!(ev.flow, 1);
        assert_eq!(ev.node, 5);
        assert_eq!(usize::from(ev.qlen), pkts.len());
    }
}
