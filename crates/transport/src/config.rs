//! Transport configuration.

use dibs_engine::time::SimDuration;

/// Fast-retransmit behavior (§4: DIBS reorders packets, so the paper
/// disables fast retransmit, or raises the dupack threshold above ~10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastRetransmit {
    /// Never fast-retransmit; rely on the RTO (the paper's DIBS setting).
    Disabled,
    /// Retransmit after this many duplicate acks (3 is classic TCP).
    DupAckThreshold(u32),
}

/// Congestion-control algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CcAlgorithm {
    /// Loss/ECN-reactive AIMD (TCP NewReno-style). With ECN it halves once
    /// per window on ECE, per RFC 3168.
    Reno,
    /// DCTCP: maintain the EWMA fraction `alpha` of marked bytes and cut
    /// `cwnd` by `alpha/2` once per window.
    Dctcp {
        /// EWMA gain for alpha (the DCTCP paper uses 1/16).
        g: f64,
    },
    /// Fixed window: no reaction to marks or losses. Used by the pFabric
    /// host stack, which starts at line rate and relies on priority
    /// scheduling plus a small fixed RTO.
    Fixed,
}

/// Full per-connection transport configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpConfig {
    /// Maximum segment size in bytes (payload per packet).
    pub mss: u32,
    /// Initial congestion window, in segments (Table 1: 10).
    pub init_cwnd: u32,
    /// Lower bound on the retransmission timeout (Table 1: 10 ms).
    pub min_rto: SimDuration,
    /// Upper bound on the (backed-off) retransmission timeout.
    pub max_rto: SimDuration,
    /// Fixed RTO override: when set, RTT estimation is disabled and the RTO
    /// is always exactly this value (pFabric: 350 µs on 1 Gbps links).
    pub fixed_rto: Option<SimDuration>,
    /// Fast-retransmit policy.
    pub fast_retransmit: FastRetransmit,
    /// Congestion control algorithm.
    pub cc: CcAlgorithm,
    /// Stamp each data packet's priority with the flow's remaining bytes
    /// (pFabric scheduling).
    pub priority_stamping: bool,
    /// Initial TTL for emitted packets (Fig 13 sweeps this).
    pub initial_ttl: u8,
    /// Receiver ack coalescing: 1 acks every packet (exact DCTCP marking
    /// feedback, the default); m > 1 runs the DCTCP delayed-ack state
    /// machine with one ack per m in-order packets.
    pub ack_every: u32,
}

impl TcpConfig {
    /// The paper's DCTCP host settings (Table 1), fast retransmit enabled at
    /// the classic threshold (the no-DIBS baseline).
    pub fn dctcp_baseline() -> Self {
        TcpConfig {
            mss: 1460,
            init_cwnd: 10,
            min_rto: SimDuration::from_millis(10),
            max_rto: SimDuration::from_secs(2),
            fixed_rto: None,
            fast_retransmit: FastRetransmit::DupAckThreshold(3),
            cc: CcAlgorithm::Dctcp { g: 1.0 / 16.0 },
            priority_stamping: false,
            initial_ttl: 255,
            ack_every: 1,
        }
    }

    /// DCTCP host settings for DIBS runs: identical, but fast retransmit is
    /// disabled because detours reorder packets (§4).
    pub fn dctcp_dibs() -> Self {
        TcpConfig {
            fast_retransmit: FastRetransmit::Disabled,
            ..Self::dctcp_baseline()
        }
    }

    /// The pFabric host stack of §5.8: fixed window, 350 µs fixed RTO,
    /// remaining-size priority stamping.
    pub fn pfabric() -> Self {
        TcpConfig {
            mss: 1460,
            init_cwnd: 10,
            min_rto: SimDuration::from_micros(350),
            max_rto: SimDuration::from_millis(100),
            fixed_rto: Some(SimDuration::from_micros(350)),
            fast_retransmit: FastRetransmit::Disabled,
            cc: CcAlgorithm::Fixed,
            priority_stamping: true,
            initial_ttl: 255,
            ack_every: 1,
        }
    }

    /// Plain NewReno without ECN sensitivity beyond RFC 3168 (used to
    /// demonstrate why DIBS needs an ECN-based controller, §3).
    pub fn newreno() -> Self {
        TcpConfig {
            cc: CcAlgorithm::Reno,
            fast_retransmit: FastRetransmit::DupAckThreshold(3),
            ..Self::dctcp_baseline()
        }
    }

    /// Congestion window floor, in bytes.
    pub fn min_cwnd(&self) -> f64 {
        f64::from(self.mss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let d = TcpConfig::dctcp_baseline();
        assert_eq!(d.mss, 1460);
        assert_eq!(d.init_cwnd, 10);
        assert_eq!(d.min_rto, SimDuration::from_millis(10));
        assert!(matches!(d.cc, CcAlgorithm::Dctcp { .. }));

        let dibs = TcpConfig::dctcp_dibs();
        assert_eq!(dibs.fast_retransmit, FastRetransmit::Disabled);

        let pf = TcpConfig::pfabric();
        assert_eq!(pf.fixed_rto, Some(SimDuration::from_micros(350)));
        assert!(pf.priority_stamping);
        assert_eq!(pf.cc, CcAlgorithm::Fixed);
    }
}
