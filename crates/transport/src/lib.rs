#![warn(missing_docs)]

//! Transport protocols for the DIBS reproduction.
//!
//! The paper couples DIBS with DCTCP (§3: DIBS needs an ECN-based
//! congestion controller, because it hides losses) and compares against
//! pFabric (§5.8). This crate provides a byte-accurate sliding-window TCP
//! sender/receiver pair with three congestion-control personalities:
//!
//! * [`config::CcAlgorithm::Dctcp`] — ECN-fraction-proportional decrease.
//! * [`config::CcAlgorithm::Reno`] — classic AIMD (RFC 3168 ECN response).
//! * [`config::CcAlgorithm::Fixed`] — pFabric's fixed-window host stack
//!   with a small fixed RTO and remaining-size priority stamping.
//!
//! Senders and receivers are pure state machines: they return packets and
//! expose timer demands; the simulator core does all scheduling.

pub mod config;
pub mod receiver;
pub mod sender;

pub use config::{CcAlgorithm, FastRetransmit, TcpConfig};
pub use receiver::{ReceiverCounters, TcpReceiver};
pub use sender::{trace_packet_out, SenderCounters, TcpSender};

use dibs_net::ids::PacketId;

/// Monotone packet-id allocator (one per simulation).
#[derive(Debug, Default)]
pub struct IdGen {
    next: u64,
}

impl IdGen {
    /// Creates a generator starting at id 0.
    pub fn new() -> Self {
        IdGen::default()
    }

    /// Allocates the next packet id.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> PacketId {
        let id = PacketId(self.next);
        self.next += 1;
        id
    }

    /// How many ids have been allocated.
    pub fn allocated(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idgen_is_monotone() {
        let mut g = IdGen::new();
        assert_eq!(g.next(), PacketId(0));
        assert_eq!(g.next(), PacketId(1));
        assert_eq!(g.allocated(), 2);
    }
}
