//! Property-based transport tests: arbitrary loss, reordering, and marking
//! patterns must never break delivery or state invariants.

use dibs_engine::testkit::{cases_n, vec_of};
use dibs_engine::time::{SimDuration, SimTime};
use dibs_net::ids::{FlowId, HostId, PacketId};
use dibs_net::packet::Packet;
use dibs_transport::{IdGen, TcpConfig, TcpReceiver, TcpSender};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Drives a sender/receiver pair over a lossy, jittery pipe described by
/// deterministic per-packet decision patterns.
struct Channel {
    drop_pattern: Vec<bool>,
    jitter_pattern: Vec<u64>,
    mark_pattern: Vec<bool>,
    max_steps: u64,
}

impl Channel {
    fn run(&self, cfg: TcpConfig, size: u64) -> (TcpSender, TcpReceiver, u64) {
        let mut sender = TcpSender::new(cfg, FlowId(0), HostId(0), HostId(1), size);
        let mut receiver = TcpReceiver::new(FlowId(0), HostId(1), HostId(0), size, 255);
        let mut ids = IdGen::new();
        let base = SimDuration::from_micros(30);

        #[derive(PartialEq, Eq, PartialOrd, Ord)]
        enum Item {
            Data { seq: u64, len: u32, ce: bool },
            Ack { seq: u64, ece: bool },
            Timer(u64),
        }
        let mut heap: BinaryHeap<Reverse<(SimTime, u64, Item)>> = BinaryHeap::new();
        let mut tick = 0u64;
        let mut data_idx = 0usize;
        let mut last_timer_gen = u64::MAX;
        let mut now = SimTime::ZERO;

        let push_pkts = |pkts: Vec<Packet>,
                         heap: &mut BinaryHeap<Reverse<(SimTime, u64, Item)>>,
                         now: SimTime,
                         tick: &mut u64,
                         data_idx: &mut usize| {
            for p in pkts {
                let i = *data_idx % self.drop_pattern.len();
                *data_idx += 1;
                if self.drop_pattern[i] {
                    continue;
                }
                let jitter =
                    SimDuration::from_micros(self.jitter_pattern[i % self.jitter_pattern.len()]);
                *tick += 1;
                heap.push(Reverse((
                    now + base + jitter,
                    *tick,
                    Item::Data {
                        seq: p.seq,
                        len: p.payload_bytes,
                        ce: self.mark_pattern[i % self.mark_pattern.len()],
                    },
                )));
            }
        };

        let first = sender.start(now, &mut ids);
        push_pkts(first, &mut heap, now, &mut tick, &mut data_idx);
        if let Some((deadline, gen)) = sender.timer() {
            last_timer_gen = gen;
            tick += 1;
            heap.push(Reverse((deadline, tick, Item::Timer(gen))));
        }

        let mut steps = 0u64;
        while let Some(Reverse((t, _, item))) = heap.pop() {
            steps += 1;
            if steps > self.max_steps {
                break;
            }
            now = t;
            let out = match item {
                Item::Data { seq, len, ce } => {
                    let mut pkt = Packet::data(
                        PacketId(steps),
                        FlowId(0),
                        HostId(0),
                        HostId(1),
                        seq,
                        len,
                        64,
                        now,
                    );
                    pkt.ce = ce;
                    // Acks are never dropped in this harness (ack loss is
                    // covered by the sim-level tests).
                    if let Some(ack) = receiver.on_data(&pkt, now, &mut ids) {
                        tick += 1;
                        heap.push(Reverse((
                            now + base,
                            tick,
                            Item::Ack {
                                seq: ack.seq,
                                ece: ack.ece,
                            },
                        )));
                    }
                    Vec::new()
                }
                Item::Ack { seq, ece } => sender.on_ack(seq, ece, now, &mut ids),
                Item::Timer(gen) => sender.on_rto(gen, now, &mut ids),
            };
            push_pkts(out, &mut heap, now, &mut tick, &mut data_idx);
            if let Some((deadline, gen)) = sender.timer() {
                if gen != last_timer_gen {
                    last_timer_gen = gen;
                    tick += 1;
                    heap.push(Reverse((deadline, tick, Item::Timer(gen))));
                }
            }
            if sender.is_complete() {
                break;
            }
        }
        (sender, receiver, steps)
    }
}

/// Whatever the loss/reorder/mark pattern, the receiver either ends with
/// exactly `size` in-order bytes (if the sender completed) and never
/// more than `size`.
#[test]
fn delivery_is_exact_under_adversity() {
    cases_n("delivery-adversity", 48, |rng, _| {
        let size = rng.range_u64(1, 120_000);
        let mut drop_pattern = vec_of(rng, 8..40, |r| r.chance(0.08));
        // Guarantee progress: at least one packet per cycle gets through.
        if drop_pattern.iter().all(|&d| d) {
            drop_pattern[0] = false;
        }
        let jitter = vec_of(rng, 4..16, |r| r.range_u64(0, 400));
        let marks = vec_of(rng, 4..16, |r| r.chance(0.5));
        let ch = Channel {
            drop_pattern,
            jitter_pattern: jitter,
            mark_pattern: marks,
            max_steps: 300_000,
        };
        let (sender, receiver, _) = ch.run(TcpConfig::dctcp_dibs(), size);
        assert!(receiver.rcv_nxt() <= size);
        if sender.is_complete() {
            assert_eq!(receiver.rcv_nxt(), size);
            assert!(receiver.is_complete());
        }
        // Invariants that hold regardless of completion.
        assert!(sender.cwnd() >= 1460.0);
        assert!((0.0..=1.0).contains(&sender.alpha()));
    });
}

/// With zero loss, every configuration completes, regardless of
/// reordering, and the DIBS-tuned config never takes a timeout.
#[test]
fn lossless_reordering_completes() {
    cases_n("lossless-reorder", 48, |rng, _| {
        let size = rng.range_u64(1, 200_000);
        let jitter = vec_of(rng, 4..16, |r| r.range_u64(0, 800));
        for (cfg, expect_no_timeouts) in [
            (TcpConfig::dctcp_dibs(), true),
            (TcpConfig::dctcp_baseline(), true),
            (TcpConfig::pfabric(), false), // 350us fixed RTO can misfire under 800us jitter.
        ] {
            let ch = Channel {
                drop_pattern: vec![false],
                jitter_pattern: jitter.clone(),
                mark_pattern: vec![false],
                max_steps: 300_000,
            };
            let (sender, receiver, _) = ch.run(cfg, size);
            assert!(sender.is_complete(), "cfg {cfg:?} stalled");
            assert_eq!(receiver.rcv_nxt(), size);
            if expect_no_timeouts {
                assert_eq!(sender.counters().timeouts, 0);
            }
        }
    });
}

/// Marking every packet drives alpha to 1 and pins cwnd at the floor;
/// marking none decays alpha, for any flow size that spans multiple
/// windows.
#[test]
fn alpha_extremes() {
    cases_n("alpha-extremes", 24, |rng, i| {
        let all_marked = i % 2 == 0;
        let size = rng.range_u64(500_000, 2_000_000);
        let ch = Channel {
            drop_pattern: vec![false],
            jitter_pattern: vec![0],
            mark_pattern: vec![all_marked],
            max_steps: 300_000,
        };
        let (sender, _, _) = ch.run(TcpConfig::dctcp_dibs(), size);
        assert!(sender.is_complete());
        if all_marked {
            assert!(sender.alpha() > 0.5, "alpha {}", sender.alpha());
        } else {
            // Unmarked flows finish within a handful of slow-start windows,
            // so alpha (initialized to 1, EWMA gain 1/16) only decays a
            // step per window — require clear movement, not convergence.
            assert!(sender.alpha() < 0.8, "alpha {}", sender.alpha());
        }
    });
}
