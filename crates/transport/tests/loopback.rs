//! End-to-end sender/receiver tests over a tiny in-test event loop.
//!
//! These exercise the transport pair over a "perfect pipe" with constant
//! delay, optional random reordering, deterministic loss, and synthetic ECN
//! marking — without the full simulator.

use dibs_engine::rng::SimRng;
use dibs_engine::time::{SimDuration, SimTime};
use dibs_net::ids::{FlowId, HostId};
use dibs_net::packet::Packet;
use dibs_transport::{IdGen, TcpConfig, TcpReceiver, TcpSender};
use std::collections::BinaryHeap;

/// A minimal bidirectional pipe harness.
struct Pipe {
    sender: TcpSender,
    receiver: TcpReceiver,
    ids: IdGen,
    /// (deliver_at, seq for determinism, packet) min-heap.
    wire: BinaryHeap<std::cmp::Reverse<(SimTime, u64, WireItem)>>,
    wire_seq: u64,
    delay: SimDuration,
    now: SimTime,
    /// Drop the n-th data transmission (0-based) if set.
    drop_nth_data: Option<u64>,
    data_seen: u64,
    /// Mark every data packet CE (synthetic congestion).
    mark_all: bool,
    /// Random extra per-packet jitter to force reordering.
    jitter: Option<(SimRng, SimDuration)>,
    scheduled_timer: Option<(SimTime, u64)>,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum WireItem {
    Pkt(WirePacket),
    Timer(u64),
}

/// Ord-able packet wrapper (ordering only used for heap determinism).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct WirePacket {
    is_ack: bool,
    seq: u64,
    payload: u32,
    ce: bool,
    ece: bool,
    id: u64,
}

impl WirePacket {
    fn from(p: &Packet) -> Self {
        WirePacket {
            is_ack: p.is_ack(),
            seq: p.seq,
            payload: p.payload_bytes,
            ce: p.ce,
            ece: p.ece,
            id: p.id.0,
        }
    }
}

impl Pipe {
    fn new(cfg: TcpConfig, size: u64, delay: SimDuration) -> Self {
        Pipe {
            sender: TcpSender::new(cfg, FlowId(0), HostId(0), HostId(1), size),
            receiver: TcpReceiver::new(FlowId(0), HostId(1), HostId(0), size, 255),
            ids: IdGen::new(),
            wire: BinaryHeap::new(),
            wire_seq: 0,
            delay,
            now: SimTime::ZERO,
            drop_nth_data: None,
            data_seen: 0,
            mark_all: false,
            jitter: None,
            scheduled_timer: None,
        }
    }

    fn transmit(&mut self, pkts: Vec<Packet>) {
        for mut p in pkts {
            if p.is_data() {
                if self.mark_all {
                    p.ce = true;
                }
                let n = self.data_seen;
                self.data_seen += 1;
                if self.drop_nth_data == Some(n) {
                    continue;
                }
            }
            let mut at = self.now + self.delay;
            if let Some((rng, max_jitter)) = &mut self.jitter {
                at += SimDuration::from_nanos(rng.range_u64(0, max_jitter.as_nanos().max(1)));
            }
            self.wire_seq += 1;
            self.wire.push(std::cmp::Reverse((
                at,
                self.wire_seq,
                WireItem::Pkt(WirePacket::from(&p)),
            )));
        }
        self.sync_timer();
    }

    fn sync_timer(&mut self) {
        if let Some((deadline, gen)) = self.sender.timer() {
            if self.scheduled_timer.map(|(_, g)| g) != Some(gen) {
                self.scheduled_timer = Some((deadline, gen));
                self.wire_seq += 1;
                self.wire.push(std::cmp::Reverse((
                    deadline,
                    self.wire_seq,
                    WireItem::Timer(gen),
                )));
            }
        }
    }

    /// Runs to completion (or event exhaustion); returns completion time.
    fn run(&mut self) -> Option<SimTime> {
        let start = self.sender.start(self.now, &mut self.ids);
        self.transmit(start);
        let mut steps = 0u64;
        while let Some(std::cmp::Reverse((t, _, item))) = self.wire.pop() {
            steps += 1;
            assert!(steps < 1_000_000, "runaway loop");
            self.now = t;
            match item {
                WireItem::Timer(gen) => {
                    let out = self.sender.on_rto(gen, self.now, &mut self.ids);
                    self.transmit(out);
                }
                WireItem::Pkt(wp) if wp.is_ack => {
                    let out = self.sender.on_ack(wp.seq, wp.ece, self.now, &mut self.ids);
                    self.transmit(out);
                }
                WireItem::Pkt(wp) => {
                    let mut pkt = Packet::data(
                        dibs_net::ids::PacketId(wp.id),
                        FlowId(0),
                        HostId(0),
                        HostId(1),
                        wp.seq,
                        wp.payload,
                        64,
                        self.now,
                    );
                    pkt.ce = wp.ce;
                    if let Some(ack) = self.receiver.on_data(&pkt, self.now, &mut self.ids) {
                        self.transmit(vec![ack]);
                    }
                }
            }
            if self.sender.is_complete() && self.receiver.is_complete() {
                return self.sender.completed_at();
            }
        }
        None
    }
}

#[test]
fn clean_transfer_completes_quickly() {
    let mut pipe = Pipe::new(
        TcpConfig::dctcp_baseline(),
        1_000_000,
        SimDuration::from_micros(50),
    );
    let done = pipe.run().expect("flow completes");
    // 1 MB at unbounded pipe rate: bounded by slow-start round trips only.
    assert!(done < SimTime::from_millis(5), "took {done}");
    assert_eq!(pipe.sender.counters().timeouts, 0);
    assert_eq!(pipe.receiver.rcv_nxt(), 1_000_000);
}

#[test]
fn exact_byte_count_delivered() {
    for size in [1u64, 100, 1460, 1461, 14_600, 1_000_000, 1_234_567] {
        let mut pipe = Pipe::new(
            TcpConfig::dctcp_baseline(),
            size,
            SimDuration::from_micros(10),
        );
        pipe.run().expect("completes");
        assert_eq!(pipe.receiver.rcv_nxt(), size, "size {size}");
    }
}

#[test]
fn single_loss_recovers_via_rto_without_fast_retransmit() {
    let mut pipe = Pipe::new(
        TcpConfig::dctcp_dibs(), // Fast retransmit disabled.
        100_000,
        SimDuration::from_micros(50),
    );
    pipe.drop_nth_data = Some(3);
    let done = pipe.run().expect("flow still completes");
    assert_eq!(pipe.sender.counters().timeouts, 1);
    assert_eq!(pipe.sender.counters().fast_retransmits, 0);
    // RTO is 10 ms, so completion is dominated by one timeout.
    assert!(done >= SimTime::from_millis(10));
    assert!(done < SimTime::from_millis(50));
}

#[test]
fn single_loss_recovers_via_fast_retransmit_when_enabled() {
    let mut pipe = Pipe::new(
        TcpConfig::dctcp_baseline(), // Dupack threshold 3.
        100_000,
        SimDuration::from_micros(50),
    );
    pipe.drop_nth_data = Some(3);
    let done = pipe.run().expect("completes");
    assert_eq!(pipe.sender.counters().fast_retransmits, 1);
    assert!(
        done < SimTime::from_millis(10),
        "fast retransmit should beat the RTO, took {done}"
    );
}

#[test]
fn continuous_marking_shrinks_cwnd() {
    let mut pipe = Pipe::new(
        TcpConfig::dctcp_baseline(),
        2_000_000,
        SimDuration::from_micros(50),
    );
    pipe.mark_all = true;
    pipe.run().expect("completes");
    // With every byte marked, alpha ~ 1 and cwnd sits at the floor.
    assert!(pipe.sender.alpha() > 0.5, "alpha {}", pipe.sender.alpha());
    assert!(
        pipe.sender.cwnd() <= 2.0 * 1460.0,
        "cwnd {}",
        pipe.sender.cwnd()
    );
}

#[test]
fn heavy_reordering_still_completes_without_fast_retransmit() {
    let mut pipe = Pipe::new(
        TcpConfig::dctcp_dibs(),
        500_000,
        SimDuration::from_micros(20),
    );
    // Up to 400 us of random jitter per packet: massive reordering relative
    // to the 20 us base delay.
    pipe.jitter = Some((SimRng::new(9), SimDuration::from_micros(400)));
    let done = pipe.run().expect("completes despite reordering");
    assert_eq!(pipe.receiver.rcv_nxt(), 500_000);
    // No losses occurred, so there should be no timeouts either: reordering
    // alone must not stall the DIBS-tuned sender (minRTO 10ms >> jitter).
    assert_eq!(pipe.sender.counters().timeouts, 0, "took {done}");
    assert!(pipe.receiver.counters().out_of_order > 0);
}

#[test]
fn reordering_with_fast_retransmit_causes_spurious_rtx() {
    // The §4 rationale for disabling fast retransmit under DIBS: heavy
    // reordering plus a dupack threshold of 3 produces unnecessary
    // retransmissions even with zero loss.
    let mut pipe = Pipe::new(
        TcpConfig::dctcp_baseline(),
        500_000,
        SimDuration::from_micros(20),
    );
    pipe.jitter = Some((SimRng::new(9), SimDuration::from_micros(400)));
    pipe.run().expect("completes");
    assert!(
        pipe.sender.counters().fast_retransmits > 0,
        "expected spurious fast retransmits under heavy reordering"
    );
}

#[test]
fn pfabric_stack_completes() {
    let mut pipe = Pipe::new(
        TcpConfig::pfabric(),
        1_000_000,
        SimDuration::from_micros(20),
    );
    let done = pipe.run().expect("completes");
    assert!(done < SimTime::from_millis(5));
    assert_eq!(pipe.receiver.rcv_nxt(), 1_000_000);
}

#[test]
fn pfabric_survives_repeated_loss_with_fixed_rto() {
    let mut pipe = Pipe::new(TcpConfig::pfabric(), 50_000, SimDuration::from_micros(20));
    pipe.drop_nth_data = Some(0); // Lose the very first packet.
    let done = pipe.run().expect("completes");
    assert!(pipe.sender.counters().timeouts >= 1);
    // Fixed 350 us RTO: recovery is fast.
    assert!(done < SimTime::from_millis(2), "took {done}");
}
