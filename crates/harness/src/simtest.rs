//! Randomized simulation-test soak harness (`simtest`).
//!
//! Each soak *case* is a seeded random draw of a small topology, a small
//! workload, and a fault schedule (timed link flaps, switch crashes, and
//! probabilistic drop/corrupt profiles — see `dibs_fault`). Every case is
//! executed three times:
//!
//! 1. traced, across the parallel [`Executor`](crate::Executor);
//! 2. untraced, sequentially;
//! 3. untraced again, across the parallel executor (re-execution).
//!
//! and four invariants are asserted per case:
//!
//! * **Packet conservation** — `packets_sent == packets_delivered +
//!   total_drops() + packets_in_flight`, even with switches crashing
//!   mid-run and frames cut on downed links.
//! * **TTL bound / no runaway detour loops** — via `dibs-trace` queries:
//!   no packet visits more switches than its initial TTL allows, and
//!   every packet the detour-loop query flags really detoured.
//! * **Clock monotonicity** — trace timestamps never go backwards and the
//!   run never finishes past its horizon.
//! * **Determinism** — the [`RunDigest`] fingerprint is byte-identical
//!   across all three executions (tracing, thread count, and re-execution
//!   are invisible to results).
//!
//! The binary front-end lives in `src/bin/simtest.rs`; `scripts/check.sh
//! --full` runs the smoke tier (64 seeds) on every full check.

use crate::Executor;
use dibs::{FaultSpec, RunDigest, RunResults, SimConfig, Simulation, TraceSpec, Tracer};
use dibs_engine::rng::SimRng;
use dibs_engine::time::SimTime;
use dibs_net::builders::{dumbbell, fat_tree, linear, mini_testbed, single_switch, FatTreeParams};
use dibs_net::ids::HostId;
use dibs_net::topology::{LinkSpec, Topology};
use dibs_trace::{query, TraceKind};
use dibs_workload::{FlowClass, FlowSpec, QuerySpec};

/// Seeded cases in a full soak (the ISSUE's acceptance tier).
pub const DEFAULT_SEEDS: u64 = 256;
/// Seeded cases in the `--smoke` tier run by `scripts/check.sh --full`.
pub const SMOKE_SEEDS: u64 = 64;
/// Master seed the soak derives every case seed from (the same master the
/// workspace determinism tests use).
pub const MASTER_SEED: u64 = 0xD1B5_2014;

/// Soak parameters.
#[derive(Debug, Clone, Copy)]
pub struct SoakConfig {
    /// Number of seeded cases to run.
    pub seeds: u64,
    /// Worker threads for the parallel passes.
    pub jobs: usize,
    /// Master seed; each case's seed is a pure function of this and the
    /// case index.
    pub master_seed: u64,
}

impl SoakConfig {
    /// The full soak at `jobs` workers.
    pub fn full(jobs: usize) -> Self {
        SoakConfig {
            seeds: DEFAULT_SEEDS,
            jobs,
            master_seed: MASTER_SEED,
        }
    }

    /// The smoke tier at `jobs` workers.
    pub fn smoke(jobs: usize) -> Self {
        SoakConfig {
            seeds: SMOKE_SEEDS,
            ..Self::full(jobs)
        }
    }
}

/// One violated invariant.
#[derive(Debug, Clone)]
pub struct SoakFailure {
    /// Label of the case that failed (`simtest/<index> <topology>`).
    pub case: String,
    /// Which invariant was violated.
    pub invariant: &'static str,
    /// Human-readable evidence.
    pub detail: String,
}

impl std::fmt::Display for SoakFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {} — {}", self.case, self.invariant, self.detail)
    }
}

/// Outcome of a whole soak.
#[derive(Debug)]
pub struct SoakReport {
    /// Cases executed (each runs three times).
    pub cases: u64,
    /// Packets injected across all traced runs.
    pub packets_sent: u64,
    /// Packets delivered across all traced runs.
    pub packets_delivered: u64,
    /// Packets destroyed by injected faults across all traced runs.
    pub fault_drops: u64,
    /// Every invariant violation observed.
    pub failures: Vec<SoakFailure>,
}

impl SoakReport {
    /// Whether every invariant held in every case.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The identity of one soak case; everything else is derived from it.
#[derive(Debug, Clone, Copy)]
struct Case {
    index: u64,
    seed: u64,
}

/// One case fully materialized: ready-to-run inputs plus the bounds the
/// invariants check against.
struct Materialized {
    label: String,
    topo: Topology,
    config: SimConfig,
    flows: Vec<FlowSpec>,
    queries: Vec<QuerySpec>,
    faults: FaultSpec,
}

const TOPOLOGY_FAMILIES: usize = 5;

/// Derives a case's topology, workload, and fault schedule from its seed.
/// Pure: called once per execution pass, and every pass must see the
/// identical inputs for the determinism invariant to be meaningful.
fn materialize(case: Case) -> Materialized {
    let mut rng = SimRng::new(case.seed).fork("simtest/gen");
    let gbit = LinkSpec::gbit(1);
    #[allow(clippy::cast_possible_truncation)] // modulo a tiny constant
    let family = (case.index % TOPOLOGY_FAMILIES as u64) as usize;
    let (name, topo) = match family {
        0 => ("single_switch", single_switch(6, gbit)),
        1 => ("linear", linear(3, 2, gbit)),
        2 => ("dumbbell", dumbbell(4, 4, gbit, gbit)),
        3 => ("mini_testbed", mini_testbed(gbit)),
        _ => (
            "fat_tree_k4",
            fat_tree(FatTreeParams {
                k: 4,
                host_link: gbit,
                fabric_link: gbit,
            }),
        ),
    };

    let mut config = SimConfig::dctcp_dibs();
    config.seed = case.seed;
    config.horizon = SimTime::from_millis(30);

    let hosts = topo.num_hosts();
    let mut flows = Vec::new();
    let mut queries = Vec::new();

    // One partition-aggregate incast per case (buffer pressure), degree
    // scaled to the topology.
    let target = rng.below(hosts);
    let max_degree = (hosts - 1).min(8);
    let degree = 2.max(rng.below(max_degree) + 1);
    let responders: Vec<HostId> = rng
        .sample_distinct(hosts - 1, degree)
        .into_iter()
        .map(|r| HostId::from_index(if r >= target { r + 1 } else { r }))
        .collect();
    queries.push(QuerySpec {
        start: SimTime::from_micros(rng.range_u64(0, 500)),
        target: HostId::from_index(target),
        responders,
        response_bytes: 4_000 + 8_000 * rng.range_u64(0, 4),
    });

    // A few background pairs so acks, retransmissions, and cross traffic
    // interleave with the incast.
    for _ in 0..(1 + rng.below(3)) {
        let src = rng.below(hosts);
        let mut dst = rng.below(hosts - 1);
        if dst >= src {
            dst += 1;
        }
        flows.push(FlowSpec {
            start: SimTime::from_micros(rng.range_u64(0, 2_000)),
            src: HostId::from_index(src),
            dst: HostId::from_index(dst),
            size: 2_000 + rng.range_u64(0, 30_000),
            class: FlowClass::Background,
        });
    }

    // Fault schedule: seeded random link flaps, plus (sometimes)
    // probabilistic drop/corrupt profiles and a timed switch crash
    // addressed by its topology name.
    let mut clauses: Vec<String> = vec![format!("random:{}", 1 + rng.below(3))];
    if rng.chance(0.6) {
        let kind = *rng.pick(&["any", "detoured", "data", "ack"]);
        clauses.push(format!("drop:p=1e-3:kind={kind}"));
    }
    if rng.chance(0.3) {
        clauses.push("corrupt:p=5e-4".to_string());
    }
    if rng.chance(0.25) {
        let sw = topo.switch_nodes()[rng.below(topo.num_switches())];
        let name = topo.node(sw).name.clone();
        let t_us = rng.range_u64(2_000, 20_000);
        clauses.push(format!("switch-crash:t={t_us}us:{name}"));
    }
    let spec = clauses.join(";");
    let faults: FaultSpec = spec
        .parse()
        .unwrap_or_else(|e| panic!("generated fault spec `{spec}` must parse: {e}"));

    Materialized {
        label: format!("simtest/{} {}", case.index, name),
        topo,
        config,
        flows,
        queries,
        faults,
    }
}

/// One executed case: the run plus the bounds its invariants check.
struct CaseRun {
    label: String,
    initial_ttl: u8,
    horizon: SimTime,
    results: RunResults,
}

/// Runs one materialized case once. `traced` installs a full-capture
/// tracer so the trace-based invariants can run; results must be
/// byte-identical either way.
fn run_case(case: Case, traced: bool) -> CaseRun {
    let m = materialize(case);
    let initial_ttl = m.config.tcp.initial_ttl;
    let horizon = m.config.horizon;
    let mut sim = Simulation::new(m.topo, m.config);
    sim.add_flows(m.flows);
    sim.add_queries(&m.queries);
    sim.set_faults(&m.faults)
        .unwrap_or_else(|e| panic!("{}: generated fault spec must resolve: {e}", m.label));
    if traced {
        sim.set_tracer(Tracer::from_spec(
            &TraceSpec::parse("all").expect("`all` is a valid trace spec"),
        ));
    }
    CaseRun {
        label: m.label,
        initial_ttl,
        horizon,
        results: sim.run(),
    }
}

/// Invariants 1–3 on one traced run.
fn check_invariants(
    label: &str,
    initial_ttl: u8,
    horizon: SimTime,
    results: &RunResults,
) -> Vec<SoakFailure> {
    let mut failures = Vec::new();
    let fail = |invariant, detail: String| SoakFailure {
        case: label.to_string(),
        invariant,
        detail,
    };

    // 1. Packet conservation.
    let c = &results.counters;
    let accounted = c.packets_delivered + c.total_drops() + results.packets_in_flight;
    if c.packets_sent != accounted {
        failures.push(fail(
            "packet-conservation",
            format!(
                "sent {} != delivered {} + drops {} + in_flight {}",
                c.packets_sent,
                c.packets_delivered,
                c.total_drops(),
                results.packets_in_flight
            ),
        ));
    }

    // 3. Finish bound (checked even without a trace).
    if results.finished_at > horizon {
        failures.push(fail(
            "clock-monotonicity",
            format!(
                "finished at {} ns, past the {} ns horizon",
                results.finished_at.as_nanos(),
                horizon.as_nanos()
            ),
        ));
    }

    let Some(trace) = &results.trace else {
        failures.push(fail(
            "clock-monotonicity",
            "traced run produced no trace report".to_string(),
        ));
        return failures;
    };

    // 3. Trace timestamps never go backwards (full capture preserves
    // dispatch order).
    let mut prev = 0u64;
    for e in &trace.events {
        if e.t_ns < prev {
            failures.push(fail(
                "clock-monotonicity",
                format!("trace time went backwards: {} ns after {} ns", e.t_ns, prev),
            ));
            break;
        }
        prev = e.t_ns;
    }

    // 2. TTL bound: a packet visits a switch queue (Enqueue or Detour) at
    // most once per TTL decrement, so no packet may exceed its initial
    // TTL — detour loops exist but the TTL bound cuts them.
    let mut visits: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for e in &trace.events {
        if matches!(e.kind, TraceKind::Enqueue | TraceKind::Detour) {
            *visits.entry(e.packet).or_insert(0) += 1;
        }
    }
    for (&pkt, &n) in &visits {
        if n > u64::from(initial_ttl) {
            failures.push(fail(
                "ttl-bound",
                format!("packet {pkt} was queued {n} times but initial TTL is {initial_ttl}"),
            ));
        }
    }

    // 2b. Detour-loop query sanity: every flagged packet really detoured.
    for pkt in query::detour_loop_packets(&trace.events) {
        let lifecycle = query::packet_lifecycle(&trace.events, pkt);
        if !lifecycle.iter().any(|e| e.kind == TraceKind::Detour) {
            failures.push(fail(
                "ttl-bound",
                format!("loop query flagged packet {pkt} which never detoured"),
            ));
        }
    }

    failures
}

/// Runs the full soak: `cfg.seeds` cases × three executions each, and
/// returns every invariant violation found.
pub fn run_soak(cfg: &SoakConfig) -> SoakReport {
    let cases: Vec<Case> = (0..cfg.seeds)
        .map(|i| Case {
            index: i,
            seed: dibs::RunDescriptor::new("simtest", "fault-soak", i, 0).seed(cfg.master_seed),
        })
        .collect();

    // Pass 1: traced, parallel. Invariants 1–3 run on these results.
    let traced = Executor::new(cfg.jobs).map(cases.clone(), |c| {
        let run = run_case(c, true);
        let fp = RunDigest::of(&run.results).fingerprint();
        let failures = check_invariants(&run.label, run.initial_ttl, run.horizon, &run.results);
        (
            run.label,
            fp,
            failures,
            run.results.counters.packets_sent,
            run.results.counters.packets_delivered,
            run.results.counters.drops_fault,
        )
    });

    // Pass 2: untraced, sequential — the digest baseline.
    let sequential = Executor::sequential().map(cases.clone(), |c| {
        let run = run_case(c, false);
        (run.label, RunDigest::of(&run.results).fingerprint())
    });

    // Pass 3: untraced, parallel re-execution.
    let reexecuted = Executor::new(cfg.jobs).map(cases, |c| {
        RunDigest::of(&run_case(c, false).results).fingerprint()
    });

    let mut report = SoakReport {
        cases: cfg.seeds,
        packets_sent: 0,
        packets_delivered: 0,
        fault_drops: 0,
        failures: Vec::new(),
    };
    for (((label, fp, failures, sent, delivered, faulted), (label2, fp_seq)), fp_re) in
        traced.into_iter().zip(sequential).zip(reexecuted)
    {
        debug_assert_eq!(label, label2, "executor must preserve input order");
        report.packets_sent += sent;
        report.packets_delivered += delivered;
        report.fault_drops += faulted;
        report.failures.extend(failures);
        // 4. Determinism across tracing, thread count, and re-execution.
        if fp != fp_seq || fp != fp_re {
            report.failures.push(SoakFailure {
                case: label,
                invariant: "determinism",
                detail: format!(
                    "digest diverged: traced/parallel {fp:#018x}, \
                     untraced/sequential {fp_seq:#018x}, re-executed {fp_re:#018x}"
                ),
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_soak_holds_all_invariants() {
        let report = run_soak(&SoakConfig {
            seeds: 10,
            jobs: 2,
            master_seed: MASTER_SEED,
        });
        assert!(
            report.ok(),
            "soak failures:\n{}",
            report
                .failures
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert_eq!(report.cases, 10);
        assert!(report.packets_sent > 0);
        assert!(report.packets_delivered > 0);
    }

    #[test]
    fn cases_cover_every_topology_family_and_inject_faults() {
        // Over a handful of consecutive indices the generator must hit
        // every topology family and produce at least one fault drop
        // somewhere (probabilistic profiles plus random flaps make a
        // fault-free 10-case soak astronomically unlikely).
        let report = run_soak(&SoakConfig {
            seeds: 10,
            jobs: 1,
            master_seed: MASTER_SEED,
        });
        assert!(report.fault_drops > 0, "no injected fault ever dropped");
    }
}
