//! `simtest`: randomized fault-injection soak harness.
//!
//! ```text
//! Usage: simtest [--smoke] [--seeds N] [--jobs N]
//!
//! Options:
//!   --smoke     run the 64-seed smoke tier (the check.sh --full gate)
//!   --seeds N   run exactly N seeded cases (overrides --smoke)
//!   --jobs N    worker threads (default: DIBS_JOBS or all cores)
//! ```
//!
//! Each seeded case draws a random topology, workload, and fault schedule,
//! runs it three times (traced parallel, untraced sequential, untraced
//! parallel re-execution), and checks four invariants: packet conservation,
//! no post-TTL detour loops, clock monotonicity, and byte-identical digests
//! across all three executions. Exit status is nonzero if any case fails.

use dibs_harness::simtest::{run_soak, SoakConfig};
use std::process::ExitCode;

const USAGE: &str = "Usage: simtest [--smoke] [--seeds N] [--jobs N]";

fn main() -> ExitCode {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let jobs = dibs_harness::take_jobs_flag(&mut raw)
        .or_else(dibs_harness::env_jobs)
        .unwrap_or_else(dibs_harness::default_jobs);

    let mut cfg = SoakConfig::full(jobs);
    let mut args = raw.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => cfg = SoakConfig::smoke(jobs),
            "--seeds" => match args.next().map(|s| s.parse::<u64>()) {
                Some(Ok(n)) if n >= 1 => cfg.seeds = n,
                _ => {
                    eprintln!("--seeds needs a positive number\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown option `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    eprintln!(
        "simtest: {} seeded cases x 3 executions, {} jobs",
        cfg.seeds, cfg.jobs
    );
    let started = std::time::Instant::now();
    let report = run_soak(&cfg);
    let wall = started.elapsed();

    println!(
        "simtest: {} cases, {} packets sent, {} delivered, {} fault drops ({wall:.2?})",
        report.cases, report.packets_sent, report.packets_delivered, report.fault_drops
    );
    if report.ok() {
        println!("simtest: all invariants held");
        ExitCode::SUCCESS
    } else {
        for f in &report.failures {
            eprintln!("FAIL {f}");
        }
        eprintln!("simtest: {} invariant failure(s)", report.failures.len());
        ExitCode::FAILURE
    }
}
