//! Deterministic parallel sweep executor.
//!
//! Every evaluation in the DIBS paper is a sweep of *independent* simulation
//! runs — buffer sizes, TTL limits, incast degrees, query rates. This crate
//! fans those runs across OS threads while keeping the merged output
//! **byte-identical for any `--jobs N`, including `N = 1`**:
//!
//! * Work is distributed by a work-stealing pool, so thread count and
//!   completion order are *scheduling* details only.
//! * Each run must derive its randomness from the run's *descriptor* (what
//!   the run is), never from which thread ran it or when it finished — see
//!   `dibs_engine::rng::derive_stream_seed` and `dibs::RunDescriptor`.
//! * Results land in slots indexed by the run's position in the input, and
//!   [`Executor::map`] returns them in input order, so the reduction is
//!   independent of execution interleaving.
//!
//! The [`Executor`] itself is pure `std` with no workspace dependencies,
//! so any crate (or dev-dependency graph) can use it without cycles — the
//! simulator crates this crate depends on pull it in only as a
//! *dev*-dependency, which Cargo keeps out of the normal dependency
//! graph. All other crates are forbidden from touching `std::thread`
//! directly — the `thread-spawn` rule in `dibs-lint` enforces this.
//!
//! The [`simtest`] module (and its `simtest` binary) layers a randomized
//! fault-injection soak harness on top of the executor: seeded random
//! topologies × workloads × fault schedules, with per-run invariant
//! checks. That module is why this crate now depends on the simulator
//! stack.
//!
//! ```
//! use dibs_harness::Executor;
//!
//! let seq = Executor::new(1).map((0..100).collect(), |x: u64| x * x);
//! let par = Executor::new(8).map((0..100).collect(), |x: u64| x * x);
//! assert_eq!(seq, par); // same bytes regardless of thread count
//! ```

pub mod simtest;

use std::collections::VecDeque;
use std::sync::Mutex;

/// Environment variable consulted by [`Executor::from_env`] for the worker
/// count. Sweep binaries also accept `--jobs N`, which takes precedence.
pub const JOBS_ENV: &str = "DIBS_JOBS";

/// A fixed-width thread pool that maps a function over a batch of
/// independent items and returns the results **in input order**.
///
/// The executor is cheap to construct (threads are spawned per
/// [`map`](Executor::map) call and joined before it returns), carries no
/// state between calls, and never lets scheduling influence results: with a
/// correctly seeded work function, `map` output is byte-identical for every
/// `jobs` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    jobs: usize,
}

impl Executor {
    /// An executor running `jobs` worker threads. `jobs == 1` (or `0`,
    /// which is clamped to 1) runs inline on the calling thread with no
    /// thread machinery at all.
    pub fn new(jobs: usize) -> Self {
        Executor { jobs: jobs.max(1) }
    }

    /// A single-threaded executor; `map` degenerates to `Vec::into_iter().map()`.
    pub fn sequential() -> Self {
        Executor::new(1)
    }

    /// Worker count from the environment: `DIBS_JOBS` if set and parseable,
    /// otherwise [`std::thread::available_parallelism`].
    pub fn from_env() -> Self {
        Executor::new(env_jobs().unwrap_or_else(default_jobs))
    }

    /// The number of worker threads `map` will use.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Apply `f` to every item and return the outputs in input order.
    ///
    /// Items are dealt round-robin to per-worker deques; each worker drains
    /// its own queue front-first and, when empty, steals from the *back* of
    /// its neighbours' queues. A worker retires only after a full scan of
    /// every queue finds nothing (tasks never enqueue new tasks, so an
    /// all-empty scan is a stable termination condition).
    ///
    /// `f` must not derive behaviour from thread identity, wall-clock time,
    /// or any other scheduling artifact — seed it from the item itself.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised inside `f`.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.jobs.min(n);
        if workers <= 1 {
            return items.into_iter().map(f).collect();
        }

        // Round-robin deal into per-worker deques, remembering each item's
        // input position so its result can be slotted back in order.
        let queues: Vec<Mutex<VecDeque<(usize, T)>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (idx, item) in items.into_iter().enumerate() {
            queues[idx % workers]
                .lock()
                .expect("executor queue poisoned")
                .push_back((idx, item));
        }

        // One slot per input item. Mutex<Option<R>> rather than OnceLock so
        // `R` only needs `Send`, matching what a plain sequential map would
        // require.
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for me in 0..workers {
                let queues = &queues;
                let slots = &slots;
                let f = &f;
                scope.spawn(move || loop {
                    let task = pop_own(&queues[me]).or_else(|| steal(queues, me));
                    match task {
                        Some((idx, item)) => {
                            let out = f(item);
                            *slots[idx].lock().expect("executor slot poisoned") = Some(out);
                        }
                        None => break,
                    }
                });
            }
        });

        slots
            .into_iter()
            .enumerate()
            .map(|(idx, slot)| {
                slot.into_inner()
                    .expect("executor slot poisoned")
                    .unwrap_or_else(|| panic!("executor left slot {idx} unfilled"))
            })
            .collect()
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::from_env()
    }
}

/// Worker count requested via the `DIBS_JOBS` environment variable, if set
/// to a positive integer.
pub fn env_jobs() -> Option<usize> {
    std::env::var(JOBS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&j| j >= 1)
}

/// The fallback worker count: the host's available parallelism, or 1 if
/// that cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parse a `--jobs N` / `--jobs=N` flag out of an argument list, removing
/// the consumed tokens. Returns `None` (leaving `args` untouched apart from
/// any well-formed flag) when the flag is absent or malformed.
pub fn take_jobs_flag(args: &mut Vec<String>) -> Option<usize> {
    let mut jobs = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--jobs" && i + 1 < args.len() {
            if let Ok(j) = args[i + 1].parse::<usize>() {
                jobs = Some(j.max(1));
            }
            args.drain(i..=i + 1);
        } else if let Some(v) = args[i].strip_prefix("--jobs=") {
            if let Ok(j) = v.parse::<usize>() {
                jobs = Some(j.max(1));
            }
            args.remove(i);
        } else {
            i += 1;
        }
    }
    jobs
}

fn pop_own<T>(queue: &Mutex<VecDeque<(usize, T)>>) -> Option<(usize, T)> {
    queue.lock().expect("executor queue poisoned").pop_front()
}

fn steal<T>(queues: &[Mutex<VecDeque<(usize, T)>>], me: usize) -> Option<(usize, T)> {
    let n = queues.len();
    for off in 1..n {
        let victim = (me + off) % n;
        if let Some(task) = queues[victim]
            .lock()
            .expect("executor queue poisoned")
            .pop_back()
        {
            return Some(task);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        for jobs in [1, 2, 3, 8] {
            let out = Executor::new(jobs).map((0..64u64).collect(), |x| x * 10);
            assert_eq!(
                out,
                (0..64u64).map(|x| x * 10).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn jobs_count_never_changes_results() {
        let work = |x: u64| {
            // Unequal task sizes so stealing actually happens.
            let mut acc = x;
            for i in 0..(x % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            (x, acc)
        };
        let baseline = Executor::sequential().map((0..200u64).collect(), work);
        for jobs in [2, 4, 8, 16] {
            assert_eq!(
                Executor::new(jobs).map((0..200u64).collect(), work),
                baseline
            );
        }
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let e = Executor::new(8);
        assert_eq!(e.map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(e.map(vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        assert_eq!(
            Executor::new(64).map(vec![1u32, 2, 3], |x| x * 2),
            vec![2, 4, 6]
        );
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        let e = Executor::new(0);
        assert_eq!(e.jobs(), 1);
        assert_eq!(e.map(vec![1u32, 2], |x| x), vec![1, 2]);
    }

    #[test]
    fn take_jobs_flag_consumes_both_forms() {
        let mut args = vec!["--quick".to_string(), "--jobs".to_string(), "4".to_string()];
        assert_eq!(take_jobs_flag(&mut args), Some(4));
        assert_eq!(args, vec!["--quick".to_string()]);

        let mut args = vec!["--jobs=2".to_string(), "x".to_string()];
        assert_eq!(take_jobs_flag(&mut args), Some(2));
        assert_eq!(args, vec!["x".to_string()]);

        let mut args = vec!["--full".to_string()];
        assert_eq!(take_jobs_flag(&mut args), None);
        assert_eq!(args, vec!["--full".to_string()]);
    }

    #[test]
    fn non_send_sync_closure_state_not_required() {
        // f only needs Sync; results only need Send.
        let table: Vec<u64> = (0..32).map(|i| i * 3).collect();
        let out = Executor::new(4).map((0..32usize).collect(), |i| table[i]);
        assert_eq!(out, table);
    }
}
