#![warn(missing_docs)]

//! Minimal JSON support with no external dependencies.
//!
//! The DIBS reproduction must build hermetically (no network, no vendored
//! third-party crates), so this crate supplies the small slice of
//! serde/serde_json the workspace actually needs: a [`Json`] value model, a
//! strict parser with positioned errors, compact and pretty printers, and
//! [`ToJson`]/[`FromJson`] conversion traits implemented manually by the
//! types that persist results or parse scenario files.
//!
//! # Examples
//!
//! ```
//! use dibs_json::Json;
//!
//! let v = Json::parse(r#"{ "k": [1, 2.5, true, null, "s"] }"#).unwrap();
//! assert_eq!(v.get("k").unwrap().as_array().unwrap().len(), 5);
//! assert_eq!(Json::parse(&v.render()).unwrap(), v);
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
///
/// Objects preserve insertion order (like `serde_json`'s default), which
/// keeps rendered reports stable and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Stored as `f64`; integers up to 2^53 round-trip
    /// exactly, which covers every counter the simulator serializes.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A JSON parse or conversion error with context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}
impl std::error::Error for JsonError {}

impl JsonError {
    /// Builds an error from anything printable.
    pub fn msg(m: impl fmt::Display) -> Self {
        JsonError(m.to_string())
    }
}

impl Json {
    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Renders compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with 2-space indentation, `serde_json`-pretty style.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&format_number(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(fields) => write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                write_escaped(out, &fields[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                fields[i].1.write(out, indent, depth + 1);
            }),
        }
    }

    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a nonnegative integer, if it is one exactly.
    #[allow(clippy::cast_possible_truncation)] // guarded: integral and <= 2^53
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Num(n) if n >= 0.0 && n.fract() == 0.0 && n <= MAX_EXACT_INT => Some(n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object fields, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Largest magnitude at which every integer is representable in an `f64`.
const MAX_EXACT_INT: f64 = 9_007_199_254_740_992.0; // 2^53

fn format_number(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no Inf/NaN; serialize as null like serde_json's lossy mode.
        return "null".to_string();
    }
    if n.fract() == 0.0 && n.abs() <= MAX_EXACT_INT {
        #[allow(clippy::cast_possible_truncation)] // guarded: integral and |n| <= 2^53
        let int = n as i64;
        format!("{int}")
    } else {
        // Rust's `{}` never uses exponent notation; fall back to `{:e}`
        // when the plain expansion would be unreadably long.
        let s = format!("{n}");
        let s = if s.len() > 21 { format!("{n:e}") } else { s };
        debug_assert!(s.parse::<f64>().is_ok());
        s
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: impl fmt::Display) -> JsonError {
        // Report 1-based line:column of the current position.
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = consumed.iter().filter(|&&b| b == b'\n').count() + 1;
        let col = consumed.iter().rev().take_while(|&&b| b != b'\n').count() + 1;
        JsonError(format!("{msg} at line {line} column {col}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(format!("unexpected character `{}`", c as char))),
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.error(format!("invalid literal (expected `{word}`)")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.error(format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(fields)),
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs for astral characters.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.error("unpaired surrogate"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.error("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(self.error("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.error("invalid escape sequence")),
                },
                Some(c) if c < 0x20 => {
                    return Err(self.error("control character in string"));
                }
                Some(c) => {
                    // Reassemble UTF-8 continuation bytes verbatim.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.error("truncated UTF-8 sequence"));
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = end;
                        }
                        Err(_) => return Err(self.error("invalid UTF-8 in string")),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.error("invalid \\u escape")),
            };
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value.
pub trait FromJson: Sized {
    /// Parses the value, failing with a descriptive [`JsonError`].
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl ToJson for Json {
    /// Identity: lets already-built values (e.g. from [`ObjBuilder`]) nest
    /// inside another builder without a wrapper type.
    fn to_json(&self) -> Json {
        self.clone()
    }
}

macro_rules! num_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let n = v
                    .as_f64()
                    .ok_or_else(|| JsonError::msg(format!("expected number, got {v:?}")))?;
                // A lossy cast is checked just below by round-tripping.
                #[allow(clippy::cast_possible_truncation)]
                let cast = n as $t;
                if (cast as f64 - n).abs() > 1e-9 {
                    return Err(JsonError::msg(format!(
                        "number {n} out of range for {}",
                        stringify!($t)
                    )));
                }
                Ok(cast)
            }
        }
    )*};
}
num_json!(u8, u16, u32, u64, usize, i64);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}
impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64()
            .ok_or_else(|| JsonError::msg(format!("expected number, got {v:?}")))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}
impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool()
            .ok_or_else(|| JsonError::msg(format!("expected bool, got {v:?}")))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}
impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}
impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::msg(format!("expected string, got {v:?}")))
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}
impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::msg(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: FromJson + Copy + Default, const N: usize> FromJson for [T; N] {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items = v
            .as_array()
            .ok_or_else(|| JsonError::msg(format!("expected array, got {v:?}")))?;
        if items.len() != N {
            return Err(JsonError::msg(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_json(item)?;
        }
        Ok(out)
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}
impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::msg(format!(
                "expected 2-element array, got {v:?}"
            ))),
        }
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}
impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_object()
            .ok_or_else(|| JsonError::msg(format!("expected object, got {v:?}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
            .collect()
    }
}

/// Strict object reader: fields are consumed by name and leftovers are
/// rejected, reproducing serde's `deny_unknown_fields` behavior.
pub struct ObjReader<'a> {
    fields: &'a [(String, Json)],
    taken: Vec<bool>,
    context: &'a str,
}

impl<'a> ObjReader<'a> {
    /// Wraps an object value; errors if `v` is not an object.
    pub fn new(v: &'a Json, context: &'a str) -> Result<Self, JsonError> {
        let fields = v
            .as_object()
            .ok_or_else(|| JsonError::msg(format!("{context}: expected object, got {v:?}")))?;
        Ok(ObjReader {
            fields,
            taken: vec![false; fields.len()],
            context,
        })
    }

    /// Consumes a field by key, if present.
    pub fn take(&mut self, key: &str) -> Option<&'a Json> {
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if k == key && !self.taken[i] {
                self.taken[i] = true;
                return Some(v);
            }
        }
        None
    }

    /// Consumes and converts a required field.
    pub fn required<T: FromJson>(&mut self, key: &str) -> Result<T, JsonError> {
        let context = self.context;
        let v = self
            .take(key)
            .ok_or_else(|| JsonError::msg(format!("{context}: missing field `{key}`")))?;
        T::from_json(v).map_err(|e| JsonError::msg(format!("{context}.{key}: {}", e.0)))
    }

    /// Consumes and converts an optional field, substituting a default.
    pub fn optional<T: FromJson>(&mut self, key: &str, default: T) -> Result<T, JsonError> {
        match self.take(key) {
            None => Ok(default),
            Some(Json::Null) => Ok(default),
            Some(v) => {
                let context = self.context;
                T::from_json(v).map_err(|e| JsonError::msg(format!("{context}.{key}: {}", e.0)))
            }
        }
    }

    /// Errors if any field was never consumed (unknown-field rejection).
    pub fn deny_unknown(self) -> Result<(), JsonError> {
        for (i, (k, _)) in self.fields.iter().enumerate() {
            if !self.taken[i] {
                return Err(JsonError::msg(format!(
                    "{}: unknown field `{k}`",
                    self.context
                )));
            }
        }
        Ok(())
    }
}

/// Builder for JSON objects in insertion order.
#[derive(Debug, Default)]
pub struct ObjBuilder {
    fields: Vec<(String, Json)>,
}

impl ObjBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a field.
    pub fn field(mut self, key: &str, value: impl ToJson) -> Self {
        self.fields.push((key.to_string(), value.to_json()));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Json {
        Json::Obj(self.fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse(r#""a\nbA""#).unwrap(),
            Json::Str("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":1,\"a\":2}",
            "[01x]",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn error_carries_position() {
        let err = Json::parse("{\n  \"a\": ?\n}").unwrap_err();
        assert!(err.0.contains("line 2"), "{err}");
    }

    #[test]
    fn roundtrips_compact_and_pretty() {
        let src = r#"{"s":"q\"uote","n":[1,2.5,-3],"b":true,"o":{"inner":null},"e":[],"eo":{}}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(Json::parse(&v.render_pretty()).unwrap(), v);
        assert_eq!(v.render(), src);
    }

    #[test]
    fn pretty_format_matches_expected_shape() {
        let v = Json::parse(r#"{"a":1,"b":[2,3]}"#).unwrap();
        assert_eq!(
            v.render_pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    2,\n    3\n  ]\n}"
        );
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(3.25).render(), "3.25");
        assert_eq!(Json::Num(-0.0).render(), "0");
        assert_eq!(Json::Num(1e300).render(), "1e300");
    }

    #[test]
    fn unicode_roundtrip() {
        let v = Json::parse(r#""héllo 😀 ✓""#).unwrap();
        assert_eq!(v.as_str(), Some("héllo 😀 ✓"));
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn obj_reader_denies_unknown_fields() {
        let v = Json::parse(r#"{"x": 1, "bogus": 2}"#).unwrap();
        let mut r = ObjReader::new(&v, "test").unwrap();
        assert_eq!(r.required::<u64>("x").unwrap(), 1);
        let err = r.deny_unknown().unwrap_err();
        assert!(err.0.contains("bogus"), "{err}");
    }

    #[test]
    fn obj_reader_defaults_apply() {
        let v = Json::parse(r#"{"x": 1}"#).unwrap();
        let mut r = ObjReader::new(&v, "test").unwrap();
        assert_eq!(r.optional("y", 7u64).unwrap(), 7);
        assert_eq!(r.required::<u64>("x").unwrap(), 1);
        r.deny_unknown().unwrap();
    }

    #[test]
    fn conversion_traits_roundtrip() {
        let map: BTreeMap<String, f64> = [("a".to_string(), 1.5)].into_iter().collect();
        let v = map.to_json();
        assert_eq!(BTreeMap::<String, f64>::from_json(&v).unwrap(), map);

        let pair = (1.0f64, 2.0f64);
        assert_eq!(<(f64, f64)>::from_json(&pair.to_json()).unwrap(), pair);

        let arr = [3usize, 4];
        assert_eq!(<[usize; 2]>::from_json(&arr.to_json()).unwrap(), arr);
        assert!(<[usize; 2]>::from_json(&Json::parse("[1]").unwrap()).is_err());

        assert_eq!(Option::<u64>::from_json(&Json::Null).unwrap(), None);
        assert_eq!(u8::from_json(&Json::Num(300.0)).ok(), None);
    }

    #[test]
    fn builder_preserves_order() {
        let v = ObjBuilder::new()
            .field("z", 1u64)
            .field("a", "text")
            .build();
        assert_eq!(v.render(), r#"{"z":1,"a":"text"}"#);
    }
}
