//! Property tests for the workload generators and distributions, driven by
//! the deterministic testkit harness: sampled flow sizes and inter-arrival
//! times must match their spec's mean and CDF within tolerance.

use dibs_engine::rng::SimRng;
use dibs_engine::testkit;
use dibs_engine::time::SimDuration;
use dibs_workload::dist::{LogNormal, Pareto};
use dibs_workload::{BackgroundTraffic, EmpiricalCdf, QueryTraffic};

/// Empirical mean of `n` draws.
fn sample_mean(n: usize, rng: &mut SimRng, mut draw: impl FnMut(&mut SimRng) -> f64) -> f64 {
    (0..n).map(|_| draw(rng)).sum::<f64>() / n as f64
}

/// Fraction of `samples` that are `<= x`.
fn empirical_cdf_at(samples: &[f64], x: f64) -> f64 {
    samples.iter().filter(|&&s| s <= x).count() as f64 / samples.len() as f64
}

#[test]
fn dctcp_flow_sizes_match_their_cdf() {
    let dist = EmpiricalCdf::dctcp_background_sizes();
    testkit::cases_n("dctcp-sizes-cdf", 16, |rng, case| {
        let samples: Vec<f64> = (0..4_000).map(|_| dist.sample(rng)).collect();
        // At every knot of the spec, the empirical CDF must sit within a
        // few percent of the declared probability mass.
        for (x, p) in [
            (6_000.0, 0.15),
            (19_000.0, 0.45),
            (100_000.0, 0.80),
            (2_000_000.0, 0.95),
        ] {
            let got = empirical_cdf_at(&samples, x);
            assert!(
                (got - p).abs() < 0.04,
                "case {case}: P(size <= {x}) = {got:.3}, spec says {p}"
            );
        }
        // All mass inside the declared support.
        assert!(samples
            .iter()
            .all(|&s| (1_000.0..=30_000_000.0).contains(&s)));
    });
}

#[test]
fn dctcp_flow_sizes_match_their_mean() {
    let dist = EmpiricalCdf::dctcp_background_sizes();
    let spec_mean = dist.mean();
    // The distribution is heavy-tailed, so the sample mean converges
    // slowly; pool a large sample per case and allow 15%.
    testkit::cases_n("dctcp-sizes-mean", 8, |rng, case| {
        let got = sample_mean(60_000, rng, |r| dist.sample(r));
        assert!(
            (got - spec_mean).abs() / spec_mean < 0.15,
            "case {case}: sample mean {got:.0} vs quadrature mean {spec_mean:.0}"
        );
    });
}

#[test]
fn quantile_and_cdf_are_inverse() {
    let dist = EmpiricalCdf::dctcp_background_sizes();
    testkit::cases("quantile-cdf-roundtrip", |rng, case| {
        let u = rng.uniform();
        let x = dist.quantile(u);
        let back = dist.cdf(x);
        assert!(
            (back - u).abs() < 1e-9,
            "case {case}: cdf(quantile({u})) = {back}"
        );
    });
}

#[test]
fn background_interarrivals_are_exponential_with_spec_mean() {
    testkit::cases_n("bg-interarrival", 12, |rng, case| {
        // Spec mean between 10 ms and 120 ms (the Table 2 sweep range).
        let mean_ms = 10.0 + rng.uniform() * 110.0;
        let bg = BackgroundTraffic::paper(SimDuration::from_secs_f64(mean_ms / 1000.0));
        // One host's Poisson process over a long window: inter-arrival
        // gaps must average the spec mean. Use 2 hosts (the minimum) and
        // read host 0's arrivals.
        let window = SimDuration::from_secs_f64(mean_ms); // ~1000 gaps
        let flows = bg.generate(2, window, rng);
        let starts: Vec<f64> = flows
            .iter()
            .filter(|f| f.src.index() == 0)
            .map(|f| f.start.as_secs_f64())
            .collect();
        assert!(starts.len() > 300, "case {case}: too few arrivals");
        let mut gaps: Vec<f64> = starts.windows(2).map(|w| w[1] - w[0]).collect();
        gaps.insert(0, starts[0]);
        let got_ms = 1000.0 * gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!(
            (got_ms - mean_ms).abs() / mean_ms < 0.15,
            "case {case}: inter-arrival mean {got_ms:.2} ms vs spec {mean_ms:.2} ms"
        );
        // Exponential gaps: ~63.2% of gaps below the mean.
        let below = empirical_cdf_at(&gaps, mean_ms / 1000.0);
        assert!(
            (below - 0.632).abs() < 0.06,
            "case {case}: P(gap <= mean) = {below:.3}, exponential says 0.632"
        );
    });
}

#[test]
fn query_rate_matches_qps_and_degree_is_exact() {
    testkit::cases_n("query-rate", 12, |rng, case| {
        let qps = 200.0 + rng.uniform() * 1800.0;
        let qt = QueryTraffic {
            qps,
            degree: 5 + rng.below(20),
            response_bytes: 20_000,
        };
        let hosts = 64;
        let window = SimDuration::from_secs_f64(1000.0 / qps); // ~1000 queries
        let queries = qt.generate(hosts, window, rng);
        let expected = qps * window.as_secs_f64();
        assert!(
            (queries.len() as f64 - expected).abs() / expected < 0.15,
            "case {case}: {} queries vs expected ~{expected:.0}",
            queries.len()
        );
        for q in &queries {
            assert_eq!(q.responders.len(), qt.degree, "case {case}");
            // Responders are distinct and never the target.
            let mut seen: Vec<_> = q.responders.iter().map(|h| h.index()).collect();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), qt.degree, "case {case}: duplicate responder");
            assert!(q.responders.iter().all(|r| *r != q.target), "case {case}");
        }
    });
}

#[test]
fn lognormal_and_pareto_match_closed_form_means() {
    testkit::cases_n("analytic-means", 8, |rng, case| {
        let ln = LogNormal {
            mu: 9.0,
            sigma: 0.5,
        };
        let ln_mean = (ln.mu + ln.sigma * ln.sigma / 2.0).exp();
        let got = sample_mean(40_000, rng, |r| ln.sample(r));
        assert!(
            (got - ln_mean).abs() / ln_mean < 0.1,
            "case {case}: lognormal mean {got:.0} vs analytic {ln_mean:.0}"
        );

        // alpha > 2 so the sample mean converges reasonably fast.
        let pa = Pareto {
            xm: 1_000.0,
            alpha: 2.5,
        };
        let pa_mean = pa.alpha * pa.xm / (pa.alpha - 1.0);
        let got = sample_mean(40_000, rng, |r| pa.sample(r));
        assert!(
            (got - pa_mean).abs() / pa_mean < 0.1,
            "case {case}: pareto mean {got:.0} vs analytic {pa_mean:.0}"
        );
    });
}
