//! Sampling distributions for workload generation.
//!
//! The key one is [`EmpiricalCdf`], used to encode the production
//! flow-size distribution from the DCTCP paper that drives the simulations
//! (§5.3). Log-normal and Pareto are implemented by hand because the
//! approved dependency set includes `rand` but not `rand_distr`.

use dibs_engine::rng::SimRng;

/// An empirical CDF over `f64` values with inverse-transform sampling and
/// log-linear interpolation between knots.
///
/// # Examples
///
/// ```
/// use dibs_workload::dist::EmpiricalCdf;
/// use dibs_engine::rng::SimRng;
///
/// let cdf = EmpiricalCdf::new(vec![(1_000.0, 0.0), (10_000.0, 0.5), (100_000.0, 1.0)]).unwrap();
/// let mut rng = SimRng::new(1);
/// let x = cdf.sample(&mut rng);
/// assert!((1_000.0..=100_000.0).contains(&x));
/// ```
#[derive(Debug, Clone)]
pub struct EmpiricalCdf {
    /// `(value, cumulative_probability)` knots, strictly increasing in both.
    knots: Vec<(f64, f64)>,
}

impl EmpiricalCdf {
    /// Builds a CDF from knots.
    ///
    /// Requirements: at least two knots; values strictly increasing and
    /// positive; probabilities nondecreasing, starting at 0 and ending at 1.
    pub fn new(knots: Vec<(f64, f64)>) -> Result<Self, String> {
        if knots.len() < 2 {
            return Err("need at least two knots".into());
        }
        if knots[0].1 != 0.0 {
            return Err("first knot must have probability 0".into());
        }
        if (knots[knots.len() - 1].1 - 1.0).abs() > 1e-12 {
            return Err("last knot must have probability 1".into());
        }
        for w in knots.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(format!("values must increase: {} !< {}", w[0].0, w[1].0));
            }
            if w[1].1 < w[0].1 {
                return Err("probabilities must be nondecreasing".into());
            }
        }
        if knots[0].0 <= 0.0 {
            return Err("values must be positive (log interpolation)".into());
        }
        Ok(EmpiricalCdf { knots })
    }

    /// Inverse CDF at probability `u` in `[0, 1]`, interpolating
    /// geometrically between knots (flow sizes span decades).
    pub fn quantile(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        for w in self.knots.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            if u <= p1 {
                if p1 == p0 {
                    return v1;
                }
                let t = (u - p0) / (p1 - p0);
                // Log-linear interpolation.
                return (v0.ln() + t * (v1.ln() - v0.ln())).exp();
            }
        }
        self.knots[self.knots.len() - 1].0
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        self.quantile(rng.uniform())
    }

    /// CDF evaluated at `x` (fraction of mass at or below `x`),
    /// log-interpolated.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= self.knots[0].0 {
            return 0.0;
        }
        for w in self.knots.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            if x <= v1 {
                let t = (x.ln() - v0.ln()) / (v1.ln() - v0.ln());
                return p0 + t * (p1 - p0);
            }
        }
        1.0
    }

    /// Approximate mean via quadrature over the quantile function.
    pub fn mean(&self) -> f64 {
        let n = 10_000;
        (0..n)
            .map(|i| self.quantile((i as f64 + 0.5) / n as f64))
            .sum::<f64>()
            / n as f64
    }

    /// The production background-traffic flow-size distribution used by the
    /// paper's simulations (from the DCTCP paper [18]).
    ///
    /// Substitution note (DESIGN.md #3): the original is a proprietary
    /// trace; this empirical CDF matches the published summary — 80 % of
    /// background flows below 100 KB with a heavy tail reaching tens of MB
    /// that carries most of the bytes.
    pub fn dctcp_background_sizes() -> Self {
        EmpiricalCdf::new(vec![
            (1_000.0, 0.00),
            (6_000.0, 0.15),
            (13_000.0, 0.30),
            (19_000.0, 0.45),
            (33_000.0, 0.55),
            (53_000.0, 0.65),
            (100_000.0, 0.80),
            (667_000.0, 0.90),
            (2_000_000.0, 0.95),
            (10_000_000.0, 0.98),
            (30_000_000.0, 1.00),
        ])
        .expect("static knots are valid")
    }
}

/// Log-normal distribution via Box–Muller.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    /// Mean of the underlying normal.
    pub mu: f64,
    /// Standard deviation of the underlying normal.
    pub sigma: f64,
}

impl LogNormal {
    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        // Box-Muller transform.
        let u1 = (1.0 - rng.uniform()).max(f64::MIN_POSITIVE);
        let u2 = rng.uniform();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

/// Pareto (power-law) distribution with scale `xm` and shape `alpha`.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    /// Minimum value (scale).
    pub xm: f64,
    /// Tail index (shape); heavier tail for smaller values.
    pub alpha: f64,
}

impl Pareto {
    /// Draws one sample.
    ///
    /// # Panics
    ///
    /// Panics if parameters are not positive.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        assert!(self.xm > 0.0 && self.alpha > 0.0);
        let u = (1.0 - rng.uniform()).max(f64::MIN_POSITIVE);
        self.xm / u.powf(1.0 / self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_knots() {
        assert!(EmpiricalCdf::new(vec![(1.0, 0.0)]).is_err());
        assert!(EmpiricalCdf::new(vec![(1.0, 0.1), (2.0, 1.0)]).is_err());
        assert!(EmpiricalCdf::new(vec![(1.0, 0.0), (2.0, 0.9)]).is_err());
        assert!(EmpiricalCdf::new(vec![(2.0, 0.0), (1.0, 1.0)]).is_err());
        assert!(EmpiricalCdf::new(vec![(1.0, 0.0), (2.0, 0.5), (3.0, 0.4), (4.0, 1.0)]).is_err());
        assert!(EmpiricalCdf::new(vec![(0.0, 0.0), (2.0, 1.0)]).is_err());
    }

    #[test]
    fn quantile_hits_knots() {
        let cdf = EmpiricalCdf::new(vec![(10.0, 0.0), (100.0, 0.5), (1000.0, 1.0)]).unwrap();
        assert!((cdf.quantile(0.0) - 10.0).abs() < 1e-9);
        assert!((cdf.quantile(0.5) - 100.0).abs() < 1e-9);
        assert!((cdf.quantile(1.0) - 1000.0).abs() < 1e-9);
        // Geometric midpoint between knots.
        let q = cdf.quantile(0.25);
        assert!((q - (10.0f64 * 100.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn cdf_inverts_quantile() {
        let cdf = EmpiricalCdf::dctcp_background_sizes();
        for u in [0.05, 0.2, 0.5, 0.8, 0.95] {
            let x = cdf.quantile(u);
            assert!((cdf.cdf(x) - u).abs() < 1e-9, "u={u}");
        }
    }

    #[test]
    fn background_distribution_matches_paper_summary() {
        let cdf = EmpiricalCdf::dctcp_background_sizes();
        // "The background traffic has 80% of flows smaller than 100KB" (§5.3).
        assert!((cdf.cdf(100_000.0) - 0.8).abs() < 1e-9);
        // Heavy tail: the mean is far above the median.
        let median = cdf.quantile(0.5);
        assert!(cdf.mean() > 5.0 * median);
    }

    #[test]
    fn sampling_tracks_cdf() {
        let cdf = EmpiricalCdf::dctcp_background_sizes();
        let mut rng = SimRng::new(5);
        let n = 100_000;
        let below_100k = (0..n).filter(|_| cdf.sample(&mut rng) <= 100_000.0).count();
        let frac = below_100k as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.01, "observed {frac}");
    }

    #[test]
    fn lognormal_median() {
        let d = LogNormal {
            mu: 2.0,
            sigma: 0.5,
        };
        let mut rng = SimRng::new(7);
        let mut samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[25_000];
        assert!((median - 2.0f64.exp()).abs() < 0.15, "median {median}");
    }

    #[test]
    fn pareto_respects_scale() {
        let d = Pareto {
            xm: 3.0,
            alpha: 2.0,
        };
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 3.0);
        }
    }
}
