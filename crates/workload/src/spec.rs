//! Flow and query descriptors shared by all generators.

use dibs_engine::time::SimTime;
use dibs_net::ids::HostId;

/// What role a flow plays in the experiment (drives which metric it feeds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowClass {
    /// DCTCP-paper background traffic.
    Background,
    /// One response of a partition-aggregate query; the payload indexes the
    /// query it belongs to.
    QueryResponse {
        /// Index into the experiment's query list.
        query: usize,
    },
    /// Long-lived throughput flow (fairness experiment, §5.6).
    LongLived,
}

/// One unidirectional transfer to be simulated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    /// When the sender opens the flow.
    pub start: SimTime,
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Bytes to transfer.
    pub size: u64,
    /// Experiment role.
    pub class: FlowClass,
}

/// One partition-aggregate query: `degree` responders each send
/// `response_bytes` to `target` at `start` (§5.3: "each query consists of a
/// single incast target that receives flows from a set of responding nodes,
/// all selected at random").
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Query issue time (responses start simultaneously).
    pub start: SimTime,
    /// The aggregator receiving all responses.
    pub target: HostId,
    /// The responding hosts (distinct, never the target).
    pub responders: Vec<HostId>,
    /// Bytes per response.
    pub response_bytes: u64,
}

impl QuerySpec {
    /// Expands the query into its response flows.
    pub fn response_flows(&self, query_index: usize) -> impl Iterator<Item = FlowSpec> + '_ {
        self.responders.iter().map(move |&src| FlowSpec {
            start: self.start,
            src,
            dst: self.target,
            size: self.response_bytes,
            class: FlowClass::QueryResponse { query: query_index },
        })
    }

    /// Total bytes the query moves.
    pub fn total_bytes(&self) -> u64 {
        self.response_bytes * self.responders.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_expansion() {
        let q = QuerySpec {
            start: SimTime::from_millis(5),
            target: HostId(0),
            responders: vec![HostId(1), HostId(2), HostId(3)],
            response_bytes: 20_000,
        };
        let flows: Vec<FlowSpec> = q.response_flows(7).collect();
        assert_eq!(flows.len(), 3);
        assert!(flows
            .iter()
            .all(|f| f.dst == HostId(0) && f.size == 20_000 && f.start == q.start));
        assert!(flows
            .iter()
            .all(|f| f.class == FlowClass::QueryResponse { query: 7 }));
        assert_eq!(q.total_bytes(), 60_000);
    }
}
