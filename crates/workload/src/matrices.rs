//! Demand matrices and fluid-model link utilization — the Figure 3
//! substitution.
//!
//! Figure 3 of the paper reproduces the Flyways measurement of four
//! proprietary data-center workloads (IndexSrv, 3Cars, Neon, Cosmos): the
//! distribution over time of the fraction of links running "hot" (≥ 50 % of
//! the utilization of the hottest link). We cannot obtain those traces, so
//! — per the substitution rule — we synthesize four demand-matrix families
//! with the qualitative structure the Flyways paper describes for each
//! workload class, route them over the topology with fluid ECMP splitting,
//! and compute the same statistic.

use dibs_engine::rng::SimRng;
use dibs_net::ids::{HostId, NodeId};
use dibs_net::routing::Fib;
use dibs_net::topology::Topology;

/// A snapshot of offered load: `(src, dst, rate_bps)` triples.
#[derive(Debug, Clone, Default)]
pub struct DemandMatrix {
    /// Demands; multiple entries for the same pair accumulate.
    pub demands: Vec<(HostId, HostId, f64)>,
}

/// The four synthetic workload families standing in for the Flyways traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadFamily {
    /// Web-search-like partition-aggregate: a few hot aggregators fan in
    /// from many workers (IndexSrv).
    PartitionAggregate,
    /// Map-reduce-like shuffle among a random subset of hosts (3Cars).
    MapReduceShuffle,
    /// Nearest-neighbor HPC exchange over a random ring (Neon).
    HpcNeighbor,
    /// Storage replication: skewed writers each streaming to 3 random
    /// replicas (Cosmos).
    StorageReplication,
}

impl WorkloadFamily {
    /// All four families, in display order.
    pub const ALL: [WorkloadFamily; 4] = [
        WorkloadFamily::PartitionAggregate,
        WorkloadFamily::MapReduceShuffle,
        WorkloadFamily::HpcNeighbor,
        WorkloadFamily::StorageReplication,
    ];

    /// Display label for figure output.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadFamily::PartitionAggregate => "IndexSrv-like",
            WorkloadFamily::MapReduceShuffle => "3Cars-like",
            WorkloadFamily::HpcNeighbor => "Neon-like",
            WorkloadFamily::StorageReplication => "Cosmos-like",
        }
    }

    /// Draws one demand-matrix snapshot for `num_hosts` hosts.
    ///
    /// `unit_rate` scales all demands (bits/second per elemental demand).
    pub fn sample(&self, num_hosts: usize, unit_rate: f64, rng: &mut SimRng) -> DemandMatrix {
        let mut m = DemandMatrix::default();
        match self {
            WorkloadFamily::PartitionAggregate => {
                // 1-3 concurrent aggregations, each with ~num_hosts/4 workers.
                let n_agg = 1 + rng.below(3);
                for _ in 0..n_agg {
                    let target = rng.below(num_hosts);
                    let degree = (num_hosts / 4).max(2);
                    for w in rng.sample_distinct(num_hosts - 1, degree.min(num_hosts - 1)) {
                        let src = if w >= target { w + 1 } else { w };
                        m.push(src, target, unit_rate);
                    }
                }
            }
            WorkloadFamily::MapReduceShuffle => {
                // A random subset of ~1/4 of hosts doing all-to-all shuffle.
                let k = (num_hosts / 4).max(2);
                let members = rng.sample_distinct(num_hosts, k);
                for &a in &members {
                    for &b in &members {
                        if a != b {
                            m.push(a, b, unit_rate / k as f64);
                        }
                    }
                }
            }
            WorkloadFamily::HpcNeighbor => {
                // A neighbor-exchange ring over the currently active job's
                // nodes — a random ~quarter of the cluster, with per-rank
                // exchange volumes skewed by the job's phase (snapshots of
                // HPC traffic are bursty: only some ranks communicate hard
                // at any instant).
                let k = (num_hosts / 4).max(3);
                let members = rng.sample_distinct(num_hosts, k);
                for i in 0..k {
                    let rate = unit_rate * rng.exponential(1.0);
                    m.push(members[i], members[(i + 1) % k], rate);
                }
            }
            WorkloadFamily::StorageReplication => {
                // Zipf-skewed writers, each streaming to 3 distinct replicas.
                let writers = (num_hosts / 8).max(1);
                for w in 0..writers {
                    // Zipf-ish skew: writer w has weight 1/(w+1).
                    let rate = unit_rate * 3.0 / (w + 1) as f64;
                    let src = rng.below(num_hosts);
                    for r in rng.sample_distinct(num_hosts - 1, 3.min(num_hosts - 1)) {
                        let dst = if r >= src { r + 1 } else { r };
                        m.push(src, dst, rate);
                    }
                }
            }
        }
        m
    }
}

impl DemandMatrix {
    /// Adds a demand by host index.
    pub fn push(&mut self, src: usize, dst: usize, rate: f64) {
        debug_assert_ne!(src, dst);
        self.demands
            .push((HostId::from_index(src), HostId::from_index(dst), rate));
    }

    /// Total offered load.
    pub fn total_rate(&self) -> f64 {
        self.demands.iter().map(|d| d.2).sum()
    }
}

/// Routes a demand matrix over the topology with equal ECMP splitting and
/// returns the utilization of every directed edge, indexed as
/// `(node, port)` flattened in [`Topology::directed_edges`] order.
pub fn link_utilization(topo: &Topology, fib: &Fib, matrix: &DemandMatrix) -> Vec<f64> {
    // Map (node, port) -> flat index.
    let mut offsets = Vec::with_capacity(topo.num_nodes());
    let mut total_ports = 0usize;
    for n in 0..topo.num_nodes() {
        offsets.push(total_ports);
        total_ports += topo.num_ports(NodeId::from_index(n));
    }
    let mut load = vec![0.0f64; total_ports];

    // Fluid splitting: at each node the flow divides equally among the
    // FIB's equal-cost next hops. Distances strictly decrease toward the
    // destination, so a simple worklist terminates.
    let mut node_flow: Vec<f64> = vec![0.0; topo.num_nodes()];
    for &(src, dst, rate) in &matrix.demands {
        if src == dst || rate <= 0.0 {
            continue;
        }
        // Collect reachable nodes sorted by descending distance to dst.
        let src_node = topo.host_node(src);
        let dst_node = topo.host_node(dst);
        let mut order: Vec<NodeId> = Vec::new();
        {
            // BFS forward along FIB edges from src.
            let mut seen = vec![false; topo.num_nodes()];
            let mut stack = vec![src_node];
            seen[src_node.index()] = true;
            while let Some(u) = stack.pop() {
                if u == dst_node {
                    continue;
                }
                order.push(u);
                for &p in fib.next_hops(u, dst) {
                    let v = topo.port(u, usize::from(p)).peer;
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        stack.push(v);
                    }
                }
            }
        }
        order.sort_by_key(|&n| std::cmp::Reverse(fib.distance(n, dst)));
        for &n in &order {
            node_flow[n.index()] = 0.0;
        }
        node_flow[src_node.index()] = rate;
        for &u in &order {
            let f = node_flow[u.index()];
            if f <= 0.0 {
                continue;
            }
            let hops = fib.next_hops(u, dst);
            if hops.is_empty() {
                continue;
            }
            let share = f / hops.len() as f64;
            for &p in hops {
                let p = usize::from(p);
                load[offsets[u.index()] + p] += share;
                let v = topo.port(u, p).peer;
                if v != dst_node {
                    node_flow[v.index()] += share;
                }
            }
            node_flow[u.index()] = 0.0;
        }
    }

    // Convert to utilization.
    let mut util = vec![0.0f64; total_ports];
    for (idx, (_, port)) in topo.directed_edges().enumerate() {
        util[idx] = load[idx] / port.rate_bps as f64;
    }
    util
}

/// Fraction of links "hot" under the Flyways definition: utilization at
/// least `frac_of_max` of the most-loaded link (Fig 3 uses 0.5).
///
/// Returns 0 when no link carries load.
pub fn hot_fraction_relative(utils: &[f64], frac_of_max: f64) -> f64 {
    let max = utils.iter().cloned().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return 0.0;
    }
    let hot = utils.iter().filter(|&&u| u >= frac_of_max * max).count();
    hot as f64 / utils.len() as f64
}

/// Fraction of links with absolute utilization at least `threshold`
/// (Fig 4 uses 0.9).
pub fn hot_fraction_absolute(utils: &[f64], threshold: f64) -> f64 {
    if utils.is_empty() {
        return 0.0;
    }
    let hot = utils.iter().filter(|&&u| u >= threshold).count();
    hot as f64 / utils.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibs_net::builders::{fat_tree, FatTreeParams};

    fn k4() -> (Topology, Fib) {
        let topo = fat_tree(FatTreeParams {
            k: 4,
            ..FatTreeParams::paper_default()
        });
        let fib = Fib::compute(&topo);
        (topo, fib)
    }

    #[test]
    fn single_demand_loads_a_path() {
        let (topo, fib) = k4();
        let mut m = DemandMatrix::default();
        m.push(0, 15, 1e9); // Cross-pod, full line rate.
        let utils = link_utilization(&topo, &fib, &m);
        // Conservation: the host uplink carries exactly the demand.
        let hot_links = utils.iter().filter(|&&u| u > 1e-9).count();
        assert!(hot_links >= 6, "a 6-hop path must be loaded: {hot_links}");
        // ECMP split: no interior link exceeds the demand.
        assert!(utils.iter().all(|&u| u <= 1.0 + 1e-9));
        let max = utils.iter().cloned().fold(0.0f64, f64::max);
        assert!((max - 1.0).abs() < 1e-9, "first hop is at line rate");
    }

    #[test]
    fn ecmp_fluid_split_halves_load() {
        let (topo, fib) = k4();
        let mut m = DemandMatrix::default();
        m.push(0, 15, 1e9);
        let utils = link_utilization(&topo, &fib, &m);
        // Between edge and aggregation there are 2 equal-cost choices, so
        // some links carry exactly half the demand.
        let halves = utils.iter().filter(|&&u| (u - 0.5).abs() < 1e-9).count();
        assert!(halves >= 2, "expected 0.5-utilization links, got {halves}");
    }

    #[test]
    fn incast_concentrates_on_destination_downlink() {
        let (topo, fib) = k4();
        let mut m = DemandMatrix::default();
        for s in 1..9 {
            m.push(s, 0, 1e8);
        }
        let utils = link_utilization(&topo, &fib, &m);
        let max = utils.iter().cloned().fold(0.0f64, f64::max);
        // All 8 demands converge on host 0's downlink: 0.8 utilization.
        assert!((max - 0.8).abs() < 1e-9, "max {max}");
        // Hotspot sparsity: few links are near the max.
        let hot = hot_fraction_relative(&utils, 0.99);
        assert!(hot < 0.05, "incast hotspot should be sparse: {hot}");
    }

    #[test]
    fn hot_fraction_edge_cases() {
        assert_eq!(hot_fraction_relative(&[], 0.5), 0.0);
        assert_eq!(hot_fraction_relative(&[0.0, 0.0], 0.5), 0.0);
        assert_eq!(hot_fraction_absolute(&[], 0.9), 0.0);
        assert!((hot_fraction_absolute(&[0.95, 0.5, 0.91, 0.1], 0.9) - 0.5).abs() < 1e-12);
        assert!((hot_fraction_relative(&[1.0, 0.6, 0.4], 0.5) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn families_generate_sane_matrices() {
        let mut rng = SimRng::new(11);
        for fam in WorkloadFamily::ALL {
            let m = fam.sample(64, 1e8, &mut rng);
            assert!(!m.demands.is_empty(), "{fam:?} empty");
            assert!(m.demands.iter().all(|&(s, d, r)| s != d && r > 0.0));
            assert!(m.total_rate() > 0.0);
        }
    }

    #[test]
    fn hotspots_are_sparse_across_families() {
        // The qualitative Fig 3 property: most of the time, a small
        // fraction of links is hot.
        let (topo, fib) = k4();
        let mut rng = SimRng::new(13);
        for fam in WorkloadFamily::ALL {
            let mut sparse_snapshots = 0;
            let n = 20;
            for _ in 0..n {
                let m = fam.sample(topo.num_hosts(), 1e8, &mut rng);
                let utils = link_utilization(&topo, &fib, &m);
                if hot_fraction_relative(&utils, 0.5) < 0.4 {
                    sparse_snapshots += 1;
                }
            }
            assert!(
                sparse_snapshots >= n / 2,
                "{fam:?}: only {sparse_snapshots}/{n} sparse"
            );
        }
    }
}
