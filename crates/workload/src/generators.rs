//! Traffic generators: background flows, partition-aggregate queries, and
//! long-lived fairness flows.

use crate::dist::EmpiricalCdf;
use crate::spec::{FlowClass, FlowSpec, QuerySpec};
use dibs_engine::rng::SimRng;
use dibs_engine::time::{SimDuration, SimTime};
use dibs_net::ids::HostId;

/// Background traffic: per-host Poisson flow arrivals with DCTCP-paper flow
/// sizes (§5.3). Intensity is controlled by the mean inter-arrival time per
/// host (Table 2 sweeps 10–120 ms; smaller = more traffic).
#[derive(Debug, Clone)]
pub struct BackgroundTraffic {
    /// Mean inter-arrival time of new flows at each host.
    pub mean_interarrival: SimDuration,
    /// Flow size distribution.
    pub sizes: EmpiricalCdf,
}

impl BackgroundTraffic {
    /// Paper defaults: DCTCP flow sizes at the given mean inter-arrival.
    pub fn paper(mean_interarrival: SimDuration) -> Self {
        BackgroundTraffic {
            mean_interarrival,
            sizes: EmpiricalCdf::dctcp_background_sizes(),
        }
    }

    /// Generates every background flow starting within `[0, duration)`.
    ///
    /// Each host runs an independent Poisson process; destinations are
    /// uniform over the other hosts. Output is sorted by start time.
    pub fn generate(
        &self,
        num_hosts: usize,
        duration: SimDuration,
        rng: &mut SimRng,
    ) -> Vec<FlowSpec> {
        assert!(num_hosts >= 2, "need at least two hosts");
        let mean_s = self.mean_interarrival.as_secs_f64();
        let mut flows = Vec::new();
        for src in 0..num_hosts {
            let mut t = 0.0;
            loop {
                t += rng.exponential(mean_s);
                if t >= duration.as_secs_f64() {
                    break;
                }
                let mut dst = rng.below(num_hosts - 1);
                if dst >= src {
                    dst += 1;
                }
                // Sampled sizes are bounded far below u64::MAX by the
                // workload distributions; max(1.0) also rules out zero.
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let size = self.sizes.sample(rng).round().max(1.0) as u64;
                flows.push(FlowSpec {
                    start: SimTime::from_secs_f64(t),
                    src: HostId::from_index(src),
                    dst: HostId::from_index(dst),
                    size,
                    class: FlowClass::Background,
                });
            }
        }
        flows.sort_by_key(|f| f.start);
        flows
    }
}

/// Partition-aggregate query traffic (§5.3): queries arrive network-wide as
/// a Poisson process at `qps`; each picks a uniform random target and
/// `degree` distinct random responders.
#[derive(Debug, Clone, Copy)]
pub struct QueryTraffic {
    /// Query arrival rate, queries per second (Table 2: 300 default, up to
    /// 15000 in the extreme sweep).
    pub qps: f64,
    /// Number of responders per query (Table 2: 40 default, up to 100).
    pub degree: usize,
    /// Bytes per response (Table 2: 20 KB default, up to 160 KB).
    pub response_bytes: u64,
}

impl QueryTraffic {
    /// Table 2 defaults: 300 qps, incast degree 40, 20 KB responses.
    pub fn paper_default() -> Self {
        QueryTraffic {
            qps: 300.0,
            degree: 40,
            response_bytes: 20_000,
        }
    }

    /// Generates all queries issued within `[0, duration)`, sorted by time.
    ///
    /// # Panics
    ///
    /// Panics if `degree >= num_hosts` (responders must be distinct hosts
    /// other than the target).
    pub fn generate(
        &self,
        num_hosts: usize,
        duration: SimDuration,
        rng: &mut SimRng,
    ) -> Vec<QuerySpec> {
        assert!(
            self.degree < num_hosts,
            "incast degree {} needs more than {num_hosts} hosts",
            self.degree
        );
        assert!(self.qps > 0.0);
        let mut queries = Vec::new();
        let mut t = 0.0;
        loop {
            t += rng.exponential(1.0 / self.qps);
            if t >= duration.as_secs_f64() {
                break;
            }
            let target = rng.below(num_hosts);
            // Sample `degree` distinct responders from the hosts != target.
            let responders: Vec<HostId> = rng
                .sample_distinct(num_hosts - 1, self.degree)
                .into_iter()
                .map(|mut i| {
                    if i >= target {
                        i += 1;
                    }
                    HostId::from_index(i)
                })
                .collect();
            queries.push(QuerySpec {
                start: SimTime::from_secs_f64(t),
                target: HostId::from_index(target),
                responders,
                response_bytes: self.response_bytes,
            });
        }
        queries
    }
}

/// The §5.6 fairness workload: split `num_hosts` into node-disjoint pairs
/// and run `flows_per_pair` long-lived flows in both directions of each
/// pair. Flow size is effectively unbounded; the experiment measures
/// throughput over a fixed horizon and computes Jain's index.
pub fn long_lived_pairs(num_hosts: usize, flows_per_pair: usize) -> Vec<FlowSpec> {
    assert!(
        num_hosts.is_multiple_of(2),
        "need an even host count for pairing"
    );
    let mut flows = Vec::new();
    // Pair host i with host i + n/2: in a pod-structured fat-tree this makes
    // every pair cross the core, exercising the full bisection.
    let half = num_hosts / 2;
    for i in 0..half {
        let a = HostId::from_index(i);
        let b = HostId::from_index(i + half);
        for _ in 0..flows_per_pair {
            for (src, dst) in [(a, b), (b, a)] {
                flows.push(FlowSpec {
                    start: SimTime::ZERO,
                    src,
                    dst,
                    // Large enough to outlive any measurement horizon.
                    size: u64::MAX / 4,
                    class: FlowClass::LongLived,
                });
            }
        }
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn background_rate_matches_interarrival() {
        let gen = BackgroundTraffic::paper(SimDuration::from_millis(10));
        let mut rng = SimRng::new(1);
        let flows = gen.generate(16, SimDuration::from_secs(5), &mut rng);
        // Expected: 16 hosts * 5 s / 10 ms = 8000 flows.
        assert!(
            (7200..8800).contains(&flows.len()),
            "got {} flows",
            flows.len()
        );
        // Sorted, no self-flows, all within the window.
        assert!(flows.windows(2).all(|w| w[0].start <= w[1].start));
        assert!(flows.iter().all(|f| f.src != f.dst));
        assert!(flows.iter().all(|f| f.start < SimTime::from_secs(5)));
        assert!(flows.iter().all(|f| f.class == FlowClass::Background));
        assert!(flows.iter().all(|f| f.size >= 1));
    }

    #[test]
    fn background_intensity_scales_inversely() {
        let mut rng_a = SimRng::new(2);
        let mut rng_b = SimRng::new(2);
        let light = BackgroundTraffic::paper(SimDuration::from_millis(120)).generate(
            16,
            SimDuration::from_secs(5),
            &mut rng_a,
        );
        let heavy = BackgroundTraffic::paper(SimDuration::from_millis(10)).generate(
            16,
            SimDuration::from_secs(5),
            &mut rng_b,
        );
        let ratio = heavy.len() as f64 / light.len() as f64;
        assert!((8.0..16.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn query_generation_contract() {
        let gen = QueryTraffic {
            qps: 1000.0,
            degree: 40,
            response_bytes: 20_000,
        };
        let mut rng = SimRng::new(3);
        let queries = gen.generate(128, SimDuration::from_secs(2), &mut rng);
        assert!(
            (1800..2200).contains(&queries.len()),
            "got {}",
            queries.len()
        );
        for q in &queries {
            assert_eq!(q.responders.len(), 40);
            assert!(q.responders.iter().all(|&r| r != q.target));
            let mut sorted: Vec<_> = q.responders.iter().map(|h| h.0).collect();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 40, "responders must be distinct");
            assert!(sorted.iter().all(|&h| (h as usize) < 128));
        }
    }

    #[test]
    fn query_rate_respected() {
        let mut rng = SimRng::new(4);
        let q300 =
            QueryTraffic::paper_default().generate(128, SimDuration::from_secs(10), &mut rng);
        assert!((2700..3300).contains(&q300.len()), "got {}", q300.len());
    }

    #[test]
    #[should_panic(expected = "incast degree")]
    fn degree_must_fit_hosts() {
        let mut rng = SimRng::new(1);
        QueryTraffic {
            qps: 1.0,
            degree: 10,
            response_bytes: 1,
        }
        .generate(10, SimDuration::from_secs(1), &mut rng);
    }

    #[test]
    fn long_lived_pairs_are_node_disjoint() {
        let flows = long_lived_pairs(128, 2);
        // 64 pairs * 2 flows * 2 directions.
        assert_eq!(flows.len(), 256);
        // Each host appears as src exactly flows_per_pair times per direction.
        let mut src_count = vec![0usize; 128];
        for f in &flows {
            src_count[f.src.index()] += 1;
            assert_eq!((f.src.0 as i64 - f.dst.0 as i64).unsigned_abs(), 64);
        }
        assert!(src_count.iter().all(|&c| c == 2));
    }
}
