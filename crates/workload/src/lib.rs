#![warn(missing_docs)]

//! Workload generation for the DIBS reproduction.
//!
//! * [`dist`] — sampling distributions, including the DCTCP-paper
//!   background flow-size CDF that drives all simulations.
//! * [`spec`] — flow and query descriptors.
//! * [`generators`] — background traffic, partition-aggregate (incast)
//!   query traffic, and the §5.6 long-lived fairness flows.
//! * [`matrices`] — demand-matrix families and fluid-model link
//!   utilization for the Figure 3/4 hotspot-sparsity statistics.

pub mod dist;
pub mod generators;
pub mod matrices;
pub mod spec;

pub use dist::EmpiricalCdf;
pub use generators::{long_lived_pairs, BackgroundTraffic, QueryTraffic};
pub use spec::{FlowClass, FlowSpec, QuerySpec};
