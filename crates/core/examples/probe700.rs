//! Probe: QCT tails at a 700-packet buffer with and without DIBS,
//! crossed with fast-retransmit settings.

use dibs::presets::{mixed_workload_sim, MixedWorkload};
use dibs::SimConfig;
use dibs_engine::time::SimDuration;
use dibs_net::builders::FatTreeParams;
use dibs_switch::{BufferConfig, DibsPolicy};
use dibs_transport::FastRetransmit;

fn main() {
    let wl = MixedWorkload {
        duration: SimDuration::from_millis(400),
        drain: SimDuration::from_millis(600),
        ..MixedWorkload::paper_default()
    };
    for (name, dibs_on, frtx) in [
        ("base+frtx3", false, FastRetransmit::DupAckThreshold(3)),
        ("base+nofrtx", false, FastRetransmit::Disabled),
        ("dibs+frtx16", true, FastRetransmit::DupAckThreshold(16)),
        ("dibs+nofrtx", true, FastRetransmit::Disabled),
    ] {
        let mut cfg = if dibs_on {
            SimConfig::dctcp_dibs()
        } else {
            SimConfig::dctcp_baseline()
        };
        cfg.switch.buffer = BufferConfig::StaticPerPort { packets: 700 };
        cfg.tcp.fast_retransmit = frtx;
        if dibs_on {
            cfg.switch.dibs = DibsPolicy::Random;
        }
        let mut r = mixed_workload_sim(FatTreeParams::paper_default(), cfg, wl).run();
        println!(
            "{name:>14}: qct_p99={:.1} timeouts={} frtx={} drops={} detours={}",
            r.qct_p99_ms().unwrap(),
            r.counters.rto_timeouts,
            r.counters.fast_retransmits,
            r.counters.total_drops(),
            r.counters.detours
        );
    }
}
