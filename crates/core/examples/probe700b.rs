//! Probe: sweep of DIBS TTL and buffer sizes around the 700-packet
//! operating point, reporting QCT tails and drop mix.

use dibs::presets::{mixed_workload_sim, MixedWorkload};
use dibs::SimConfig;
use dibs_engine::time::SimDuration;
use dibs_net::builders::FatTreeParams;
use dibs_switch::BufferConfig;
use dibs_workload::FlowClass;

fn main() {
    let wl = MixedWorkload {
        duration: SimDuration::from_millis(400),
        drain: SimDuration::from_millis(600),
        ..MixedWorkload::paper_default()
    };
    let mut cfg = SimConfig::dctcp_dibs();
    cfg.switch.buffer = BufferConfig::StaticPerPort { packets: 700 };
    let r = mixed_workload_sim(FatTreeParams::paper_default(), cfg, wl).run();
    let mut q_to = 0;
    let mut bg_to = 0;
    let mut bg_small = 0;
    let mut bg_big = 0;
    for f in &r.flows {
        if f.timeouts > 0 {
            match f.class {
                FlowClass::QueryResponse { .. } => q_to += 1,
                FlowClass::Background => {
                    bg_to += 1;
                    if f.size < 100_000 {
                        bg_small += 1
                    } else {
                        bg_big += 1
                    }
                }
                _ => {}
            }
        }
    }
    println!("flows with timeouts: query={q_to} bg={bg_to} (small={bg_small} big={bg_big})");
    // FCT of the timed-out query flows.
    let mut worst: Vec<(f64, u64)> = r
        .flows
        .iter()
        .filter(|f| f.timeouts > 0)
        .map(|f| (f.fct.map(|d| d.as_millis_f64()).unwrap_or(-1.0), f.size))
        .collect();
    worst.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    println!(
        "worst timed-out flows (fct_ms, size): {:?}",
        &worst[..worst.len().min(8)]
    );
}
