//! Core simulator integration tests: the paper's headline behaviors on
//! small topologies (kept small so debug-mode `cargo test` stays fast).

use dibs::presets::{
    all_to_one_flows, fairness_sim, mixed_workload_sim, single_incast_sim, testbed_incast_sim,
    MixedWorkload,
};
use dibs::{SimConfig, Simulation};
use dibs_engine::time::{SimDuration, SimTime};
use dibs_net::builders::{fat_tree, single_switch, FatTreeParams};
use dibs_net::ids::HostId;
use dibs_net::topology::LinkSpec;
use dibs_switch::{BufferConfig, DibsPolicy};
use dibs_workload::{FlowClass, FlowSpec};

fn k4() -> FatTreeParams {
    FatTreeParams {
        k: 4,
        ..FatTreeParams::paper_default()
    }
}

/// Fig 6 shape: droptail suffers timeouts and long QCT; DIBS matches the
/// infinite-buffer optimum and never drops.
#[test]
fn testbed_incast_dibs_matches_infinite_buffer() {
    // Droptail (DCTCP baseline, 100-packet buffers).
    let mut droptail = testbed_incast_sim(SimConfig::dctcp_baseline(), 5, 10, 32_000).run();
    // DIBS.
    let mut dibs = testbed_incast_sim(SimConfig::dctcp_dibs(), 5, 10, 32_000).run();
    // Infinite buffers.
    let mut inf_cfg = SimConfig::dctcp_baseline();
    inf_cfg.switch.buffer = BufferConfig::Infinite;
    let mut infinite = testbed_incast_sim(inf_cfg, 5, 10, 32_000).run();

    let qct_droptail = droptail.qct_ms.percentile(1.0).unwrap();
    let qct_dibs = dibs.qct_ms.percentile(1.0).unwrap();
    let qct_inf = infinite.qct_ms.percentile(1.0).unwrap();

    assert_eq!(dibs.counters.total_drops(), 0, "DIBS must not drop");
    assert_eq!(infinite.counters.total_drops(), 0);
    assert!(
        droptail.counters.drops_buffer > 0,
        "droptail must overflow under 50-flow incast"
    );
    assert!(
        qct_dibs <= qct_inf * 1.5,
        "DIBS ({qct_dibs:.1} ms) should be near the infinite-buffer optimum ({qct_inf:.1} ms)"
    );
    assert!(
        qct_droptail > qct_dibs * 1.2,
        "droptail ({qct_droptail:.1} ms) should lag DIBS ({qct_dibs:.1} ms)"
    );
    assert!(
        droptail.counters.rto_timeouts > 0,
        "droptail losses must cost at least one retransmission timeout"
    );
    assert!(dibs.counters.detours > 0);
    assert_eq!(dibs.query_completion_rate(), 1.0);
}

/// Same seed, same config => bit-identical outcome.
#[test]
fn runs_are_deterministic() {
    let run = || {
        let wl = MixedWorkload {
            duration: SimDuration::from_millis(100),
            drain: SimDuration::from_millis(100),
            qps: 600.0,
            incast_degree: 8,
            ..MixedWorkload::paper_default()
        };
        let sim = mixed_workload_sim(k4(), SimConfig::dctcp_dibs().with_seed(7), wl);
        let mut r = sim.run();
        (
            r.counters,
            r.events_dispatched,
            r.qct_ms.percentile(0.99),
            r.bg_all_fct_ms.percentile(0.5),
            r.detours_per_switch.clone(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
    assert_eq!(a.4, b.4);
}

/// Different seeds actually change the run.
#[test]
fn seeds_change_traffic() {
    let run = |seed| {
        let wl = MixedWorkload {
            duration: SimDuration::from_millis(50),
            drain: SimDuration::from_millis(100),
            incast_degree: 8,
            ..MixedWorkload::paper_default()
        };
        let sim = mixed_workload_sim(k4(), SimConfig::dctcp_dibs().with_seed(seed), wl);
        sim.run().events_dispatched
    };
    assert_ne!(run(1), run(2));
}

/// All bytes of every flow arrive exactly once (transport conservation
/// through a lossy, detouring network).
#[test]
fn byte_conservation_under_incast() {
    for cfg in [SimConfig::dctcp_baseline(), SimConfig::dctcp_dibs()] {
        let results = testbed_incast_sim(cfg, 5, 10, 32_000).run();
        for f in &results.flows {
            assert!(f.fct.is_some(), "every flow completes");
            assert_eq!(f.bytes_delivered, 32_000);
        }
    }
}

/// §2: "DIBS has no impact on normal operations" — light traffic detours
/// nothing and drops nothing.
#[test]
fn no_detours_without_congestion() {
    let topo = fat_tree(k4());
    let mut cfg = SimConfig::dctcp_dibs();
    cfg.horizon = SimTime::from_secs(1);
    let mut sim = Simulation::new(topo, cfg);
    // A handful of small, staggered flows.
    for i in 0..8u64 {
        sim.add_flows([FlowSpec {
            start: SimTime::from_millis(i * 10),
            src: HostId((i % 16) as u32),
            dst: HostId(((i + 5) % 16) as u32),
            size: 50_000,
            class: FlowClass::Background,
        }]);
    }
    let results = sim.run();
    assert_eq!(results.counters.detours, 0);
    assert_eq!(results.counters.total_drops(), 0);
    assert!(results.flows.iter().all(|f| f.fct.is_some()));
}

/// Fig 13 mechanism: a tight TTL forces DIBS to drop detour-looping
/// packets.
#[test]
fn low_ttl_causes_ttl_drops() {
    let mut cfg = SimConfig::dctcp_dibs();
    cfg.tcp.initial_ttl = 12;
    let results = testbed_incast_sim(cfg, 5, 10, 32_000).run();
    assert!(
        results.counters.drops_ttl > 0,
        "TTL 12 should expire under heavy detouring"
    );
    // Flows still complete (retransmission recovers the TTL drops).
    assert!(results.flows.iter().all(|f| f.fct.is_some()));
}

/// §5.5.2: a shared-memory (DBA) switch absorbs a moderate incast without
/// DIBS; with the same shared memory DIBS still never drops.
#[test]
fn shared_buffer_dba() {
    let shared = BufferConfig::DynamicShared {
        total_bytes: 1_700_000,
        alpha: 1.0,
        per_port_reserve_bytes: 2 * 1500,
    };
    // Moderate incast on one switch: fits in 1.7 MB shared memory.
    let mut cfg = SimConfig::dctcp_baseline();
    cfg.switch.buffer = shared;
    cfg.horizon = SimTime::from_secs(2);
    let topo = single_switch(9, LinkSpec::gbit(1));
    let mut sim = Simulation::new(topo, cfg);
    sim.add_flows(all_to_one_flows(9, 100_000));
    let results = sim.run();
    assert_eq!(
        results.counters.drops_buffer, 0,
        "DBA should absorb 8x100KB"
    );

    // Extreme: 8 senders x 400 KB = 3.2 MB > 1.7 MB shared. Droptail drops...
    let mut cfg2 = cfg;
    cfg2.switch.buffer = shared;
    let topo2 = single_switch(9, LinkSpec::gbit(1));
    let mut sim2 = Simulation::new(topo2, cfg2);
    sim2.add_flows(all_to_one_flows(9, 400_000));
    let base = sim2.run();

    // ...while DIBS on a richer topology (fat-tree) with the same shared
    // buffers keeps losses at zero.
    let mut cfg3 = SimConfig::dctcp_dibs();
    cfg3.switch.buffer = shared;
    let results3 = single_incast_sim(k4(), cfg3, 8, 400_000).run();
    assert_eq!(results3.counters.drops_buffer, 0, "DIBS+DBA lossless");
    // The single-switch droptail case must actually have been stressed for
    // the comparison to mean anything.
    assert!(base.counters.ecn_marks > 0);
}

/// §5.8: the pFabric stack completes incasts; its switches displace
/// lower-priority packets under pressure.
#[test]
fn pfabric_incast_completes() {
    let results = testbed_incast_sim(SimConfig::pfabric(), 5, 10, 32_000).run();
    assert_eq!(results.query_completion_rate(), 1.0);
    // 24-packet buffers under a 50-flow incast must shed load.
    assert!(results.counters.total_drops() > 0);
    for f in &results.flows {
        assert_eq!(f.bytes_delivered, 32_000);
    }
}

/// §5.6: long-lived flows share bandwidth fairly under DIBS.
/// §5.6 part 1: on a single shared bottleneck, DCTCP+DIBS converges to an
/// essentially perfect Jain index — the transport does not induce
/// unfairness.
#[test]
fn fairness_perfect_on_shared_bottleneck() {
    let topo = single_switch(5, LinkSpec::gbit(1));
    let mut cfg = SimConfig::dctcp_dibs();
    cfg.horizon = SimTime::from_millis(300);
    cfg.throughput_warmup = Some(SimTime::from_millis(100));
    let mut sim = Simulation::new(topo, cfg);
    for i in 1..5u32 {
        sim.add_flows([FlowSpec {
            start: SimTime::ZERO,
            src: HostId(i),
            dst: HostId(0),
            size: u64::MAX / 4,
            class: FlowClass::LongLived,
        }]);
    }
    let results = sim.run();
    let jain = results.jain().unwrap();
    assert!(jain > 0.99, "Jain index {jain}");
    // Aggregate goodput saturates the bottleneck (within DCTCP headroom).
    let total: f64 = results.long_lived_throughput_bps.iter().sum();
    assert!(total > 0.9e9, "total goodput {total}");
}

/// §5.6 part 2: on the fat-tree, flow-level ECMP collisions bound the
/// per-flow Jain index structurally — and DIBS does not make it worse than
/// the no-DIBS baseline. (The full K=8 N-sweep lives in `tab_fairness`.)
#[test]
#[ignore = "tier-2 (~40 s): run via scripts/check.sh --full or --include-ignored"]
fn fairness_dibs_does_not_induce_unfairness() {
    let run = |cfg: SimConfig| {
        let mut cfg = cfg.with_seed(3);
        cfg.throughput_warmup = Some(SimTime::from_millis(100));
        let sim = fairness_sim(k4(), cfg, 4, SimTime::from_millis(400));
        let results = sim.run();
        assert_eq!(results.long_lived_throughput_bps.len(), 64);
        assert!(results
            .long_lived_throughput_bps
            .iter()
            .all(|&t| t > 10_000_000.0));
        results.jain().unwrap()
    };
    // The two arms are independent full runs — fan them out.
    let mut jains = dibs_harness::Executor::from_env().map(
        vec![SimConfig::dctcp_dibs(), SimConfig::dctcp_baseline()],
        run,
    );
    let jain_base = jains.pop().unwrap();
    let jain_dibs = jains.pop().unwrap();
    // ECMP collisions dominate on K=4 (only two choices per stage); what
    // DIBS must not do is degrade fairness relative to the baseline.
    assert!(jain_dibs > 0.6, "DIBS Jain {jain_dibs}");
    assert!(
        jain_dibs >= jain_base - 0.05,
        "DIBS ({jain_dibs:.3}) must not be less fair than baseline ({jain_base:.3})"
    );
}

/// Fig 1 infrastructure: path tracing captures multi-detour packets whose
/// recorded paths are connected in the topology.
#[test]
fn packet_paths_are_traceable_and_connected() {
    let mut cfg = SimConfig::dctcp_dibs();
    cfg.trace_paths = true;
    let results = testbed_incast_sim(cfg, 5, 10, 32_000).run();
    assert!(!results.paths.is_empty(), "some packets must detour");
    let topo = dibs_net::builders::mini_testbed(LinkSpec::gbit(1));
    let most = results
        .paths
        .iter()
        .max_by_key(|p| p.detours)
        .expect("nonempty");
    assert!(most.detours >= 1);
    assert_eq!(most.nodes.len(), most.detour.len());
    // Consecutive trace nodes must be topology neighbors.
    for w in most.nodes.windows(2) {
        let connected = topo.node(w[0]).ports.iter().any(|p| p.peer == w[1]);
        assert!(connected, "trace hop {} -> {} not a link", w[0], w[1]);
    }
    // Detour count on the path matches the flags.
    let flagged = most.detour.iter().filter(|&&d| d).count();
    assert_eq!(flagged, usize::from(most.detours));
}

/// Detour bookkeeping is consistent: per-switch counts sum to the global
/// counter, and the capped log observed the same number.
#[test]
fn detour_accounting_consistent() {
    let results = testbed_incast_sim(SimConfig::dctcp_dibs(), 5, 10, 32_000).run();
    let per_switch: u64 = results.detours_per_switch.iter().sum();
    assert_eq!(per_switch, results.counters.detours);
    assert_eq!(results.detour_log.observed, results.counters.detours);
    // Histogram mass equals delivered packets.
    let hist_total: u64 = results.detour_histogram.iter().sum();
    assert_eq!(hist_total, results.counters.packets_delivered);
}

/// The load-aware and flow-based policies also produce lossless incasts.
#[test]
fn alternative_policies_also_lossless() {
    let policies = vec![
        DibsPolicy::LoadAware,
        DibsPolicy::FlowBased,
        DibsPolicy::Probabilistic { onset: 0.9 },
    ];
    let results = dibs_harness::Executor::from_env().map(policies, |policy| {
        let cfg = SimConfig::dctcp_dibs().with_policy(policy);
        (policy, testbed_incast_sim(cfg, 5, 10, 32_000).run())
    });
    for (policy, results) in results {
        assert_eq!(
            results.counters.drops_buffer, 0,
            "{policy:?} should be lossless here"
        );
        assert_eq!(results.query_completion_rate(), 1.0, "{policy:?}");
    }
}

/// Sampling plumbing: hot-link fractions and neighbor-buffer stats come out
/// of a congested run.
#[test]
fn sampling_produces_hotlink_series() {
    let mut cfg = SimConfig::dctcp_dibs();
    cfg.sample_interval = Some(SimDuration::from_millis(1));
    cfg.occupancy_snapshots = true;
    let results = testbed_incast_sim(cfg, 5, 10, 32_000).run();
    assert!(!results.hot_fraction_samples.is_empty());
    // The receiver's downlink saturates during the burst: some sample must
    // see a hot link.
    let max_hot = results
        .hot_fraction_samples
        .iter()
        .cloned()
        .fold(0.0f64, f64::max);
    assert!(max_hot > 0.0, "expected at least one hot sample");
    assert!(!results.neighbor_free_1hop.is_empty());
    assert!(results
        .neighbor_free_1hop
        .iter()
        .all(|&f| (0.0..=1.0).contains(&f)));
    assert!(!results.occupancy.is_empty());
    // Snapshot dimensions match the topology (5 switches).
    assert_eq!(results.occupancy[0].per_switch.len(), 5);
}

/// An ECN-blind loss-based sender (NewReno semantics with marking ignored)
/// paired with DIBS keeps queues saturated — the §3 requirement that DIBS
/// needs an ECN-reactive controller.
#[test]
fn dibs_with_loss_based_cc_floods_buffers() {
    let mut dibs_newreno = SimConfig::dctcp_dibs();
    dibs_newreno.switch.ecn_threshold = None; // No marking: NewReno-over-droptail semantics.
    let newreno = testbed_incast_sim(dibs_newreno, 5, 10, 32_000).run();

    let dctcp = testbed_incast_sim(SimConfig::dctcp_dibs(), 5, 10, 32_000).run();
    // Without ECN the network detours far more (queues stay full longer).
    assert!(
        newreno.counters.detours > dctcp.counters.detours,
        "no-ECN detours {} should exceed DCTCP detours {}",
        newreno.counters.detours,
        dctcp.counters.detours
    );
}

/// The host NIC cap drops locally once exceeded, and the transport
/// recovers via retransmission.
#[test]
fn host_nic_cap_drops_and_recovers() {
    let topo = single_switch(3, LinkSpec::gbit(1));
    let mut cfg = SimConfig::dctcp_dibs();
    cfg.horizon = SimTime::from_secs(3);
    cfg.host_nic_cap = 5; // Absurdly small: the initial window overflows it.
    let mut sim = Simulation::new(topo, cfg);
    sim.add_flows([FlowSpec {
        start: SimTime::ZERO,
        src: HostId(1),
        dst: HostId(0),
        size: 300_000,
        class: FlowClass::Background,
    }]);
    let r = sim.run();
    assert!(r.counters.drops_host_nic > 0, "cap must bind");
    assert!(r.flows[0].fct.is_some(), "flow still completes");
    assert_eq!(r.flows[0].bytes_delivered, 300_000);
}

/// §5.5.4: oversubscribed fabrics still deliver everything; DIBS stays
/// lossless at the (still-bottlenecked) last hop.
#[test]
fn oversubscribed_fabric_works() {
    let tree = FatTreeParams {
        k: 4,
        ..FatTreeParams::oversubscribed(4)
    };
    let topo = fat_tree(tree);
    // Check only fabric links slowed.
    for (pr, port) in topo.directed_edges() {
        let host_side = topo.is_host(pr.node) || port.peer_is_host;
        assert_eq!(
            port.rate_bps,
            if host_side {
                1_000_000_000
            } else {
                250_000_000
            }
        );
    }
    let mut cfg = SimConfig::dctcp_dibs();
    cfg.horizon = SimTime::from_secs(3);
    let mut sim = Simulation::new(topo, cfg);
    sim.add_flows(all_to_one_flows(8, 50_000));
    let r = sim.run();
    assert_eq!(r.counters.drops_buffer, 0);
    assert!(r.flows.iter().all(|f| f.fct.is_some()));
}

/// Spurious timeouts under deep buffers are detected and undone (Eifel),
/// and never happen at the default 100-packet buffers.
#[test]
fn eifel_detects_spurious_timeouts_at_deep_buffers() {
    // Deep buffers: sojourn exceeds the 10 ms minRTO, causing spurious
    // timeouts on the incast's first window.
    let mut deep = SimConfig::dctcp_dibs();
    deep.switch.buffer = dibs_switch::BufferConfig::StaticPerPort { packets: 1500 };
    let r = testbed_incast_sim(deep, 5, 10, 64_000).run();
    assert_eq!(r.counters.total_drops(), 0);
    if r.counters.rto_timeouts > 0 {
        assert!(
            r.counters.spurious_timeouts > 0,
            "deep-buffer timeouts with zero drops must be flagged spurious"
        );
    }
    // Default buffers: the burst drains fast enough that queries finish
    // without spurious timeouts.
    let r = testbed_incast_sim(SimConfig::dctcp_dibs(), 5, 10, 32_000).run();
    assert_eq!(r.counters.spurious_timeouts, 0);
}

/// §6 Ethernet flow control: PAUSE-based backpressure also avoids drops on
/// the incast, at the cost of pausing innocent neighbors (head-of-line
/// blocking); DIBS achieves the same losslessness without stalling anyone.
#[test]
fn pfc_is_lossless_but_pauses_neighbors() {
    let mut pfc_cfg = SimConfig::dctcp_baseline();
    pfc_cfg.pfc = Some(dibs::PfcConfig::default_for_paper_buffers());
    let mut pfc = testbed_incast_sim(pfc_cfg, 5, 10, 32_000).run();
    assert_eq!(
        pfc.counters.drops_buffer, 0,
        "PFC must prevent buffer overflow"
    );
    assert!(pfc.pfc_pause_events > 0, "the incast must trigger pauses");
    assert_eq!(pfc.query_completion_rate(), 1.0);

    let mut dibs = testbed_incast_sim(SimConfig::dctcp_dibs(), 5, 10, 32_000).run();
    assert_eq!(dibs.pfc_pause_events, 0);
    // Both lossless; DIBS completes at least as fast (no HoL blocking).
    let q_pfc = pfc.qct_ms.percentile(1.0).unwrap();
    let q_dibs = dibs.qct_ms.percentile(1.0).unwrap();
    assert!(
        q_dibs <= q_pfc * 1.1,
        "DIBS {q_dibs:.1} ms should not lose to PFC {q_pfc:.1} ms"
    );
}

/// §6: packet-level ECMP spreads fabric load but cannot fix a last-hop
/// incast — the paper's argument for why ECMP is not a substitute for
/// DIBS.
#[test]
fn packet_level_ecmp_does_not_fix_incast() {
    let mut spray = SimConfig::dctcp_baseline();
    spray.ecmp = dibs::EcmpMode::PacketLevel;
    // Spraying reorders packets, so disable fast retransmit like DIBS does.
    spray.tcp.fast_retransmit = dibs_transport::FastRetransmit::Disabled;
    let spray_r = testbed_incast_sim(spray, 5, 10, 32_000).run();
    assert!(
        spray_r.counters.drops_buffer > 0,
        "the receiver's last hop still overflows under packet spraying"
    );
    let dibs_r = testbed_incast_sim(SimConfig::dctcp_dibs(), 5, 10, 32_000).run();
    assert_eq!(dibs_r.counters.drops_buffer, 0);
}

/// DCTCP delayed acks (ack_every = 2): the incast still completes
/// losslessly under DIBS, with roughly half the acks on the wire.
#[test]
fn delayed_acks_end_to_end() {
    let mut cfg = SimConfig::dctcp_dibs();
    cfg.tcp.ack_every = 2;
    let delayed = testbed_incast_sim(cfg, 5, 10, 32_000).run();
    assert_eq!(delayed.counters.drops_buffer, 0);
    assert_eq!(delayed.query_completion_rate(), 1.0);

    let perpkt = testbed_incast_sim(SimConfig::dctcp_dibs(), 5, 10, 32_000).run();
    // Fewer packets on the wire overall (acks roughly halved).
    assert!(
        delayed.counters.packets_sent < perpkt.counters.packets_sent,
        "delayed acks should reduce wire packets: {} vs {}",
        delayed.counters.packets_sent,
        perpkt.counters.packets_sent
    );
}

/// PFC with absurdly tight thresholds still makes progress: pauses release
/// as queues drain, and all flows complete.
#[test]
fn pfc_tight_thresholds_still_progress() {
    let mut cfg = SimConfig::dctcp_baseline();
    cfg.pfc = Some(dibs::PfcConfig {
        xoff: 3,
        xon: 1,
        control_delay: dibs_engine::time::SimDuration::from_micros(1),
    });
    let r = testbed_incast_sim(cfg, 5, 10, 32_000).run();
    assert!(r.pfc_pause_events > 100, "tiny thresholds pause constantly");
    assert_eq!(r.query_completion_rate(), 1.0, "no deadlock/livelock");
    assert!(r.flows.iter().all(|f| f.fct.is_some()));
}

/// Packet-level ECMP sprays one flow's packets across paths, which shows
/// up as out-of-order arrivals; flow-level ECMP keeps the flow in order.
#[test]
fn packet_spraying_reorders_flow_level_does_not() {
    let run = |mode: dibs::EcmpMode| {
        let topo = fat_tree(k4());
        let mut cfg = SimConfig::dctcp_baseline();
        cfg.ecmp = mode;
        cfg.tcp.fast_retransmit = dibs_transport::FastRetransmit::Disabled;
        cfg.horizon = SimTime::from_secs(2);
        let mut sim = Simulation::new(topo, cfg);
        // One cross-pod flow: 4 aggr x 4 core up-paths available in K=4... (2x2).
        sim.add_flows([FlowSpec {
            start: SimTime::ZERO,
            src: HostId(0),
            dst: HostId(15),
            size: 2_000_000,
            class: FlowClass::Background,
        }]);
        let r = sim.run();
        assert!(r.flows[0].fct.is_some());
        r
    };
    let flow_level = run(dibs::EcmpMode::FlowLevel);
    let sprayed = run(dibs::EcmpMode::PacketLevel);
    // With a single flow and no congestion, flow-level delivery is in order;
    // spraying across unequal queue depths cannot be guaranteed in order but
    // must still deliver every byte.
    assert_eq!(flow_level.flows[0].bytes_delivered, 2_000_000);
    assert_eq!(sprayed.flows[0].bytes_delivered, 2_000_000);
}

/// §4: DIBS on a combined input/output-queued (CIOQ) switch — the
/// forwarding engine detours when the desired egress queue is full, and
/// the incast outcome matches the output-queued architecture: lossless,
/// near-optimal QCT.
#[test]
fn cioq_architecture_supports_dibs() {
    let mut cioq = SimConfig::dctcp_dibs();
    cioq.arch = dibs::SwitchArch::Cioq {
        speedup: 2.0,
        ingress_packets: 64,
    };
    let mut r = testbed_incast_sim(cioq, 5, 10, 32_000).run();
    assert_eq!(r.counters.drops_buffer, 0, "DIBS keeps CIOQ lossless");
    assert_eq!(r.query_completion_rate(), 1.0);
    assert!(r.counters.detours > 0);
    let qct_cioq = r.qct_ms.percentile(1.0).unwrap();

    let mut oq = testbed_incast_sim(SimConfig::dctcp_dibs(), 5, 10, 32_000).run();
    let qct_oq = oq.qct_ms.percentile(1.0).unwrap();
    // The 2x-speedup forwarding stage adds only per-hop service latency.
    assert!(
        (qct_cioq - qct_oq).abs() < 0.2 * qct_oq,
        "CIOQ {qct_cioq:.2} ms vs OQ {qct_oq:.2} ms"
    );

    // Without DIBS, the same CIOQ switch drops at the egress.
    let mut base = cioq;
    base.switch = dibs_switch::SwitchConfig::dctcp_baseline();
    base.tcp = dibs_transport::TcpConfig::dctcp_baseline();
    let r = testbed_incast_sim(base, 5, 10, 32_000).run();
    assert!(r.counters.drops_buffer > 0);
}
