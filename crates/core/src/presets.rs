//! Canonical experiment setups from the paper's evaluation.
//!
//! Every figure binary in `dibs-bench` builds on these: the K=8 fat-tree
//! mixed workload of §5.3 (background + partition-aggregate queries) and the
//! §5.2 Click-testbed incast.

use crate::config::SimConfig;
use crate::sim::Simulation;
use dibs_engine::rng::SimRng;
use dibs_engine::time::{SimDuration, SimTime};
use dibs_net::builders::{fat_tree, mini_testbed, FatTreeParams};
use dibs_net::ids::HostId;
use dibs_net::topology::LinkSpec;
use dibs_workload::{BackgroundTraffic, FlowClass, FlowSpec, QueryTraffic};

/// Parameters of the §5.3 mixed workload (Table 2).
#[derive(Debug, Clone, Copy)]
pub struct MixedWorkload {
    /// Mean background inter-arrival time per host (Table 2: 10–120 ms).
    pub bg_interarrival: SimDuration,
    /// Query arrival rate (queries per second).
    pub qps: f64,
    /// Incast degree (responders per query).
    pub incast_degree: usize,
    /// Bytes per query response.
    pub response_bytes: u64,
    /// Traffic generation window; flows start within `[0, duration)`.
    pub duration: SimDuration,
    /// Extra drain time after the generation window before the hard stop.
    pub drain: SimDuration,
}

impl MixedWorkload {
    /// Table 2 defaults: 120 ms inter-arrival, 300 qps, degree 40, 20 KB
    /// responses, with a 1-second generation window.
    pub fn paper_default() -> Self {
        MixedWorkload {
            bg_interarrival: SimDuration::from_millis(120),
            qps: 300.0,
            incast_degree: 40,
            response_bytes: 20_000,
            duration: SimDuration::from_secs(1),
            drain: SimDuration::from_millis(500),
        }
    }

    /// The total horizon this workload needs.
    pub fn horizon(&self) -> SimTime {
        SimTime::ZERO + self.duration + self.drain
    }
}

/// Builds the §5.3 simulation: K=8 fat-tree (or a custom `params`) carrying
/// the mixed workload under the given switch/host configuration.
///
/// The seed in `config` drives *both* workload generation and the
/// simulator's internal randomness, so two configs with the same seed see
/// identical traffic — exactly how the paper compares DCTCP with and
/// without DIBS.
pub fn mixed_workload_sim(
    tree: FatTreeParams,
    mut config: SimConfig,
    workload: MixedWorkload,
) -> Simulation {
    config.horizon = workload.horizon();
    let topo = fat_tree(tree);
    let hosts = topo.num_hosts();
    let mut sim = Simulation::new(topo, config);

    let root = SimRng::new(config.seed);
    let mut bg_rng = root.fork("workload/background");
    let mut q_rng = root.fork("workload/query");

    let bg = BackgroundTraffic::paper(workload.bg_interarrival);
    sim.add_flows(bg.generate(hosts, workload.duration, &mut bg_rng));

    let qt = QueryTraffic {
        qps: workload.qps,
        degree: workload.incast_degree,
        response_bytes: workload.response_bytes,
    };
    let queries = qt.generate(hosts, workload.duration, &mut q_rng);
    sim.add_queries(&queries);
    sim
}

/// The §5.2 Click/Emulab incast test: on the 2-aggregation / 3-edge
/// mini-testbed, `senders` hosts each send `flows_per_sender` simultaneous
/// flows of `flow_bytes` to the last host.
///
/// The paper's run: 5 senders x 10 flows x 32 KB, 100-packet buffers.
pub fn testbed_incast_sim(
    mut config: SimConfig,
    senders: usize,
    flows_per_sender: usize,
    flow_bytes: u64,
) -> Simulation {
    let topo = mini_testbed(LinkSpec::gbit(1));
    let receiver = HostId::from_index(topo.num_hosts() - 1);
    assert!(senders < topo.num_hosts(), "too many senders");
    config.horizon = SimTime::from_secs(5);
    let mut sim = Simulation::new(topo, config);
    // One "query" covering all flows, so QCT comes out directly.
    let responders: Vec<HostId> = (0..senders)
        .flat_map(|s| std::iter::repeat_n(HostId::from_index(s), flows_per_sender))
        .collect();
    sim.add_queries(&[dibs_workload::QuerySpec {
        start: SimTime::ZERO,
        target: receiver,
        responders,
        response_bytes: flow_bytes,
    }]);
    sim
}

/// A pure incast on the K=8 fat-tree: `degree` random responders send
/// `response_bytes` each to one target — the minimal Figure 1/2 scenario.
pub fn single_incast_sim(
    tree: FatTreeParams,
    mut config: SimConfig,
    degree: usize,
    response_bytes: u64,
) -> Simulation {
    let topo = fat_tree(tree);
    let hosts = topo.num_hosts();
    assert!(degree < hosts);
    config.horizon = SimTime::from_secs(5);
    let mut sim = Simulation::new(topo, config);
    let mut rng = SimRng::new(config.seed).fork("workload/single-incast");
    let target = rng.below(hosts);
    let responders: Vec<HostId> = rng
        .sample_distinct(hosts - 1, degree)
        .into_iter()
        .map(|mut i| {
            if i >= target {
                i += 1;
            }
            HostId::from_index(i)
        })
        .collect();
    sim.add_queries(&[dibs_workload::QuerySpec {
        start: SimTime::ZERO,
        target: HostId::from_index(target),
        responders,
        response_bytes,
    }]);
    sim
}

/// The §5.6 fairness run: 64 node-disjoint pairs, `n` long-lived flows per
/// direction per pair, measured over `horizon`.
pub fn fairness_sim(
    tree: FatTreeParams,
    mut config: SimConfig,
    flows_per_pair: usize,
    horizon: SimTime,
) -> Simulation {
    config.horizon = horizon;
    let topo = fat_tree(tree);
    let hosts = topo.num_hosts();
    let mut sim = Simulation::new(topo, config);
    sim.add_flows(dibs_workload::long_lived_pairs(hosts, flows_per_pair));
    sim
}

/// Convenience: same-seed DCTCP-vs-DIBS pair of simulations for a mixed
/// workload (returned as `(baseline, dibs)` builders to run).
pub fn baseline_and_dibs(
    tree: FatTreeParams,
    workload: MixedWorkload,
    seed: u64,
) -> (Simulation, Simulation) {
    let base = crate::config::SimConfig::dctcp_baseline().with_seed(seed);
    let dibs = crate::config::SimConfig::dctcp_dibs().with_seed(seed);
    (
        mixed_workload_sim(tree, base, workload),
        mixed_workload_sim(tree, dibs, workload),
    )
}

/// A flow from every host to host 0 — handy for saturation tests.
pub fn all_to_one_flows(hosts: usize, bytes: u64) -> Vec<FlowSpec> {
    (1..hosts)
        .map(|i| FlowSpec {
            start: SimTime::ZERO,
            src: HostId::from_index(i),
            dst: HostId(0),
            size: bytes,
            class: FlowClass::Background,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibs_workload::FlowClass;

    #[test]
    fn workload_horizon_covers_duration_and_drain() {
        let wl = MixedWorkload::paper_default();
        assert_eq!(wl.horizon(), SimTime::ZERO + wl.duration + wl.drain);
    }

    #[test]
    fn mixed_workload_matches_table2_defaults() {
        let wl = MixedWorkload::paper_default();
        assert_eq!(wl.qps, 300.0);
        assert_eq!(wl.incast_degree, 40);
        assert_eq!(wl.response_bytes, 20_000);
        assert_eq!(wl.bg_interarrival, SimDuration::from_millis(120));
    }

    #[test]
    fn testbed_incast_builds_one_query_of_fifty_flows() {
        let sim = testbed_incast_sim(crate::SimConfig::dctcp_dibs(), 5, 10, 32_000);
        // 6-host testbed; 5 senders x 10 flows.
        assert_eq!(sim.topology().num_hosts(), 6);
        // The query expands into 50 response flows targeting the last host.
        // (Verified indirectly: the simulation runs them all to completion
        // in the integration tests.)
    }

    #[test]
    fn all_to_one_covers_every_other_host() {
        let flows = all_to_one_flows(9, 1000);
        assert_eq!(flows.len(), 8);
        assert!(flows.iter().all(|f| f.dst == HostId(0)));
        assert!(flows.iter().all(|f| f.src != f.dst));
        assert!(flows.iter().all(|f| f.class == FlowClass::Background));
    }

    #[test]
    fn same_seed_same_workload() {
        let wl = MixedWorkload {
            duration: SimDuration::from_millis(50),
            incast_degree: 8, // The K=4 tree only has 16 hosts.
            ..MixedWorkload::paper_default()
        };
        let (a, b) = baseline_and_dibs(
            FatTreeParams {
                k: 4,
                ..FatTreeParams::paper_default()
            },
            wl,
            7,
        );
        // Both simulations must see the identical traffic (same seed).
        assert_eq!(a.config().seed, b.config().seed);
    }

    #[test]
    #[should_panic(expected = "too many senders")]
    fn testbed_rejects_too_many_senders() {
        testbed_incast_sim(crate::SimConfig::dctcp_dibs(), 6, 1, 1000);
    }
}
