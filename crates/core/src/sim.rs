//! The event-driven network simulator.
//!
//! All mutable state lives in arenas indexed by the id types of
//! `dibs-net`; the event loop dispatches a flat [`Event`] enum. Hosts own a
//! single unbounded NIC queue (congestion happens at switches, as in the
//! paper's NS-3 setup); switches run the full `dibs-switch` data path.

use crate::audit::{AuditLedger, LedgerSnapshot};
use crate::config::SimConfig;
use crate::results::{FlowOutcome, PacketPath, QueryOutcome, RunResults};
use dibs_engine::rng::SimRng;
use dibs_engine::time::{SimDuration, SimTime};
use dibs_engine::Engine;
use dibs_fault::{FaultAction, FaultError, FaultPlan, FaultSpec};
use dibs_net::ids::{FlowId, HostId, LinkId, NodeId, PacketId};
use dibs_net::packet::Packet;
use dibs_net::routing::{EcmpMemo, Fib};
use dibs_net::topology::{SwitchLayer, Topology};
use dibs_stats::{DetourLog, NetCounters, OccupancySnapshot, Samples};
use dibs_switch::{EnqueueOutcome, SwitchCore};
use dibs_trace::{TraceEvent, TraceKind, TraceSink, Tracer};
use dibs_transport::{trace_packet_out, IdGen, TcpReceiver, TcpSender};
use dibs_workload::{FlowClass, FlowSpec, QuerySpec};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, VecDeque};

/// Maximum distinct detour counts tracked in the delivery histogram.
const DETOUR_HIST_BUCKETS: usize = 65;
/// Cap on retained packet paths when tracing.
const MAX_TRACED_PATHS: usize = 4096;

/// Simulator events.
#[derive(Debug)]
enum Event {
    /// A flow's start time arrived.
    FlowStart(u32),
    /// A packet finished propagating to `node`.
    Arrive { node: NodeId, pkt: Packet },
    /// `node` finished serializing `pkt` out of `port`.
    TxComplete {
        node: NodeId,
        port: u32,
        pkt: Packet,
    },
    /// A sender retransmission timer fired.
    RtoFire { flow: u32, gen: u64 },
    /// Periodic statistics tick.
    Sample,
    /// Snapshot per-flow delivered bytes for warmup-relative throughput.
    WarmupSnapshot,
    /// A switch ingress pipeline finished the forwarding delay for `pkt`
    /// arriving on `port` and the packet is ready to be routed/enqueued.
    ForwardDone {
        node: NodeId,
        port: u32,
        pkt: Packet,
    },
    /// A PAUSE (true) or RESUME (false) frame took effect at `node`'s
    /// `port` (Ethernet flow control, §6).
    PauseSet {
        node: NodeId,
        port: u32,
        paused: bool,
    },
    /// The `i`-th timed fault in the resolved [`FaultPlan`] takes effect.
    Fault(u32),
}

struct HostNic {
    queue: VecDeque<Packet>,
    busy: bool,
}

struct FlowState {
    spec: FlowSpec,
    sender: TcpSender,
    receiver: TcpReceiver,
    /// Last RTO generation for which an event was scheduled.
    timer_scheduled: u64,
    /// Query this flow belongs to, if any.
    query: Option<usize>,
    done_recorded: bool,
}

struct QueryState {
    start: SimTime,
    total: usize,
    completed: usize,
    qct: Option<SimDuration>,
}

#[derive(Default)]
struct PathTrace {
    nodes: Vec<NodeId>,
    detour: Vec<bool>,
    pending_detour: bool,
    detours: u16,
}

/// Runtime state of an installed fault schedule.
///
/// Absent (`Simulation::faults == None`) the data path takes one dead
/// branch per hook and draws no randomness, so fault-free runs are
/// bit-identical to builds without this feature.
struct FaultState {
    plan: FaultPlan,
    /// `link_down[node][port]` — the port's link is administratively down
    /// (mirrored onto both endpoints of the link).
    link_down: Vec<Vec<bool>>,
    /// `crashed[switch]` — the switch blackholes everything (permanent).
    crashed: Vec<bool>,
    /// Dedicated stream for drop/corrupt Bernoulli trials, forked from
    /// the run seed so detour/ECMP streams are untouched.
    rng: SimRng,
}

/// A fully wired simulation: topology + switches + hosts + traffic.
///
/// # Examples
///
/// ```
/// use dibs::{SimConfig, Simulation};
/// use dibs_engine::time::{SimTime, SimDuration};
/// use dibs_net::builders::single_switch;
/// use dibs_net::topology::LinkSpec;
/// use dibs_net::ids::HostId;
/// use dibs_workload::{FlowClass, FlowSpec};
///
/// let topo = single_switch(3, LinkSpec::gbit(1));
/// let mut cfg = SimConfig::dctcp_dibs();
/// cfg.horizon = SimTime::from_secs(1);
/// let mut sim = Simulation::new(topo, cfg);
/// sim.add_flows([FlowSpec {
///     start: SimTime::ZERO,
///     src: HostId(0),
///     dst: HostId(1),
///     size: 100_000,
///     class: FlowClass::Background,
/// }]);
/// let results = sim.run();
/// assert_eq!(results.flows[0].bytes_delivered, 100_000);
/// assert!(results.flows[0].fct.is_some());
/// ```
pub struct Simulation {
    topo: Topology,
    fib: Fib,
    /// Per-`(flow, node, dst)` cache of flow-level ECMP decisions; a pure
    /// accelerator over [`Fib::select_port`].
    ecmp_memo: EcmpMemo,
    config: SimConfig,
    engine: Engine<Event>,
    rng_detour: SimRng,
    ids: IdGen,

    switches: Vec<SwitchCore>,
    host_nic: Vec<HostNic>,
    /// `tx_busy[node][port]` (hosts use port 0).
    tx_busy: Vec<Vec<bool>>,

    flows: Vec<FlowState>,
    queries: Vec<QueryState>,

    counters: NetCounters,
    detour_log: DetourLog,
    detours_per_switch: Vec<u64>,
    detour_hist: Vec<u64>,
    qct_ms: Samples,
    bg_short_fct_ms: Samples,
    bg_all_fct_ms: Samples,

    /// Flat per-directed-edge byte accumulator since the last sample tick.
    port_tx_bytes: Vec<u64>,
    /// `port_offsets[node]` — base index of the node's ports in the flat
    /// arrays.
    port_offsets: Vec<usize>,
    hot_samples: Vec<f64>,
    neighbor_free_1hop: Vec<f64>,
    neighbor_free_2hop: Vec<f64>,
    occupancy: Vec<OccupancySnapshot>,
    /// 1-hop switch neighborhood of each switch (switch indices).
    neighbors1: Vec<Vec<usize>>,
    /// 2-hop switch neighborhood (excluding self and 1-hop).
    neighbors2: Vec<Vec<usize>>,
    last_sample: SimTime,

    traces: BTreeMap<u64, PathTrace>,
    finished_paths: Vec<PacketPath>,
    /// `(time, per-flow rcv_nxt)` captured at the warmup instant.
    warmup_snapshot: Option<(SimTime, Vec<u64>)>,
    /// `paused[node][port]` — the peer has PAUSEd this port (PFC).
    paused: Vec<Vec<bool>>,
    /// `ingress_count[switch][port]` — buffered packets that arrived via
    /// that ingress port (PFC accounting).
    ingress_count: Vec<Vec<u32>>,
    /// CIOQ only: per-switch per-input-port ingress queues.
    ingress_q: Vec<Vec<VecDeque<Packet>>>,
    /// CIOQ only: whether each input port's forwarding engine is busy.
    ingress_busy: Vec<Vec<bool>>,
    /// `pause_asserted[switch][port]` — this switch has paused the link
    /// partner on `port`.
    pause_asserted: Vec<Vec<bool>>,
    /// Total PAUSE assertions (diagnostics).
    pause_events: u64,
    /// Debug-build packet-conservation auditor.
    audit: AuditLedger,
    /// Installed fault schedule, if any (see [`Simulation::set_faults`]).
    faults: Option<FaultState>,
    /// Event-trace sink (`Tracer::Off` by default: one dead branch per
    /// potential event, nothing recorded, no RNG or scheduling impact).
    tracer: Tracer,
}

impl Simulation {
    /// Builds a simulation over `topo` with the given configuration.
    pub fn new(topo: Topology, config: SimConfig) -> Self {
        debug_assert!(topo.validate().is_ok());
        let root = SimRng::new(config.seed);
        let fib = Fib::compute_salted(&topo, root.fork("ecmp").seed());
        let rng_detour = root.fork("detour");

        let switches: Vec<SwitchCore> = topo
            .switch_nodes()
            .iter()
            .map(|&n| {
                let host_facing: Vec<bool> =
                    topo.node(n).ports.iter().map(|p| p.peer_is_host).collect();
                SwitchCore::new(n, config.switch, host_facing)
            })
            .collect();
        let host_nic = (0..topo.num_hosts())
            .map(|_| HostNic {
                queue: VecDeque::new(),
                busy: false,
            })
            .collect();
        let tx_busy = (0..topo.num_nodes())
            .map(|n| vec![false; topo.num_ports(NodeId::from_index(n))])
            .collect();

        let mut port_offsets = Vec::with_capacity(topo.num_nodes());
        let mut total_ports = 0;
        for n in 0..topo.num_nodes() {
            port_offsets.push(total_ports);
            total_ports += topo.num_ports(NodeId::from_index(n));
        }

        // Switch neighborhoods for the Fig 5 statistic.
        let n_sw = topo.num_switches();
        let mut neighbors1 = vec![Vec::new(); n_sw];
        let mut neighbors2 = vec![Vec::new(); n_sw];
        for (si, &sn) in topo.switch_nodes().iter().enumerate() {
            let mut one: Vec<usize> = topo
                .node(sn)
                .ports
                .iter()
                .filter_map(|p| topo.as_switch(p.peer).map(|s| s.index()))
                .collect();
            one.sort_unstable();
            one.dedup();
            let mut two: Vec<usize> = one
                .iter()
                .flat_map(|&m| {
                    topo.node(topo.switch_node(dibs_net::SwitchId::from_index(m)))
                        .ports
                        .iter()
                        .filter_map(|p| topo.as_switch(p.peer).map(|s| s.index()))
                })
                .collect();
            two.sort_unstable();
            two.dedup();
            two.retain(|&m| m != si && !one.contains(&m));
            neighbors1[si] = one;
            neighbors2[si] = two;
        }

        let mut engine = Engine::new();
        engine.set_horizon(config.horizon);

        Simulation {
            fib,
            ecmp_memo: EcmpMemo::with_slots(1 << 14),
            engine,
            rng_detour,
            ids: IdGen::new(),
            switches,
            host_nic,
            tx_busy,
            flows: Vec::new(),
            queries: Vec::new(),
            counters: NetCounters::default(),
            detour_log: DetourLog::new(config.detour_log_cap),
            detours_per_switch: vec![0; n_sw],
            detour_hist: vec![0; DETOUR_HIST_BUCKETS],
            qct_ms: Samples::new(),
            bg_short_fct_ms: Samples::new(),
            bg_all_fct_ms: Samples::new(),
            port_tx_bytes: vec![0; total_ports],
            port_offsets,
            hot_samples: Vec::new(),
            neighbor_free_1hop: Vec::new(),
            neighbor_free_2hop: Vec::new(),
            occupancy: Vec::new(),
            neighbors1,
            neighbors2,
            last_sample: SimTime::ZERO,
            traces: BTreeMap::new(),
            finished_paths: Vec::new(),
            warmup_snapshot: None,
            paused: (0..topo.num_nodes())
                .map(|n| vec![false; topo.num_ports(NodeId::from_index(n))])
                .collect(),
            ingress_count: topo
                .switch_nodes()
                .iter()
                .map(|&n| vec![0; topo.num_ports(n)])
                .collect(),
            ingress_q: topo
                .switch_nodes()
                .iter()
                .map(|&n| (0..topo.num_ports(n)).map(|_| VecDeque::new()).collect())
                .collect(),
            ingress_busy: topo
                .switch_nodes()
                .iter()
                .map(|&n| vec![false; topo.num_ports(n)])
                .collect(),
            pause_asserted: topo
                .switch_nodes()
                .iter()
                .map(|&n| vec![false; topo.num_ports(n)])
                .collect(),
            pause_events: 0,
            audit: AuditLedger::new(),
            faults: None,
            tracer: Tracer::off(),
            topo,
            config,
        }
    }

    /// Installs an event tracer for this run (default: [`Tracer::off`]).
    ///
    /// Tracing is observational only: it draws no randomness and
    /// schedules nothing, so results — and in particular `RunDigest`
    /// fingerprints — are identical with any tracer installed.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Installs a fault schedule for this run (default: none).
    ///
    /// The spec is resolved against the topology immediately: symbolic
    /// names bind to link/switch ids, `random:<budget>` clauses expand
    /// through a dedicated [`SimRng`] stream derived from the run seed,
    /// and the timed events are sorted. Drop/corrupt trials likewise
    /// draw from their own stream, so installing a schedule never
    /// perturbs ECMP or detour randomness — and a spec whose every
    /// probability is zero is digest-identical to no spec at all
    /// ([`SimRng::chance`] consumes nothing for `p <= 0`).
    ///
    /// # Errors
    ///
    /// Returns [`FaultError`] when a clause names an unknown node or
    /// link, or targets a host with `switch-crash`.
    pub fn set_faults(&mut self, spec: &FaultSpec) -> Result<(), FaultError> {
        if spec.is_off() {
            self.faults = None;
            return Ok(());
        }
        let root = SimRng::new(self.config.seed);
        let mut plan_rng = root.fork("fault/plan");
        let plan = spec.resolve(&self.topo, self.config.horizon, &mut plan_rng)?;
        self.faults = Some(FaultState {
            plan,
            link_down: (0..self.topo.num_nodes())
                .map(|n| vec![false; self.topo.num_ports(NodeId::from_index(n))])
                .collect(),
            crashed: vec![false; self.topo.num_switches()],
            rng: root.fork("fault/drop"),
        });
        Ok(())
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Adds standalone flows (background, long-lived, or custom).
    ///
    /// # Panics
    ///
    /// Panics on self-flows or out-of-range hosts.
    pub fn add_flows(&mut self, specs: impl IntoIterator<Item = FlowSpec>) {
        for spec in specs {
            self.add_flow_internal(spec, None);
        }
    }

    /// Adds partition-aggregate queries; each expands into its response
    /// flows and is tracked for QCT.
    pub fn add_queries(&mut self, specs: &[QuerySpec]) {
        for spec in specs {
            let qi = self.queries.len();
            self.queries.push(QueryState {
                start: spec.start,
                total: spec.responders.len(),
                completed: 0,
                qct: None,
            });
            for flow in spec.response_flows(qi) {
                self.add_flow_internal(flow, Some(qi));
            }
        }
    }

    fn add_flow_internal(&mut self, spec: FlowSpec, query: Option<usize>) {
        assert!(spec.src != spec.dst, "self-flow {:?}", spec);
        assert!(spec.src.index() < self.topo.num_hosts());
        assert!(spec.dst.index() < self.topo.num_hosts());
        let fi = u32::try_from(self.flows.len()).expect("flow count fits u32");
        let flow_id = FlowId(fi);
        let sender = TcpSender::new(self.config.tcp, flow_id, spec.src, spec.dst, spec.size);
        let receiver = TcpReceiver::with_delayed_acks(
            flow_id,
            spec.dst,
            spec.src,
            spec.size,
            self.config.tcp.initial_ttl,
            self.config.tcp.ack_every,
        );
        self.flows.push(FlowState {
            spec,
            sender,
            receiver,
            timer_scheduled: 0,
            query,
            done_recorded: false,
        });
        self.engine.schedule_at(spec.start, Event::FlowStart(fi));
    }

    /// Rough event count the scheduled traffic will generate, used to
    /// pre-size the event queue before the run starts.
    ///
    /// Each data packet costs a handful of events per hop (arrive, forward,
    /// tx-complete) in each direction counting acks; flows add start/RTO
    /// bookkeeping. Only an allocation hint, so precision is irrelevant —
    /// the aim is the right order of magnitude.
    fn estimated_event_count(&self) -> usize {
        let mss = u64::from(self.config.tcp.mss).max(1);
        let packets: u64 = self.flows.iter().map(|f| f.spec.size.div_ceil(mss)).sum();
        let per_packet_events = 8;
        let per_flow_events = 16;
        usize::try_from(packets * per_packet_events)
            .unwrap_or(usize::MAX)
            .saturating_add(self.flows.len().saturating_mul(per_flow_events))
    }

    /// Runs to completion (event exhaustion or the configured horizon) and
    /// returns the measurements.
    pub fn run(mut self) -> RunResults {
        let expected_events = self.estimated_event_count();
        self.engine.queue_mut().reserve(expected_events);
        if let Some(interval) = self.config.sample_interval {
            self.engine.schedule_in(interval, Event::Sample);
        }
        if let Some(warmup) = self.config.throughput_warmup {
            self.engine.schedule_at(warmup, Event::WarmupSnapshot);
        }
        let timed_faults: Vec<(SimTime, u32)> = self.faults.as_ref().map_or_else(Vec::new, |f| {
            f.plan
                .timed
                .iter()
                .enumerate()
                .filter(|(_, tf)| tf.at <= self.config.horizon)
                .map(|(i, tf)| (tf.at, u32::try_from(i).expect("fault count fits u32")))
                .collect()
        });
        for (at, i) in timed_faults {
            self.engine.schedule_at(at, Event::Fault(i));
        }
        while let Some(ev) = self.engine.next_event() {
            self.dispatch(ev);
            if self.audit.tick() {
                self.conservation_check();
            }
        }
        self.finalize()
    }

    /// Debug-build audit: every injected packet is delivered, dropped,
    /// queued somewhere, or riding inside a scheduled event.
    fn conservation_check(&self) {
        AuditLedger::check(&LedgerSnapshot {
            sent: self.counters.packets_sent,
            delivered: self.counters.packets_delivered,
            dropped: self.counters.total_drops(),
            in_nic: self.host_nic.iter().map(|n| n.queue.len() as u64).sum(),
            in_ingress: self
                .ingress_q
                .iter()
                .flat_map(|qs| qs.iter().map(|q| q.len() as u64))
                .sum(),
            in_buffer: self
                .switches
                .iter()
                .map(|s| s.total_buffered() as u64)
                .sum(),
            in_events: self.audit.in_events(),
        });
    }

    fn dispatch(&mut self, ev: Event) {
        if matches!(
            ev,
            Event::Arrive { .. } | Event::TxComplete { .. } | Event::ForwardDone { .. }
        ) {
            self.audit.packet_event_dispatched();
        }
        match ev {
            Event::FlowStart(fi) => self.on_flow_start(fi as usize),
            Event::Arrive { node, pkt } => self.on_arrive(node, pkt),
            Event::TxComplete { node, port, pkt } => self.on_tx_complete(node, port as usize, pkt),
            Event::RtoFire { flow, gen } => self.on_rto(flow as usize, gen),
            Event::Sample => self.on_sample(),
            Event::WarmupSnapshot => {
                let bytes = self.flows.iter().map(|f| f.receiver.rcv_nxt()).collect();
                self.warmup_snapshot = Some((self.engine.now(), bytes));
            }
            Event::ForwardDone { node, port, pkt } => {
                let si = self.topo.as_switch(node).expect("switch").index();
                if self.fault_crashed_switch(si) {
                    // The switch crashed while this packet was in its
                    // forwarding pipeline; it dies with the switch.
                    self.counters.drops_fault += 1;
                    self.traces.remove(&pkt.id.0);
                    self.trace_pkt(TraceKind::Drop, node.0, &pkt);
                    self.ingress_busy[si][port as usize] = false;
                    return;
                }
                self.route_and_enqueue(node, si, pkt);
                self.ingress_busy[si][port as usize] = false;
                self.start_forwarding(node, si, port as usize);
            }
            Event::PauseSet { node, port, paused } => {
                self.paused[node.index()][port as usize] = paused;
                if !paused {
                    // Resume transmission on the released port.
                    match self.topo.as_host(node) {
                        Some(host) => {
                            if !self.host_nic[host.index()].busy {
                                self.start_host_tx(host);
                            }
                        }
                        None => {
                            let si = self.topo.as_switch(node).expect("switch").index();
                            self.kick_switch_port(node, si, port as usize);
                        }
                    }
                }
            }
            Event::Fault(idx) => self.on_fault(idx as usize),
        }
    }

    // ------------------------------------------------------------------
    // Fault injection.
    // ------------------------------------------------------------------

    /// Whether `node`'s `port` sits on an administratively-downed link.
    fn fault_link_down(&self, node: NodeId, port: usize) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|f| f.link_down[node.index()][port])
    }

    /// Whether switch `si` has crashed.
    fn fault_crashed_switch(&self, si: usize) -> bool {
        self.faults.as_ref().is_some_and(|f| f.crashed[si])
    }

    /// One seeded Bernoulli trial per matching drop profile, evaluated in
    /// spec order with short-circuit on the first hit. `p = 0` profiles
    /// consume no randomness, so `drop:p=0` is digest-neutral.
    fn fault_should_drop(&mut self, pkt: &Packet) -> bool {
        let Some(FaultState { plan, rng, .. }) = self.faults.as_mut() else {
            return false;
        };
        plan.drops
            .iter()
            .any(|prof| prof.kind.applies(pkt.detours > 0, pkt.is_data()) && rng.chance(prof.p))
    }

    /// Same trial for corrupt profiles (applied at dequeue: the frame is
    /// damaged on the wire and discarded by the receiver's CRC check).
    fn fault_should_corrupt(&mut self, pkt: &Packet) -> bool {
        let Some(FaultState { plan, rng, .. }) = self.faults.as_mut() else {
            return false;
        };
        plan.corrupts
            .iter()
            .any(|prof| prof.kind.applies(pkt.detours > 0, pkt.is_data()) && rng.chance(prof.p))
    }

    fn on_fault(&mut self, idx: usize) {
        let Some(f) = self.faults.as_ref() else {
            return;
        };
        let action = f.plan.timed[idx].action;
        match action {
            FaultAction::LinkDown(link) => self.set_link_state(link, true),
            FaultAction::LinkUp(link) => self.set_link_state(link, false),
            FaultAction::SwitchCrash(node) => self.crash_switch(node),
        }
    }

    /// Takes a link down or brings it back up: marks both endpoints,
    /// recomputes routes, and on recovery restarts any transmitter that
    /// parked while the link was dark.
    fn set_link_state(&mut self, link: LinkId, down: bool) {
        let l = self.topo.links()[link.index()];
        let ends = [(l.a.node, l.a.port), (l.b.node, l.b.port)];
        {
            let f = self.faults.as_mut().expect("fault state present");
            for &(node, port) in &ends {
                f.link_down[node.index()][port] = down;
            }
        }
        self.refresh_routes();
        if !down {
            for &(node, port) in &ends {
                self.resume_endpoint(node, port);
            }
        }
    }

    /// Restarts transmission on an endpoint whose link just recovered.
    fn resume_endpoint(&mut self, node: NodeId, port: usize) {
        match self.topo.as_host(node) {
            Some(host) => {
                if !self.host_nic[host.index()].busy {
                    self.start_host_tx(host);
                }
            }
            None => {
                let si = self.topo.as_switch(node).expect("switch").index();
                if !self.fault_crashed_switch(si) {
                    self.kick_switch_port(node, si, port);
                }
            }
        }
    }

    /// Recomputes the FIB with every faulted link masked out and flushes
    /// the flow-level ECMP memo (per-switch detour memos cache only flow
    /// hashes, not routes, so they stay valid).
    fn refresh_routes(&mut self) {
        let Some(f) = self.faults.as_ref() else {
            return;
        };
        let mut disabled = vec![false; self.topo.links().len()];
        for (i, l) in self.topo.links().iter().enumerate() {
            let down = f.link_down[l.a.node.index()][l.a.port];
            let a_crashed = self
                .topo
                .as_switch(l.a.node)
                .is_some_and(|s| f.crashed[s.index()]);
            let b_crashed = self
                .topo
                .as_switch(l.b.node)
                .is_some_and(|s| f.crashed[s.index()]);
            disabled[i] = down || a_crashed || b_crashed;
        }
        self.fib = Fib::compute_masked(&self.topo, self.fib.salt(), &disabled);
        self.ecmp_memo.clear();
    }

    /// Crashes a switch permanently: every buffered packet is destroyed
    /// (with its PFC ingress accounting unwound so paused neighbors
    /// resume), ingress pipelines are emptied, and routes recompute to
    /// steer around the dead node.
    fn crash_switch(&mut self, node: NodeId) {
        let si = self
            .topo
            .as_switch(node)
            .expect("crash target is a switch")
            .index();
        {
            let f = self.faults.as_mut().expect("fault state present");
            if f.crashed[si] {
                return;
            }
            f.crashed[si] = true;
        }
        let drained = self.switches[si].drain_all();
        for pkt in drained {
            self.counters.drops_fault += 1;
            self.traces.remove(&pkt.id.0);
            self.trace_pkt(TraceKind::Drop, node.0, &pkt);
            self.pfc_on_dequeued(si, usize::from(pkt.last_ingress));
        }
        // CIOQ ingress queues die too; those packets were never counted
        // into PFC buffering, so no XON bookkeeping here.
        let ingress: Vec<Packet> = self.ingress_q[si]
            .iter_mut()
            .flat_map(std::mem::take)
            .collect();
        for pkt in ingress {
            self.counters.drops_fault += 1;
            self.traces.remove(&pkt.id.0);
            self.trace_pkt(TraceKind::Drop, node.0, &pkt);
        }
        self.refresh_routes();
    }

    // ------------------------------------------------------------------
    // Host side.
    // ------------------------------------------------------------------

    fn on_flow_start(&mut self, fi: usize) {
        let now = self.engine.now();
        let pkts = self.flows[fi].sender.start(now, &mut self.ids);
        let src = self.flows[fi].spec.src;
        for p in pkts {
            self.host_send(src, p);
        }
        self.sync_timer(fi);
    }

    fn on_rto(&mut self, fi: usize, gen: u64) {
        let now = self.engine.now();
        let src = self.flows[fi].spec.src;
        let node = self.topo.host_node(src).0;
        let pkts =
            self.flows[fi]
                .sender
                .on_rto_traced(gen, now, &mut self.ids, node, &mut self.tracer);
        for p in pkts {
            self.host_send(src, p);
        }
        self.sync_timer(fi);
    }

    fn sync_timer(&mut self, fi: usize) {
        let flow = &mut self.flows[fi];
        if let Some((deadline, gen)) = flow.sender.timer() {
            if gen != flow.timer_scheduled {
                flow.timer_scheduled = gen;
                self.engine.schedule_at(
                    deadline,
                    Event::RtoFire {
                        flow: u32::try_from(fi).expect("flow index fits u32"),
                        gen,
                    },
                );
            }
        }
    }

    fn host_send(&mut self, host: HostId, pkt: Packet) {
        self.counters.packets_sent += 1;
        if self.tracer.is_enabled() {
            trace_packet_out(
                &pkt,
                self.engine.now().as_nanos(),
                self.topo.host_node(host).0,
                &mut self.tracer,
            );
        }
        if self.config.trace_paths {
            let node = self.topo.host_node(host);
            self.traces.insert(
                pkt.id.0,
                PathTrace {
                    nodes: vec![node],
                    detour: vec![false],
                    pending_detour: false,
                    detours: 0,
                },
            );
        }
        let nic = &mut self.host_nic[host.index()];
        if nic.queue.len() >= self.config.host_nic_cap {
            // Qdisc-style local drop; the transport retransmits later.
            self.counters.drops_host_nic += 1;
            self.traces.remove(&pkt.id.0);
            let node = self.topo.host_node(host).0;
            self.trace_pkt(TraceKind::Drop, node, &pkt);
            return;
        }
        nic.queue.push_back(pkt);
        if !nic.busy {
            self.start_host_tx(host);
        }
    }

    fn start_host_tx(&mut self, host: HostId) {
        let node = self.topo.host_node(host);
        if self.paused[node.index()][0] || self.fault_link_down(node, 0) {
            // PFC pause from the edge switch, or the uplink is faulted
            // down; the NIC parks and is re-kicked on release/recovery.
            self.host_nic[host.index()].busy = false;
            return;
        }
        let Some(pkt) = self.host_nic[host.index()].queue.pop_front() else {
            self.host_nic[host.index()].busy = false;
            return;
        };
        self.host_nic[host.index()].busy = true;
        let up = self.topo.host_uplink(host);
        let ser = SimDuration::serialization(u64::from(pkt.wire_bytes), up.rate_bps);
        self.audit.packet_event_scheduled();
        self.engine
            .schedule_in(ser, Event::TxComplete { node, port: 0, pkt });
    }

    /// Records a host-side or delivery-side trace event. Costs one dead
    /// branch when tracing is off; never perturbs simulation state.
    fn trace_pkt(&mut self, kind: TraceKind, node: u32, pkt: &Packet) {
        if self.tracer.wants(kind) {
            self.tracer.record(TraceEvent {
                t_ns: self.engine.now().as_nanos(),
                packet: pkt.id.0,
                flow: pkt.flow.0,
                node,
                port: 0,
                qlen: 0,
                detours: pkt.detours,
                kind,
            });
        }
    }

    fn deliver(&mut self, host: HostId, pkt: Packet) {
        debug_assert_eq!(pkt.dst, host, "misrouted packet");
        if self.tracer.is_enabled() {
            let dst_node = self.topo.host_node(host).0;
            self.trace_pkt(TraceKind::Deliver, dst_node, &pkt);
        }
        self.counters.packets_delivered += 1;
        self.counters.delivered_hops += u64::from(pkt.hops);
        if pkt.detours > 0 {
            self.counters.delivered_detoured += 1;
        }
        let bucket = usize::from(pkt.detours).min(DETOUR_HIST_BUCKETS - 1);
        self.detour_hist[bucket] += 1;
        if pkt.is_data() {
            match self.flows[pkt.flow.index()].spec.class {
                FlowClass::QueryResponse { .. } => {
                    self.counters.query_pkts_delivered += 1;
                    if pkt.detours > 0 {
                        self.counters.query_pkts_detoured += 1;
                    }
                }
                FlowClass::Background => {
                    self.counters.bg_pkts_delivered += 1;
                    if pkt.detours > 0 {
                        self.counters.bg_pkts_detoured += 1;
                    }
                }
                FlowClass::LongLived => {}
            }
        }
        self.finish_trace(&pkt, host);

        let now = self.engine.now();
        let fi = pkt.flow.index();
        if pkt.is_data() {
            debug_assert_eq!(self.flows[fi].spec.dst, host);
            let ack = self.flows[fi].receiver.on_data(&pkt, now, &mut self.ids);
            let newly_complete =
                self.flows[fi].receiver.is_complete() && !self.flows[fi].done_recorded;
            if newly_complete {
                self.on_flow_complete(fi);
            }
            if let Some(ack) = ack {
                self.host_send(host, ack);
            }
        } else {
            debug_assert_eq!(self.flows[fi].spec.src, host);
            let pkts =
                self.flows[fi]
                    .sender
                    .on_ack_ts(pkt.seq, pkt.ece, pkt.ts_echo, now, &mut self.ids);
            for p in pkts {
                self.host_send(host, p);
            }
            self.sync_timer(fi);
        }
    }

    fn on_flow_complete(&mut self, fi: usize) {
        let now = self.engine.now();
        let flow = &mut self.flows[fi];
        flow.done_recorded = true;
        let fct = now.saturating_since(flow.spec.start);
        match flow.spec.class {
            FlowClass::Background => {
                self.bg_all_fct_ms.push(fct.as_millis_f64());
                if (1_000..=10_000).contains(&flow.spec.size) {
                    self.bg_short_fct_ms.push(fct.as_millis_f64());
                }
            }
            FlowClass::QueryResponse { .. } => {}
            FlowClass::LongLived => {}
        }
        if let Some(qi) = flow.query {
            let q = &mut self.queries[qi];
            q.completed += 1;
            if q.completed == q.total && q.qct.is_none() {
                let qct = now.saturating_since(q.start);
                q.qct = Some(qct);
                self.qct_ms.push(qct.as_millis_f64());
            }
        }
    }

    // ------------------------------------------------------------------
    // Wire and switch side.
    // ------------------------------------------------------------------

    fn on_arrive(&mut self, node: NodeId, pkt: Packet) {
        if let Some(host) = self.topo.as_host(node) {
            self.record_trace_hop(&pkt, node);
            self.deliver(host, pkt);
        } else {
            self.on_switch_arrive(node, pkt);
        }
    }

    fn on_switch_arrive(&mut self, node: NodeId, mut pkt: Packet) {
        let si = self.topo.as_switch(node).expect("switch node").index();
        if self.fault_crashed_switch(si) {
            // A crashed switch blackholes everything that reaches it.
            self.counters.drops_fault += 1;
            self.traces.remove(&pkt.id.0);
            self.trace_pkt(TraceKind::Drop, node.0, &pkt);
            return;
        }
        if !pkt.decrement_ttl() {
            self.counters.drops_ttl += 1;
            self.traces.remove(&pkt.id.0);
            self.trace_pkt(TraceKind::TtlExpire, node.0, &pkt);
            return;
        }
        pkt.hops += 1;
        // DIBS TTL bounds: the TTL only ever decreases from its initial
        // value, and a packet cannot have detoured more times than it
        // has traversed switches.
        debug_assert!(
            pkt.ttl < self.config.tcp.initial_ttl,
            "TTL {} not below initial {}",
            pkt.ttl,
            self.config.tcp.initial_ttl
        );
        debug_assert!(
            u64::from(pkt.detours) <= u64::from(pkt.hops),
            "packet detoured {} times in {} hops",
            pkt.detours,
            pkt.hops
        );
        self.record_trace_hop(&pkt, node);

        if let crate::config::SwitchArch::Cioq {
            ingress_packets, ..
        } = self.config.arch
        {
            // CIOQ: queue at the ingress; the forwarding engine moves
            // packets to egress at speedup x line rate.
            let ingress = usize::from(pkt.last_ingress);
            if self.ingress_q[si][ingress].len() >= ingress_packets {
                self.counters.drops_buffer += 1;
                self.traces.remove(&pkt.id.0);
                self.trace_pkt(TraceKind::Drop, node.0, &pkt);
                return;
            }
            self.ingress_q[si][ingress].push_back(pkt);
            self.start_forwarding(node, si, ingress);
            return;
        }
        self.route_and_enqueue(node, si, pkt);
    }

    /// CIOQ: start the ingress port's forwarding engine if idle.
    fn start_forwarding(&mut self, node: NodeId, si: usize, ingress: usize) {
        if self.ingress_busy[si][ingress] {
            return;
        }
        let Some(pkt) = self.ingress_q[si][ingress].pop_front() else {
            return;
        };
        let crate::config::SwitchArch::Cioq { speedup, .. } = self.config.arch else {
            unreachable!("ingress queues are only fed in CIOQ mode");
        };
        self.ingress_busy[si][ingress] = true;
        // Speedup is a small positive factor; the scaled rate stays far
        // below u64::MAX for any physical link.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rate = (self.topo.port(node, ingress).rate_bps as f64 * speedup) as u64;
        let service = SimDuration::serialization(u64::from(pkt.wire_bytes), rate.max(1));
        self.audit.packet_event_scheduled();
        self.engine.schedule_in(
            service,
            Event::ForwardDone {
                node,
                port: u32::try_from(ingress).expect("port index fits u32"),
                pkt,
            },
        );
    }

    /// FIB lookup + egress admission (the §2 data path), common to both
    /// switch architectures.
    fn route_and_enqueue(&mut self, node: NodeId, si: usize, pkt: Packet) {
        if self.fault_should_drop(&pkt) {
            self.counters.drops_fault += 1;
            self.traces.remove(&pkt.id.0);
            self.trace_pkt(TraceKind::Drop, node.0, &pkt);
            return;
        }
        let desired = match self.config.ecmp {
            // Flow-level selection is pure per (flow, node, dst), so it is
            // served through the memo: one hash per flow per node instead
            // of one per packet.
            crate::config::EcmpMode::FlowLevel => {
                self.fib
                    .select_port_memo(&mut self.ecmp_memo, node, pkt.dst, pkt.flow)
            }
            // Packet-level spraying keys on per-packet entropy and cannot
            // be memoized.
            crate::config::EcmpMode::PacketLevel => {
                self.fib.select_port_per_packet(node, pkt.dst, pkt.id.0)
            }
        };
        let Some(desired) = desired else {
            if self.faults.is_some() {
                // Injected faults partitioned the fabric; the packet
                // blackholes at the switch that has no route left.
                self.counters.drops_fault += 1;
                self.traces.remove(&pkt.id.0);
                self.trace_pkt(TraceKind::Drop, node.0, &pkt);
                return;
            }
            // Unreachable destination: only possible on malformed topologies.
            debug_assert!(false, "no route from {node} to {}", pkt.dst);
            self.counters.drops_buffer += 1;
            return;
        };

        let pid = pkt.id.0;
        let ingress = usize::from(pkt.last_ingress);
        let now_ns = self.engine.now().as_nanos();
        let result = self.switches[si].enqueue_traced(
            pkt,
            desired,
            &mut self.rng_detour,
            now_ns,
            &mut self.tracer,
        );
        if let Some(displaced) = result.displaced {
            self.counters.drops_displaced += 1;
            self.traces.remove(&displaced.id.0);
            self.pfc_on_dequeued(si, usize::from(displaced.last_ingress));
        }
        match result.outcome {
            EnqueueOutcome::Enqueued { port } => {
                self.pfc_on_buffered(node, si, ingress);
                self.kick_switch_port(node, si, port);
            }
            EnqueueOutcome::Detoured { port } => {
                self.counters.detours += 1;
                self.detours_per_switch[si] += 1;
                let layer = layer_code(self.topo.layer(node));
                let si32 = u32::try_from(si).expect("switch index fits u32");
                self.detour_log.record(self.engine.now(), si32, layer);
                if self.config.trace_paths {
                    if let Some(t) = self.traces.get_mut(&pid) {
                        t.pending_detour = true;
                        t.detours += 1;
                    }
                }
                self.pfc_on_buffered(node, si, ingress);
                self.kick_switch_port(node, si, port);
            }
            EnqueueOutcome::Dropped(_) => {
                self.counters.drops_buffer += 1;
                self.traces.remove(&pid);
            }
        }
    }

    fn kick_switch_port(&mut self, node: NodeId, si: usize, port: usize) {
        if self.tx_busy[node.index()][port]
            || self.paused[node.index()][port]
            || self.fault_link_down(node, port)
        {
            return;
        }
        let now_ns = self.engine.now().as_nanos();
        loop {
            let Some(pkt) = self.switches[si].dequeue_traced(port, now_ns, &mut self.tracer) else {
                return;
            };
            if self.fault_should_corrupt(&pkt) {
                // The frame is corrupted on the wire; free its PFC slot
                // and try the next packet in the queue.
                self.pfc_on_dequeued(si, usize::from(pkt.last_ingress));
                self.counters.drops_fault += 1;
                self.traces.remove(&pkt.id.0);
                self.trace_pkt(TraceKind::Drop, node.0, &pkt);
                continue;
            }
            self.tx_busy[node.index()][port] = true;
            self.pfc_on_dequeued(si, usize::from(pkt.last_ingress));
            let rate = self.topo.port(node, port).rate_bps;
            let ser = SimDuration::serialization(u64::from(pkt.wire_bytes), rate);
            self.audit.packet_event_scheduled();
            self.engine.schedule_in(
                ser,
                Event::TxComplete {
                    node,
                    port: u32::try_from(port).expect("port index fits u32"),
                    pkt,
                },
            );
            return;
        }
    }

    /// PFC bookkeeping: a packet that arrived via `ingress` was buffered.
    /// Pauses the link partner on that ingress once its count hits XOFF.
    fn pfc_on_buffered(&mut self, node: NodeId, si: usize, ingress: usize) {
        let Some(pfc) = self.config.pfc else { return };
        self.ingress_count[si][ingress] += 1;
        if self.pause_asserted[si][ingress] || (self.ingress_count[si][ingress] as usize) < pfc.xoff
        {
            return;
        }
        self.pause_asserted[si][ingress] = true;
        self.pause_events += 1;
        self.send_pause_frame(node, ingress, pfc.control_delay, true);
    }

    /// PFC bookkeeping on dequeue: releases the ingress partner at XON.
    fn pfc_on_dequeued(&mut self, si: usize, ingress: usize) {
        let Some(pfc) = self.config.pfc else { return };
        self.ingress_count[si][ingress] = self.ingress_count[si][ingress].saturating_sub(1);
        if !self.pause_asserted[si][ingress] || (self.ingress_count[si][ingress] as usize) > pfc.xon
        {
            return;
        }
        self.pause_asserted[si][ingress] = false;
        let node = self.switches[si].node();
        self.send_pause_frame(node, ingress, pfc.control_delay, false);
    }

    fn send_pause_frame(&mut self, node: NodeId, port: usize, delay: SimDuration, paused: bool) {
        let p = self.topo.port(node, port);
        self.engine.schedule_in(
            delay,
            Event::PauseSet {
                node: p.peer,
                port: u32::try_from(p.peer_port).expect("port index fits u32"),
                paused,
            },
        );
    }

    fn on_tx_complete(&mut self, node: NodeId, port: usize, mut pkt: Packet) {
        if self.fault_link_down(node, port)
            || self
                .topo
                .as_switch(node)
                .is_some_and(|s| self.fault_crashed_switch(s.index()))
        {
            // The link went down (or the switch crashed) while the frame
            // was serializing: the frame is cut on the wire. Release the
            // port without restarting — recovery re-kicks it.
            self.counters.drops_fault += 1;
            self.traces.remove(&pkt.id.0);
            self.trace_pkt(TraceKind::Drop, node.0, &pkt);
            match self.topo.as_host(node) {
                // start_host_tx parks again while the uplink stays down.
                Some(host) => self.start_host_tx(host),
                None => self.tx_busy[node.index()][port] = false,
            }
            return;
        }
        let p = self.topo.port(node, port);
        let peer = p.peer;
        let delay = p.delay;
        // Stamp the ingress port the packet will arrive on (PFC accounting).
        pkt.last_ingress = u16::try_from(p.peer_port).expect("port index fits u16");
        self.port_tx_bytes[self.port_offsets[node.index()] + port] += u64::from(pkt.wire_bytes);
        self.audit.packet_event_scheduled();
        self.engine
            .schedule_in(delay, Event::Arrive { node: peer, pkt });

        // Start the next transmission on this port.
        match self.topo.as_host(node) {
            Some(host) => {
                self.start_host_tx(host);
            }
            None => {
                self.tx_busy[node.index()][port] = false;
                let si = self.topo.as_switch(node).expect("switch").index();
                self.kick_switch_port(node, si, port);
            }
        }
    }

    // ------------------------------------------------------------------
    // Tracing (Fig 1).
    // ------------------------------------------------------------------

    fn record_trace_hop(&mut self, pkt: &Packet, node: NodeId) {
        if !self.config.trace_paths {
            return;
        }
        if let Entry::Occupied(mut e) = self.traces.entry(pkt.id.0) {
            let t = e.get_mut();
            let was_detour = std::mem::take(&mut t.pending_detour);
            t.nodes.push(node);
            t.detour.push(was_detour);
        }
    }

    fn finish_trace(&mut self, pkt: &Packet, _host: HostId) {
        if !self.config.trace_paths {
            return;
        }
        if let Some(t) = self.traces.remove(&pkt.id.0) {
            if t.detours > 0 && self.finished_paths.len() < MAX_TRACED_PATHS {
                self.finished_paths.push(PacketPath {
                    id: PacketId(pkt.id.0),
                    nodes: t.nodes,
                    detour: t.detour,
                    detours: t.detours,
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Sampling (Figs 2, 4, 5).
    // ------------------------------------------------------------------

    fn on_sample(&mut self) {
        let now = self.engine.now();
        let interval = now.saturating_since(self.last_sample);
        self.last_sample = now;
        let secs = interval.as_secs_f64();
        if secs <= 0.0 {
            return;
        }

        // Per-directed-edge utilization.
        let mut hot_links = 0usize;
        let mut total_links = 0usize;
        let mut hot_switch = vec![false; self.topo.num_switches()];
        for (idx, (pr, port)) in self.topo.directed_edges().enumerate() {
            let util = (self.port_tx_bytes[idx] * 8) as f64 / (port.rate_bps as f64 * secs);
            total_links += 1;
            if util >= self.config.hot_link_threshold {
                hot_links += 1;
                if let Some(s) = self.topo.as_switch(pr.node) {
                    hot_switch[s.index()] = true;
                }
                // The receiving end of a hot link is congestion-adjacent too.
                if let Some(s) = self.topo.as_switch(port.peer) {
                    hot_switch[s.index()] = true;
                }
            }
        }
        for b in &mut self.port_tx_bytes {
            *b = 0;
        }
        self.hot_samples.push(hot_links as f64 / total_links as f64);

        // Neighbor free-buffer statistic (Fig 5), only when something is hot.
        let mut sum1 = 0.0;
        let mut n1 = 0usize;
        let mut sum2 = 0.0;
        let mut n2 = 0usize;
        for (si, &hot) in hot_switch.iter().enumerate() {
            if !hot {
                continue;
            }
            for &m in &self.neighbors1[si] {
                sum1 += self.switches[m].free_fraction();
                n1 += 1;
            }
            for &m in &self.neighbors2[si] {
                sum2 += self.switches[m].free_fraction();
                n2 += 1;
            }
        }
        if n1 > 0 {
            self.neighbor_free_1hop.push(sum1 / n1 as f64);
        }
        if n2 > 0 {
            self.neighbor_free_2hop.push(sum2 / n2 as f64);
        }

        if self.config.occupancy_snapshots {
            let per_switch: Vec<Vec<usize>> = self
                .switches
                .iter()
                .map(|sw| (0..sw.num_ports()).map(|p| sw.queue_len(p)).collect())
                .collect();
            self.occupancy.push(OccupancySnapshot {
                time_s: now.as_secs_f64(),
                per_switch,
            });
        }

        if let Some(interval) = self.config.sample_interval {
            if now + interval <= self.config.horizon {
                self.engine.schedule_in(interval, Event::Sample);
            }
        }
    }

    // ------------------------------------------------------------------
    // Finalization.
    // ------------------------------------------------------------------

    fn finalize(mut self) -> RunResults {
        // Final conservation audit: at the horizon every injected packet
        // is delivered, dropped, or still parked in a queue/event.
        self.conservation_check();
        let finished_at = self.engine.now();
        let queue_hwm = u64::try_from(self.engine.high_watermark()).unwrap_or(u64::MAX);
        // The same transient buckets the audit snapshots: everything sent
        // but neither delivered nor dropped is parked in exactly one of
        // them when the horizon cuts the run.
        let packets_in_flight = self
            .host_nic
            .iter()
            .map(|n| n.queue.len() as u64)
            .sum::<u64>()
            + self
                .ingress_q
                .iter()
                .flat_map(|qs| qs.iter().map(|q| q.len() as u64))
                .sum::<u64>()
            + self
                .switches
                .iter()
                .map(|s| s.total_buffered() as u64)
                .sum::<u64>()
            + self.audit.in_events();

        // Fold in switch and sender counters.
        for sw in &self.switches {
            self.counters.ecn_marks += sw.counters().marked;
        }
        for f in &self.flows {
            self.counters.rto_timeouts += f.sender.counters().timeouts;
            self.counters.fast_retransmits += f.sender.counters().fast_retransmits;
            self.counters.spurious_timeouts += f.sender.counters().spurious_timeouts;
        }

        let (measure_from, baseline_bytes) = match &self.warmup_snapshot {
            Some((t, bytes)) => (*t, Some(bytes)),
            None => (SimTime::ZERO, None),
        };
        let elapsed = finished_at
            .saturating_since(measure_from)
            .as_secs_f64()
            .max(1e-9);
        let mut long_lived = Vec::new();
        let mut flow_outcomes = Vec::with_capacity(self.flows.len());
        for (fi, f) in self.flows.iter().enumerate() {
            let fct = f
                .receiver
                .completed_at()
                .map(|t| t.saturating_since(f.spec.start));
            if f.spec.class == FlowClass::LongLived {
                let base = baseline_bytes.map_or(0, |b| b[fi]);
                long_lived.push((f.receiver.rcv_nxt() - base) as f64 * 8.0 / elapsed);
            }
            flow_outcomes.push(FlowOutcome {
                class: f.spec.class,
                src: f.spec.src,
                dst: f.spec.dst,
                size: f.spec.size,
                start: f.spec.start,
                fct,
                bytes_delivered: f.receiver.rcv_nxt(),
                timeouts: f.sender.counters().timeouts,
            });
        }
        let query_outcomes: Vec<QueryOutcome> = self
            .queries
            .iter()
            .map(|q| QueryOutcome {
                start: q.start,
                completed_responses: q.completed,
                total_responses: q.total,
                qct: q.qct,
            })
            .collect();

        RunResults {
            qct_ms: self.qct_ms,
            bg_short_fct_ms: self.bg_short_fct_ms,
            bg_all_fct_ms: self.bg_all_fct_ms,
            flows: flow_outcomes,
            queries: query_outcomes,
            counters: self.counters,
            detours_per_switch: self.detours_per_switch,
            detour_log: self.detour_log,
            detour_histogram: self.detour_hist,
            hot_fraction_samples: self.hot_samples,
            neighbor_free_1hop: self.neighbor_free_1hop,
            neighbor_free_2hop: self.neighbor_free_2hop,
            occupancy: self.occupancy,
            long_lived_throughput_bps: long_lived,
            paths: self.finished_paths,
            pfc_pause_events: self.pause_events,
            packets_in_flight,
            events_dispatched: self.engine.dispatched(),
            finished_at,
            trace: self.tracer.into_report(queue_hwm),
        }
    }
}

fn layer_code(layer: SwitchLayer) -> u8 {
    match layer {
        SwitchLayer::Edge => 0,
        SwitchLayer::Aggregation => 1,
        SwitchLayer::Core => 2,
        SwitchLayer::Other => 3,
    }
}
