//! Per-run measurement outputs.

use dibs_engine::time::{SimDuration, SimTime};
use dibs_net::ids::{HostId, PacketId};
use dibs_stats::{DetourLog, NetCounters, OccupancySnapshot, Samples};
use dibs_workload::FlowClass;

/// Outcome of one flow.
#[derive(Debug, Clone)]
pub struct FlowOutcome {
    /// Role of the flow.
    pub class: FlowClass,
    /// Sender.
    pub src: HostId,
    /// Receiver.
    pub dst: HostId,
    /// Bytes requested.
    pub size: u64,
    /// Start time.
    pub start: SimTime,
    /// Completion latency (receiver got every byte), if it completed.
    pub fct: Option<SimDuration>,
    /// Bytes delivered in order by the horizon.
    pub bytes_delivered: u64,
    /// Retransmission timeouts taken by the sender.
    pub timeouts: u64,
}

/// Outcome of one partition-aggregate query.
#[derive(Debug, Clone, Copy)]
pub struct QueryOutcome {
    /// Query issue time.
    pub start: SimTime,
    /// Responders that completed by the horizon.
    pub completed_responses: usize,
    /// Total responders.
    pub total_responses: usize,
    /// Query completion latency (all responses in), if it completed.
    pub qct: Option<SimDuration>,
}

/// A traced packet path (Fig 1): the sequence of nodes the packet visited,
/// with detour hops flagged.
#[derive(Debug, Clone)]
pub struct PacketPath {
    /// The packet.
    pub id: PacketId,
    /// Nodes visited, in order (switches and final host).
    pub nodes: Vec<dibs_net::NodeId>,
    /// `detour[i]` — whether the hop *into* `nodes[i]` was a detour.
    pub detour: Vec<bool>,
    /// Total detours experienced.
    pub detours: u16,
}

/// Everything measured in one run.
#[derive(Debug)]
pub struct RunResults {
    /// Query completion times, milliseconds (the paper's headline metric).
    pub qct_ms: Samples,
    /// FCT of *short* (1–10 KB) background flows, milliseconds (§5.3's
    /// collateral-damage metric).
    pub bg_short_fct_ms: Samples,
    /// FCT of all completed background flows, milliseconds.
    pub bg_all_fct_ms: Samples,
    /// Per-flow outcomes.
    pub flows: Vec<FlowOutcome>,
    /// Per-query outcomes.
    pub queries: Vec<QueryOutcome>,
    /// Aggregate network counters.
    pub counters: NetCounters,
    /// Detours per switch (indexed by `SwitchId`).
    pub detours_per_switch: Vec<u64>,
    /// Capped detour event log (Fig 2a).
    pub detour_log: DetourLog,
    /// Histogram of per-packet detour counts at delivery; index = number of
    /// detours (saturating at the last bucket).
    pub detour_histogram: Vec<u64>,
    /// Fraction of links hot (≥ threshold) at each sample tick (Fig 4).
    pub hot_fraction_samples: Vec<f64>,
    /// Mean free buffer fraction among 1-hop neighbors of hot switches,
    /// one value per sample tick that had a hot switch (Fig 5).
    pub neighbor_free_1hop: Vec<f64>,
    /// Same for 2-hop neighborhoods.
    pub neighbor_free_2hop: Vec<f64>,
    /// Buffer occupancy snapshots (Fig 2b), when enabled.
    pub occupancy: Vec<OccupancySnapshot>,
    /// Goodput of each long-lived flow, bits/second (§5.6 fairness).
    pub long_lived_throughput_bps: Vec<f64>,
    /// Traced packet paths (Fig 1), when enabled.
    pub paths: Vec<PacketPath>,
    /// PFC PAUSE assertions observed (zero unless flow control is on).
    pub pfc_pause_events: u64,
    /// Events dispatched by the engine.
    pub events_dispatched: u64,
    /// The instant the run stopped.
    pub finished_at: SimTime,
}

impl RunResults {
    /// 99th-percentile QCT in milliseconds.
    pub fn qct_p99_ms(&mut self) -> Option<f64> {
        self.qct_ms.percentile(0.99)
    }

    /// 99th-percentile short-background-flow FCT in milliseconds.
    pub fn bg_fct_p99_ms(&mut self) -> Option<f64> {
        self.bg_short_fct_ms.percentile(0.99)
    }

    /// Fraction of queries that completed.
    pub fn query_completion_rate(&self) -> f64 {
        if self.queries.is_empty() {
            return 1.0;
        }
        let done = self.queries.iter().filter(|q| q.qct.is_some()).count();
        done as f64 / self.queries.len() as f64
    }

    /// Fraction of delivered packets that were detoured `k`+ times.
    pub fn detoured_at_least(&self, k: usize) -> f64 {
        let total: u64 = self.detour_histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let at_least: u64 = self.detour_histogram.iter().skip(k).sum();
        at_least as f64 / total as f64
    }

    /// Jain's fairness index over the long-lived flow throughputs.
    pub fn jain(&self) -> Option<f64> {
        dibs_stats::jain_index(&self.long_lived_throughput_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibs_stats::DetourLog;

    fn empty_results() -> RunResults {
        RunResults {
            qct_ms: Samples::new(),
            bg_short_fct_ms: Samples::new(),
            bg_all_fct_ms: Samples::new(),
            flows: Vec::new(),
            queries: Vec::new(),
            counters: NetCounters::default(),
            detours_per_switch: Vec::new(),
            detour_log: DetourLog::new(0),
            detour_histogram: vec![0; 65],
            hot_fraction_samples: Vec::new(),
            neighbor_free_1hop: Vec::new(),
            neighbor_free_2hop: Vec::new(),
            occupancy: Vec::new(),
            long_lived_throughput_bps: Vec::new(),
            paths: Vec::new(),
            pfc_pause_events: 0,
            events_dispatched: 0,
            finished_at: SimTime::ZERO,
        }
    }

    #[test]
    fn empty_results_are_well_behaved() {
        let mut r = empty_results();
        assert_eq!(r.qct_p99_ms(), None);
        assert_eq!(r.bg_fct_p99_ms(), None);
        assert_eq!(r.query_completion_rate(), 1.0);
        assert_eq!(r.detoured_at_least(1), 0.0);
        assert_eq!(r.jain(), None);
    }

    #[test]
    fn detoured_at_least_sums_tail() {
        let mut r = empty_results();
        r.detour_histogram[0] = 90;
        r.detour_histogram[1] = 5;
        r.detour_histogram[40] = 4;
        r.detour_histogram[64] = 1;
        assert!((r.detoured_at_least(0) - 1.0).abs() < 1e-12);
        assert!((r.detoured_at_least(1) - 0.10).abs() < 1e-12);
        assert!((r.detoured_at_least(40) - 0.05).abs() < 1e-12);
        assert!((r.detoured_at_least(65) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn completion_rate_counts_finished_queries() {
        let mut r = empty_results();
        r.queries = vec![
            QueryOutcome {
                start: SimTime::ZERO,
                completed_responses: 40,
                total_responses: 40,
                qct: Some(SimDuration::from_millis(20)),
            },
            QueryOutcome {
                start: SimTime::ZERO,
                completed_responses: 10,
                total_responses: 40,
                qct: None,
            },
        ];
        assert!((r.query_completion_rate() - 0.5).abs() < 1e-12);
    }
}
