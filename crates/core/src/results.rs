//! Per-run measurement outputs.

use dibs_engine::time::{SimDuration, SimTime};
use dibs_net::ids::{HostId, PacketId};
use dibs_stats::{DetourLog, NetCounters, OccupancySnapshot, Samples};
use dibs_workload::FlowClass;

/// Outcome of one flow.
#[derive(Debug, Clone)]
pub struct FlowOutcome {
    /// Role of the flow.
    pub class: FlowClass,
    /// Sender.
    pub src: HostId,
    /// Receiver.
    pub dst: HostId,
    /// Bytes requested.
    pub size: u64,
    /// Start time.
    pub start: SimTime,
    /// Completion latency (receiver got every byte), if it completed.
    pub fct: Option<SimDuration>,
    /// Bytes delivered in order by the horizon.
    pub bytes_delivered: u64,
    /// Retransmission timeouts taken by the sender.
    pub timeouts: u64,
}

/// Outcome of one partition-aggregate query.
#[derive(Debug, Clone, Copy)]
pub struct QueryOutcome {
    /// Query issue time.
    pub start: SimTime,
    /// Responders that completed by the horizon.
    pub completed_responses: usize,
    /// Total responders.
    pub total_responses: usize,
    /// Query completion latency (all responses in), if it completed.
    pub qct: Option<SimDuration>,
}

/// A traced packet path (Fig 1): the sequence of nodes the packet visited,
/// with detour hops flagged.
#[derive(Debug, Clone)]
pub struct PacketPath {
    /// The packet.
    pub id: PacketId,
    /// Nodes visited, in order (switches and final host).
    pub nodes: Vec<dibs_net::NodeId>,
    /// `detour[i]` — whether the hop *into* `nodes[i]` was a detour.
    pub detour: Vec<bool>,
    /// Total detours experienced.
    pub detours: u16,
}

/// Everything measured in one run.
#[derive(Debug)]
pub struct RunResults {
    /// Query completion times, milliseconds (the paper's headline metric).
    pub qct_ms: Samples,
    /// FCT of *short* (1–10 KB) background flows, milliseconds (§5.3's
    /// collateral-damage metric).
    pub bg_short_fct_ms: Samples,
    /// FCT of all completed background flows, milliseconds.
    pub bg_all_fct_ms: Samples,
    /// Per-flow outcomes.
    pub flows: Vec<FlowOutcome>,
    /// Per-query outcomes.
    pub queries: Vec<QueryOutcome>,
    /// Aggregate network counters.
    pub counters: NetCounters,
    /// Detours per switch (indexed by `SwitchId`).
    pub detours_per_switch: Vec<u64>,
    /// Capped detour event log (Fig 2a).
    pub detour_log: DetourLog,
    /// Histogram of per-packet detour counts at delivery; index = number of
    /// detours (saturating at the last bucket).
    pub detour_histogram: Vec<u64>,
    /// Fraction of links hot (≥ threshold) at each sample tick (Fig 4).
    pub hot_fraction_samples: Vec<f64>,
    /// Mean free buffer fraction among 1-hop neighbors of hot switches,
    /// one value per sample tick that had a hot switch (Fig 5).
    pub neighbor_free_1hop: Vec<f64>,
    /// Same for 2-hop neighborhoods.
    pub neighbor_free_2hop: Vec<f64>,
    /// Buffer occupancy snapshots (Fig 2b), when enabled.
    pub occupancy: Vec<OccupancySnapshot>,
    /// Goodput of each long-lived flow, bits/second (§5.6 fairness).
    pub long_lived_throughput_bps: Vec<f64>,
    /// Traced packet paths (Fig 1), when enabled.
    pub paths: Vec<PacketPath>,
    /// PFC PAUSE assertions observed (zero unless flow control is on).
    pub pfc_pause_events: u64,
    /// Packets still inside the fabric (NIC queues, ingress pipelines,
    /// switch buffers, or scheduled events) when the run stopped.
    ///
    /// Together with the counters this closes the conservation sum that
    /// the soak harness asserts externally:
    /// `packets_sent == packets_delivered + total_drops() + packets_in_flight`.
    pub packets_in_flight: u64,
    /// Events dispatched by the engine.
    pub events_dispatched: u64,
    /// The instant the run stopped.
    pub finished_at: SimTime,
    /// Event trace captured during the run, when tracing was enabled.
    ///
    /// Observational only: NEVER folded into [`RunDigest::of`], so a
    /// traced run fingerprints identically to an untraced one.
    pub trace: Option<dibs_trace::TraceReport>,
}

impl RunResults {
    /// 99th-percentile QCT in milliseconds.
    pub fn qct_p99_ms(&mut self) -> Option<f64> {
        self.qct_ms.percentile(0.99)
    }

    /// 99th-percentile short-background-flow FCT in milliseconds.
    pub fn bg_fct_p99_ms(&mut self) -> Option<f64> {
        self.bg_short_fct_ms.percentile(0.99)
    }

    /// Fraction of queries that completed.
    pub fn query_completion_rate(&self) -> f64 {
        if self.queries.is_empty() {
            return 1.0;
        }
        let done = self.queries.iter().filter(|q| q.qct.is_some()).count();
        done as f64 / self.queries.len() as f64
    }

    /// Fraction of delivered packets that were detoured `k`+ times.
    pub fn detoured_at_least(&self, k: usize) -> f64 {
        let total: u64 = self.detour_histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let at_least: u64 = self.detour_histogram.iter().skip(k).sum();
        at_least as f64 / total as f64
    }

    /// Jain's fairness index over the long-lived flow throughputs.
    pub fn jain(&self) -> Option<f64> {
        dibs_stats::jain_index(&self.long_lived_throughput_bps)
    }
}

/// A canonical, line-oriented transcript of everything observable in a
/// [`RunResults`], used for byte-identical regression comparison.
///
/// Two runs are "the same" for determinism purposes iff their digests match
/// byte-for-byte: aggregate counters, per-flow delivery/FCT/timeouts,
/// per-query completion, the detour histogram, per-switch detour counts,
/// and the engine's event count all participate. Anything scheduling-
/// sensitive (wall-clock time, thread IDs) is deliberately absent.
///
/// The digest is plain text so a mismatch diffs readably; [`fingerprint`]
/// (a 64-bit hash of the text) is what golden tests pin.
///
/// [`fingerprint`]: RunDigest::fingerprint
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunDigest {
    text: String,
}

impl RunDigest {
    /// Build the digest of one run's results.
    pub fn of(results: &RunResults) -> Self {
        use std::fmt::Write as _;
        let mut text = String::new();
        let w = &mut text;
        let _ = writeln!(w, "counters {:?}", results.counters);
        let _ = writeln!(
            w,
            "events {} finished_ns {}",
            results.events_dispatched,
            results.finished_at.as_nanos()
        );
        for (i, f) in results.flows.iter().enumerate() {
            let _ = writeln!(
                w,
                "flow {i} {:?}->{:?} size {} delivered {} fct_ns {:?} timeouts {}",
                f.src,
                f.dst,
                f.size,
                f.bytes_delivered,
                f.fct.map(|d| d.as_nanos()),
                f.timeouts
            );
        }
        for (i, q) in results.queries.iter().enumerate() {
            let _ = writeln!(
                w,
                "query {i} responses {}/{} qct_ns {:?}",
                q.completed_responses,
                q.total_responses,
                q.qct.map(|d| d.as_nanos())
            );
        }
        let _ = writeln!(w, "detour_hist {:?}", results.detour_histogram);
        let _ = writeln!(w, "detours_per_switch {:?}", results.detours_per_switch);
        let _ = writeln!(w, "pfc_pauses {}", results.pfc_pause_events);
        let _ = writeln!(w, "in_flight {}", results.packets_in_flight);
        RunDigest { text }
    }

    /// The digest transcript (one fact per line, `\n`-terminated).
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// A 64-bit hash of the transcript, suitable for pinning in golden
    /// tests. Uses [`dibs_engine::rng::hash_bytes`], which is stable across
    /// platforms and releases.
    pub fn fingerprint(&self) -> u64 {
        dibs_engine::rng::hash_bytes(self.text.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibs_stats::DetourLog;

    fn empty_results() -> RunResults {
        RunResults {
            qct_ms: Samples::new(),
            bg_short_fct_ms: Samples::new(),
            bg_all_fct_ms: Samples::new(),
            flows: Vec::new(),
            queries: Vec::new(),
            counters: NetCounters::default(),
            detours_per_switch: Vec::new(),
            detour_log: DetourLog::new(0),
            detour_histogram: vec![0; 65],
            hot_fraction_samples: Vec::new(),
            neighbor_free_1hop: Vec::new(),
            neighbor_free_2hop: Vec::new(),
            occupancy: Vec::new(),
            long_lived_throughput_bps: Vec::new(),
            paths: Vec::new(),
            pfc_pause_events: 0,
            packets_in_flight: 0,
            events_dispatched: 0,
            finished_at: SimTime::ZERO,
            trace: None,
        }
    }

    #[test]
    fn digest_reflects_observable_results_only() {
        let a = RunDigest::of(&empty_results());
        let b = RunDigest::of(&empty_results());
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());

        let mut changed = empty_results();
        changed.detour_histogram[3] = 1;
        let c = RunDigest::of(&changed);
        assert_ne!(a, c);
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert!(c.as_str().contains("detour_hist"));
    }

    #[test]
    fn empty_results_are_well_behaved() {
        let mut r = empty_results();
        assert_eq!(r.qct_p99_ms(), None);
        assert_eq!(r.bg_fct_p99_ms(), None);
        assert_eq!(r.query_completion_rate(), 1.0);
        assert_eq!(r.detoured_at_least(1), 0.0);
        assert_eq!(r.jain(), None);
    }

    #[test]
    fn detoured_at_least_sums_tail() {
        let mut r = empty_results();
        r.detour_histogram[0] = 90;
        r.detour_histogram[1] = 5;
        r.detour_histogram[40] = 4;
        r.detour_histogram[64] = 1;
        assert!((r.detoured_at_least(0) - 1.0).abs() < 1e-12);
        assert!((r.detoured_at_least(1) - 0.10).abs() < 1e-12);
        assert!((r.detoured_at_least(40) - 0.05).abs() < 1e-12);
        assert!((r.detoured_at_least(65) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn completion_rate_counts_finished_queries() {
        let mut r = empty_results();
        r.queries = vec![
            QueryOutcome {
                start: SimTime::ZERO,
                completed_responses: 40,
                total_responses: 40,
                qct: Some(SimDuration::from_millis(20)),
            },
            QueryOutcome {
                start: SimTime::ZERO,
                completed_responses: 10,
                total_responses: 40,
                qct: None,
            },
        ];
        assert!((r.query_completion_rate() - 0.5).abs() < 1e-12);
    }
}
