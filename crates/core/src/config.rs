//! Simulation configuration: Tables 1 and 2 of the paper as data.

use dibs_engine::time::SimDuration;
use dibs_switch::{DibsPolicy, SwitchConfig};
use dibs_transport::TcpConfig;

/// Hop-by-hop Ethernet flow control (§6 related work).
///
/// Per-ingress-port PAUSE accounting, as in IEEE 802.3x/802.1Qbb: each
/// switch tracks how many of its buffered packets arrived through each
/// ingress port; when a port's count reaches `xoff` the switch pauses that
/// link partner (after `control_delay`), releasing it at `xon`. This is the
/// mechanism the paper contrasts DIBS against (§6) — lossless, but with
/// head-of-line blocking, congestion spreading, and thresholds that need
/// tuning (unlike parameterless random detouring).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PfcConfig {
    /// Buffered packets from one ingress port at which that port's link
    /// partner is paused.
    pub xoff: usize,
    /// Per-ingress occupancy at which the partner is released.
    pub xon: usize,
    /// Pause-frame propagation + processing delay.
    pub control_delay: SimDuration,
}

impl PfcConfig {
    /// Defaults sized for the paper's 100-packet-per-port buffers: with up
    /// to ~7 switch-facing ingresses able to feed one output queue, the
    /// per-ingress XOFF must satisfy `ingresses x xoff + headroom < 100`
    /// (the standard PFC headroom calculation the paper calls "difficult
    /// to tune", §6).
    pub fn default_for_paper_buffers() -> Self {
        PfcConfig {
            xoff: 12,
            xon: 6,
            control_delay: SimDuration::from_micros(1),
        }
    }
}

/// Switch internal architecture (§4 "Switch buffer management").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SwitchArch {
    /// Pure output queueing: arriving packets go straight to their egress
    /// queue (the paper's primary description and our default).
    OutputQueued,
    /// Combined input/output queueing: packets wait in a per-input-port
    /// ingress queue for the forwarding engine, which moves them to the
    /// egress queues at `speedup x` line rate. DIBS runs at the forwarding
    /// engine exactly as §4 describes: "if the desired output queue is
    /// full, the forwarding engine can detour the packet to another output
    /// port".
    Cioq {
        /// Forwarding-engine speedup relative to line rate (2.0 is common).
        speedup: f64,
        /// Per-input-port ingress queue capacity, in packets.
        ingress_packets: usize,
    },
}

/// How switches pick among equal-cost next hops (§3, §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcmpMode {
    /// Flow-level ECMP (the paper's default): all packets of a flow take
    /// the same shortest path.
    FlowLevel,
    /// Packet-level spraying (§6 related work): per-packet random choice.
    /// Improves fabric balance but reorders packets — and, per the paper,
    /// cannot help when the bottleneck is the destination's own link.
    PacketLevel,
}

/// Everything the simulator needs besides the topology and the traffic.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Switch configuration (buffers, ECN, DIBS policy, discipline).
    pub switch: SwitchConfig,
    /// Host transport configuration.
    pub tcp: TcpConfig,
    /// Root random seed; identical seeds give identical runs.
    pub seed: u64,
    /// Hard stop: no event past this instant is processed. Traffic
    /// generators are given their own (earlier) windows so in-flight work
    /// can drain before the horizon.
    pub horizon: dibs_engine::time::SimTime,
    /// Interval for periodic link-utilization / buffer sampling
    /// (Figs 4, 5). `None` disables sampling.
    pub sample_interval: Option<SimDuration>,
    /// Absolute utilization threshold for a link to count as hot (Fig 4
    /// uses 0.9).
    pub hot_link_threshold: f64,
    /// Capture per-packet path traces (Fig 1). Memory-heavy; only for
    /// short diagnostic runs.
    pub trace_paths: bool,
    /// Cap on captured detour events (Fig 2a scatter).
    pub detour_log_cap: usize,
    /// Take full buffer-occupancy snapshots at each sample tick (Fig 2b).
    pub occupancy_snapshots: bool,
    /// Long-lived-flow throughput is measured from this instant to the
    /// horizon, excluding the synchronized-start transient (§5.6).
    /// `None` measures from time zero.
    pub throughput_warmup: Option<dibs_engine::time::SimTime>,
    /// Equal-cost multipath mode.
    pub ecmp: EcmpMode,
    /// Switch internal architecture.
    pub arch: SwitchArch,
    /// Hop-by-hop Ethernet flow control (`None` = off, the default; the
    /// paper's §6 baseline comparison).
    pub pfc: Option<PfcConfig>,
    /// Host NIC transmit queue limit, in packets (a qdisc-like bound;
    /// overflowing packets drop and are recovered by retransmission).
    /// Hosts never congest in the paper's workloads — this exists to bound
    /// memory under pathological retransmission storms.
    pub host_nic_cap: usize,
}

impl SimConfig {
    /// Paper defaults (Table 1/2) with DIBS **off**: the DCTCP baseline.
    pub fn dctcp_baseline() -> Self {
        SimConfig {
            switch: SwitchConfig::dctcp_baseline(),
            tcp: TcpConfig::dctcp_baseline(),
            seed: 1,
            horizon: dibs_engine::time::SimTime::from_secs(10),
            sample_interval: None,
            hot_link_threshold: 0.9,
            trace_paths: false,
            detour_log_cap: 100_000,
            occupancy_snapshots: false,
            throughput_warmup: None,
            ecmp: EcmpMode::FlowLevel,
            arch: SwitchArch::OutputQueued,
            pfc: None,
            host_nic_cap: 10_000,
        }
    }

    /// Paper defaults with DIBS **on** (random detouring, fast retransmit
    /// disabled at the hosts per §4).
    pub fn dctcp_dibs() -> Self {
        SimConfig {
            switch: SwitchConfig::dctcp_dibs(),
            tcp: TcpConfig::dctcp_dibs(),
            ..Self::dctcp_baseline()
        }
    }

    /// The §5.8 pFabric configuration: 24-packet priority queues, fixed
    /// 350 µs RTO, remaining-size priorities.
    pub fn pfabric() -> Self {
        SimConfig {
            switch: SwitchConfig::pfabric(),
            tcp: TcpConfig::pfabric(),
            ..Self::dctcp_baseline()
        }
    }

    /// Returns the config with a different DIBS policy (ablations).
    pub fn with_policy(mut self, policy: DibsPolicy) -> Self {
        self.switch.dibs = policy;
        self
    }

    /// Returns the config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dibs_engine::time::SimDuration;
    use dibs_switch::BufferConfig;
    use dibs_transport::FastRetransmit;

    /// Table 1: the default data-center settings.
    #[test]
    fn table1_defaults() {
        let c = SimConfig::dctcp_dibs();
        // Switch buffer: 100 packets per port.
        assert_eq!(
            c.switch.buffer,
            BufferConfig::StaticPerPort { packets: 100 }
        );
        // Marking threshold 20 packets.
        assert_eq!(c.switch.ecn_threshold, Some(20));
        // minRTO 10 ms.
        assert_eq!(c.tcp.min_rto, SimDuration::from_millis(10));
        // Initial congestion window 10.
        assert_eq!(c.tcp.init_cwnd, 10);
        // Fast retransmit disabled under DIBS.
        assert_eq!(c.tcp.fast_retransmit, FastRetransmit::Disabled);
        // MTU 1500 = MSS 1460 + 40 header bytes.
        assert_eq!(c.tcp.mss + dibs_net::packet::HEADER_BYTES, 1500);
    }

    #[test]
    fn baseline_differs_only_in_dibs_and_fast_rtx() {
        let base = SimConfig::dctcp_baseline();
        let dibs = SimConfig::dctcp_dibs();
        assert_eq!(base.switch.buffer, dibs.switch.buffer);
        assert_eq!(base.switch.ecn_threshold, dibs.switch.ecn_threshold);
        assert!(!base.switch.dibs.is_enabled());
        assert!(dibs.switch.dibs.is_enabled());
        assert_ne!(base.tcp.fast_retransmit, dibs.tcp.fast_retransmit);
    }

    #[test]
    fn builders_compose() {
        let c = SimConfig::dctcp_dibs()
            .with_policy(DibsPolicy::LoadAware)
            .with_seed(99);
        assert_eq!(c.switch.dibs, DibsPolicy::LoadAware);
        assert_eq!(c.seed, 99);
    }
}
