#![warn(missing_docs)]

//! # DIBS: detour-induced buffer sharing — simulator core
//!
//! A from-scratch reproduction of *DIBS: Just-in-time Congestion
//! Mitigation for Data Centers* (EuroSys 2014). When a switch's output
//! buffer toward a packet's destination is full, instead of dropping the
//! packet the switch *detours* it out a random other switch-facing port,
//! temporarily borrowing buffer space from its neighbors. Paired with an
//! ECN-based congestion controller (DCTCP), this absorbs short incast
//! bursts nearly losslessly.
//!
//! This crate wires the substrates together into a runnable simulator:
//!
//! * [`Simulation`] — the event loop: topology, switches, host NICs,
//!   transports, workloads, metrics.
//! * [`SimConfig`] — Table 1/2 of the paper as data, with presets for
//!   DCTCP-baseline, DCTCP+DIBS, and pFabric.
//! * [`presets`] — the §5.2/§5.3 experiment setups used by every figure.
//!
//! ## Quick start
//!
//! ```
//! use dibs::presets::{testbed_incast_sim};
//! use dibs::SimConfig;
//!
//! // The §5.2 incast: 5 senders x 10 flows x 32 KB into one receiver.
//! let mut results = testbed_incast_sim(SimConfig::dctcp_dibs(), 5, 10, 32_000).run();
//! assert_eq!(results.counters.total_drops(), 0, "DIBS is near-lossless");
//! let qct = results.qct_ms.percentile(1.0).unwrap();
//! assert!(qct < 60.0);
//! ```

pub mod audit;
pub mod config;
pub mod presets;
pub mod results;
pub mod rundesc;
pub mod sim;

pub use config::{EcmpMode, PfcConfig, SimConfig, SwitchArch};
pub use results::{FlowOutcome, PacketPath, QueryOutcome, RunDigest, RunResults};
pub use rundesc::RunDescriptor;
pub use sim::Simulation;

// Re-exported so downstream binaries can configure tracing without
// depending on `dibs-trace` directly.
pub use dibs_trace::{TraceReport, TraceSpec, Tracer};

// Re-exported so downstream binaries can install fault schedules without
// depending on `dibs-fault` directly.
pub use dibs_fault::{FaultError, FaultPlan, FaultSpec};
