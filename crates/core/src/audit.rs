//! Runtime invariant auditor for the packet data path.
//!
//! The simulator's results are only as trustworthy as its bookkeeping:
//! every packet that a host injects must end up in exactly one of the
//! terminal or transient states the counters describe. This module
//! keeps an O(1) ledger of the transient states and, in debug builds
//! (which includes every `cargo test` run), asserts the conservation
//! law
//!
//! ```text
//! sent == delivered + dropped + in_nic + in_ingress + in_buffer + in_events
//! ```
//!
//! where `in_events` counts the packets currently riding inside
//! scheduled `TxComplete`/`Arrive`/`ForwardDone` events (serialization
//! and propagation delays), and the other transient buckets are read
//! directly from the NIC, CIOQ ingress, and switch buffer state.
//!
//! The check runs every [`CHECK_INTERVAL`] dispatches and once at
//! finalization, so a violation is caught within a bounded window of
//! the event that caused it without making debug runs quadratic. In
//! release builds the ledger degenerates to one `u64` increment per
//! packet event and no checks.

/// How many event dispatches pass between conservation checks.
pub const CHECK_INTERVAL: u64 = 4096;

/// O(1) bookkeeping for the conservation audit.
#[derive(Debug, Default, Clone)]
pub struct AuditLedger {
    /// Packets currently inside scheduled packet-carrying events.
    in_events: u64,
    /// Dispatches since the last conservation check.
    since_check: u64,
}

/// A snapshot of every bucket the conservation law mentions.
///
/// Built by the simulation immediately before a check; all fields are
/// packet counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerSnapshot {
    /// Packets injected by hosts (`packets_sent`).
    pub sent: u64,
    /// Packets handed to a destination host (`packets_delivered`).
    pub delivered: u64,
    /// All drops: TTL, buffer, displacement, host NIC.
    pub dropped: u64,
    /// Packets waiting in host NIC queues.
    pub in_nic: u64,
    /// Packets waiting in CIOQ ingress queues.
    pub in_ingress: u64,
    /// Packets resident in switch egress buffers.
    pub in_buffer: u64,
    /// Packets riding inside scheduled events (wire + serialization).
    pub in_events: u64,
}

impl AuditLedger {
    /// A fresh ledger with nothing in flight.
    pub fn new() -> Self {
        Self::default()
    }

    /// A packet-carrying event was scheduled.
    #[inline]
    pub fn packet_event_scheduled(&mut self) {
        self.in_events += 1;
    }

    /// A packet-carrying event was dispatched; its packet moved on to a
    /// queue, a buffer, delivery, or a drop.
    #[inline]
    pub fn packet_event_dispatched(&mut self) {
        debug_assert!(
            self.in_events > 0,
            "packet event dispatched but none pending"
        );
        self.in_events = self.in_events.saturating_sub(1);
    }

    /// Packets currently inside scheduled events.
    #[inline]
    pub fn in_events(&self) -> u64 {
        self.in_events
    }

    /// Called once per dispatched event; returns `true` when the (debug
    /// build) conservation check is due. Always `false` in release
    /// builds so callers skip the snapshot work entirely.
    #[inline]
    pub fn tick(&mut self) -> bool {
        if !cfg!(debug_assertions) {
            return false;
        }
        self.since_check += 1;
        if self.since_check >= CHECK_INTERVAL {
            self.since_check = 0;
            true
        } else {
            false
        }
    }

    /// Assert the conservation law over `snap` (debug builds only).
    ///
    /// # Panics
    ///
    /// Panics in debug builds when packets have leaked or been double
    /// counted.
    pub fn check(snap: &LedgerSnapshot) {
        let accounted = snap.delivered
            + snap.dropped
            + snap.in_nic
            + snap.in_ingress
            + snap.in_buffer
            + snap.in_events;
        debug_assert!(
            snap.sent == accounted,
            "packet conservation violated: sent={} but accounted={} ({snap:?})",
            snap.sent,
            accounted,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_tracks_events() {
        let mut l = AuditLedger::new();
        l.packet_event_scheduled();
        l.packet_event_scheduled();
        assert_eq!(l.in_events(), 2);
        l.packet_event_dispatched();
        assert_eq!(l.in_events(), 1);
    }

    #[test]
    fn balanced_snapshot_passes() {
        AuditLedger::check(&LedgerSnapshot {
            sent: 10,
            delivered: 4,
            dropped: 2,
            in_nic: 1,
            in_ingress: 0,
            in_buffer: 2,
            in_events: 1,
        });
    }

    #[test]
    #[should_panic(expected = "packet conservation violated")]
    fn leaked_packet_panics() {
        AuditLedger::check(&LedgerSnapshot {
            sent: 10,
            delivered: 4,
            dropped: 2,
            in_nic: 1,
            in_ingress: 0,
            in_buffer: 2,
            in_events: 0,
        });
    }

    #[test]
    fn tick_fires_on_interval() {
        let mut l = AuditLedger::new();
        let mut fired = 0;
        for _ in 0..(2 * CHECK_INTERVAL) {
            if l.tick() {
                fired += 1;
            }
        }
        assert_eq!(fired, 2);
    }
}
