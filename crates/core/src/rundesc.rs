//! Run descriptors: the stable identity of one simulation run in a sweep.
//!
//! Parallel sweeps stay reproducible only if each run's randomness is a
//! pure function of *what the run is* — never of which worker thread
//! executed it or in what order runs completed. A [`RunDescriptor`] names a
//! run as `(scenario × variant × parameter-point × replicate)` and converts
//! that name into a seed by hashing it against the sweep's master seed with
//! [`dibs_engine::rng::derive_stream_seed`].
//!
//! Two seed derivations are provided:
//!
//! * [`RunDescriptor::seed`] hashes every field, so distinct runs get
//!   uncorrelated RNG streams.
//! * [`RunDescriptor::paired_seed`] hashes everything **except** the
//!   variant. The paper's comparisons (DCTCP vs DCTCP+DIBS at the same
//!   sweep point) are paired experiments: both arms must observe the
//!   identical workload, so their seeds must agree.

use dibs_engine::rng::{derive_stream_seed, hash_bytes, SimRng};

/// The identity of one simulation run inside a sweep.
///
/// Descriptors are plain data: cheap to clone, ordered, and independent of
/// any execution context. The sweep executor (`dibs-harness`) carries them
/// through the thread pool untouched; seeds are derived from the descriptor
/// alone.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RunDescriptor {
    /// Sweep family, e.g. `"fig12_buffer_size"` or `"incast_degree"`.
    pub scenario: String,
    /// Configuration arm, e.g. `"dctcp"`, `"dibs"`, `"pfabric"`.
    pub variant: String,
    /// The swept parameter value, encoded as an integer (buffer packets,
    /// TTL hops, queries/sec, incast degree, ...).
    pub point: u64,
    /// Replicate index when a point is run with several seeds.
    pub replicate: u64,
}

impl RunDescriptor {
    /// Describe a run. `point` is the swept parameter encoded as an
    /// integer; use `0` for single-point scenarios.
    pub fn new(
        scenario: impl Into<String>,
        variant: impl Into<String>,
        point: u64,
        replicate: u64,
    ) -> Self {
        RunDescriptor {
            scenario: scenario.into(),
            variant: variant.into(),
            point,
            replicate,
        }
    }

    /// The descriptor as hash words, ready for
    /// [`derive_stream_seed`]. Strings are collapsed with
    /// [`hash_bytes`] so the word count is fixed.
    pub fn words(&self) -> [u64; 4] {
        [
            hash_bytes(self.scenario.as_bytes()),
            hash_bytes(self.variant.as_bytes()),
            self.point,
            self.replicate,
        ]
    }

    /// The run's seed under `master`: a pure function of the descriptor,
    /// distinct for every distinct descriptor.
    pub fn seed(&self, master: u64) -> u64 {
        derive_stream_seed(master, &self.words())
    }

    /// The seed shared by every variant at this `(scenario, point,
    /// replicate)`. Paired comparisons (baseline vs DIBS on the *same*
    /// traffic) must use this so both arms generate identical workloads.
    pub fn paired_seed(&self, master: u64) -> u64 {
        derive_stream_seed(
            master,
            &[
                hash_bytes(self.scenario.as_bytes()),
                self.point,
                self.replicate,
            ],
        )
    }

    /// A fresh RNG for this run under `master` (convenience over
    /// [`seed`](Self::seed)).
    pub fn rng(&self, master: u64) -> SimRng {
        SimRng::new(self.seed(master))
    }

    /// Human-readable run label for logs and progress output.
    pub fn label(&self) -> String {
        format!(
            "{}/{} point={} rep={}",
            self.scenario, self.variant, self.point, self.replicate
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_is_a_pure_function_of_the_descriptor() {
        let d = RunDescriptor::new("fig12", "dibs", 100, 0);
        assert_eq!(d.seed(42), d.clone().seed(42));
        assert_eq!(
            d.seed(42),
            RunDescriptor::new("fig12", "dibs", 100, 0).seed(42)
        );
    }

    #[test]
    fn every_field_perturbs_the_seed() {
        let base = RunDescriptor::new("fig12", "dibs", 100, 0);
        let master = 7;
        for other in [
            RunDescriptor::new("fig13", "dibs", 100, 0),
            RunDescriptor::new("fig12", "dctcp", 100, 0),
            RunDescriptor::new("fig12", "dibs", 101, 0),
            RunDescriptor::new("fig12", "dibs", 100, 1),
        ] {
            assert_ne!(base.seed(master), other.seed(master), "{}", other.label());
        }
        assert_ne!(base.seed(7), base.seed(8), "master seed must matter");
    }

    #[test]
    fn paired_seed_ignores_variant_only() {
        let a = RunDescriptor::new("fig12", "dctcp", 100, 0);
        let b = RunDescriptor::new("fig12", "dibs", 100, 0);
        assert_eq!(a.paired_seed(42), b.paired_seed(42));
        assert_ne!(a.seed(42), b.seed(42));

        let c = RunDescriptor::new("fig12", "dibs", 200, 0);
        let d = RunDescriptor::new("fig12", "dibs", 100, 3);
        assert_ne!(a.paired_seed(42), c.paired_seed(42));
        assert_ne!(a.paired_seed(42), d.paired_seed(42));
    }

    #[test]
    fn rng_matches_seed_derivation() {
        let d = RunDescriptor::new("fig09", "dibs", 300, 2);
        let mut from_rng = d.rng(99);
        let mut direct = SimRng::new(d.seed(99));
        for _ in 0..8 {
            assert_eq!(from_rng.next_u64(), direct.next_u64());
        }
    }
}
