#!/usr/bin/env bash
# Pre-PR gate: run everything CI would, in the order that fails fastest.
#
#   scripts/check.sh          # the whole gate
#   scripts/check.sh --quick  # skip the test suite (format/lint only)
#
# Every command is hermetic: no network, no external toolchain beyond the
# pinned rustc. A clean exit here is the bar for opening a PR.

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> dibs-lint (simulation-safety static analysis)"
cargo run -q -p dibs-lint --offline -- crates

if [[ $quick -eq 0 ]]; then
    echo "==> cargo test --workspace"
    cargo test --workspace --offline -q
fi

echo "==> all checks passed"
