#!/usr/bin/env bash
# Pre-PR gate: run everything CI would, in the order that fails fastest.
#
#   scripts/check.sh          # the whole gate, fast test tier (~15 s)
#   scripts/check.sh --quick  # skip the test suite (format/lint only)
#   scripts/check.sh --full   # include tier-2 tests (#[ignore]d slow
#                             # sweeps; minutes, not seconds)
#
# Every command is hermetic: no network, no external toolchain beyond the
# pinned rustc. A clean exit here is the bar for opening a PR; --full is
# the bar for changes that touch simulation semantics.

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
full=0
case "${1:-}" in
--quick) quick=1 ;;
--full) full=1 ;;
esac

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> dibs-lint (simulation-safety static analysis)"
cargo run -q -p dibs-lint --offline -- crates

if [[ $quick -eq 0 ]]; then
    if [[ $full -eq 1 ]]; then
        echo "==> cargo test --workspace (full: tier-1 + tier-2)"
        cargo test --workspace --offline -q -- --include-ignored
        echo "==> perf_hotpath --smoke (hot-path bench suite, CI-sized)"
        cargo run -q -p dibs-bench --release --offline --bin perf_hotpath -- --smoke
        echo "==> simtest --smoke (64-seed fault-injection soak)"
        cargo run -q -p dibs-harness --release --offline --bin simtest -- --smoke
        echo "==> trace smoke (traced incast: valid Chrome JSON, digest unchanged)"
        tmp=$(mktemp -d)
        trap 'rm -rf "$tmp"' EXIT
        cargo run -q -p dibs-cli --release --offline --bin dibs-sim -- \
            --digest scenarios/incast.json | grep '^digest' >"$tmp/untraced"
        cargo run -q -p dibs-cli --release --offline --bin dibs-sim -- \
            --digest --trace all scenarios/incast.json | grep '^digest' >"$tmp/traced"
        if ! diff -u "$tmp/untraced" "$tmp/traced"; then
            echo "FAIL: tracing perturbed the run digest" >&2
            exit 1
        fi
        # dibs-sim only writes the file after its Chrome JSON re-parses
        # through dibs-json, so existence means the exporter validated it;
        # when python3 is around, cross-check with an independent parser.
        chrome=results/trace_incast_dctcpdibs.json
        if [[ ! -f "$chrome" ]]; then
            echo "FAIL: traced run did not export $chrome" >&2
            exit 1
        fi
        if command -v python3 >/dev/null; then
            python3 -m json.tool "$chrome" >/dev/null
        fi
        echo "    digest identical traced vs untraced; Chrome JSON valid"
    else
        echo "==> cargo test --workspace (fast tier; --full adds tier-2)"
        cargo test --workspace --offline -q
    fi
fi

echo "==> all checks passed"
