//! Trace a single detoured packet through the fabric (Figure 1).
//!
//! Runs one 100-way incast on the K=8 fat-tree with path tracing enabled,
//! then prints the full hop-by-hop journey of the most-detoured packet —
//! the reproduction of the paper's Figure 1 walkthrough.
//!
//! ```text
//! cargo run --release --example detour_trace
//! ```

use dibs::presets::single_incast_sim;
use dibs::SimConfig;
use dibs_net::builders::{fat_tree, FatTreeParams};

fn main() {
    let mut cfg = SimConfig::dctcp_dibs();
    cfg.trace_paths = true;
    cfg.seed = 12;
    let results = single_incast_sim(FatTreeParams::paper_default(), cfg, 100, 20_000).run();
    let topo = fat_tree(FatTreeParams::paper_default());

    println!(
        "incast degree 100, 20 KB responses: {} packets detoured at least once, {} detour events, {} drops\n",
        results.counters.delivered_detoured,
        results.counters.detours,
        results.counters.total_drops()
    );

    let Some(path) = results.paths.iter().max_by_key(|p| p.detours) else {
        println!("no detoured packet captured");
        return;
    };
    println!(
        "most-detoured packet: {} detours over {} hops",
        path.detours,
        path.nodes.len() - 1
    );
    for (i, (node, det)) in path.nodes.iter().zip(&path.detour).enumerate() {
        println!(
            "  {:>3}  {}{}",
            i,
            topo.node(*node).name,
            if *det {
                "   <- detoured onto this hop"
            } else {
                ""
            }
        );
    }

    // Detour depth distribution, as discussed in §5.4.4.
    println!("\ndetour-count distribution over all delivered packets:");
    let total: u64 = results.detour_histogram.iter().sum();
    for (k, &count) in results.detour_histogram.iter().enumerate() {
        if count > 0 && k > 0 {
            println!(
                "  {:>3} detours: {:>9} packets ({:.3}%)",
                k,
                count,
                100.0 * count as f64 / total as f64
            );
        }
    }
}
