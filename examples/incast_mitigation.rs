//! Incast mitigation on the paper's K=8 fat-tree (128 hosts).
//!
//! Drives the §5.3 mixed workload — partition-aggregate queries over a
//! light background — and compares DCTCP with and without DIBS on the
//! metrics the paper reports: 99th-percentile query completion time and
//! 99th-percentile short-background-flow completion time.
//!
//! ```text
//! cargo run --release --example incast_mitigation
//! ```

use dibs::presets::{mixed_workload_sim, MixedWorkload};
use dibs::SimConfig;
use dibs_engine::time::SimDuration;
use dibs_net::builders::FatTreeParams;

fn main() {
    let workload = MixedWorkload {
        qps: 1000.0,
        incast_degree: 40,
        response_bytes: 20_000,
        bg_interarrival: SimDuration::from_millis(120),
        duration: SimDuration::from_millis(300),
        drain: SimDuration::from_millis(500),
    };
    println!(
        "K=8 fat-tree, {} qps, incast degree {}, {} KB responses\n",
        workload.qps,
        workload.incast_degree,
        workload.response_bytes / 1000
    );

    let tree = FatTreeParams::paper_default();
    println!(
        "{:<16} {:>14} {:>16} {:>8} {:>10} {:>12}",
        "scheme", "QCT p99 (ms)", "BG FCT p99 (ms)", "drops", "detours", "pkts detoured"
    );
    for (name, cfg) in [
        ("DCTCP", SimConfig::dctcp_baseline()),
        ("DCTCP + DIBS", SimConfig::dctcp_dibs()),
    ] {
        let mut r = mixed_workload_sim(tree, cfg, workload).run();
        println!(
            "{:<16} {:>14.2} {:>16.2} {:>8} {:>10} {:>11.1}%",
            name,
            r.qct_p99_ms().unwrap_or(f64::NAN),
            r.bg_fct_p99_ms().unwrap_or(f64::NAN),
            r.counters.total_drops(),
            r.counters.detours,
            100.0 * r.counters.detoured_fraction(),
        );
    }
    println!(
        "\nThe queries (incasts) overflow the destination's edge-switch port under\n\
         plain DCTCP; DIBS detours the overflow to neighboring switches instead,\n\
         eliminating the losses that put queries into 10 ms retransmission timeouts."
    );
}
