//! DIBS beyond the fat-tree (§7 "Network topology and detouring").
//!
//! The paper argues topologies with more neighbors and path diversity suit
//! detouring well, naming Jellyfish and HyperX. This example builds both,
//! plus the degenerate linear topology from footnote 10, drives the same
//! incast through each, and reports how DIBS fares.
//!
//! ```text
//! cargo run --release --example custom_topology
//! ```

use dibs::{SimConfig, Simulation};
use dibs_engine::rng::SimRng;
use dibs_engine::time::SimTime;
use dibs_net::builders::{
    fat_tree, hyperx, jellyfish, linear, FatTreeParams, HyperXParams, JellyfishParams,
};
use dibs_net::ids::HostId;
use dibs_net::topology::{LinkSpec, Topology};
use dibs_workload::QuerySpec;

fn run_incast(topo: Topology, cfg: SimConfig, degree: usize) -> (f64, u64, u64) {
    let hosts = topo.num_hosts();
    let mut cfg = cfg;
    cfg.horizon = SimTime::from_secs(5);
    let mut sim = Simulation::new(topo, cfg);
    let target = HostId(0);
    let responders: Vec<HostId> = (1..=degree.min(hosts - 1))
        .map(HostId::from_index)
        .collect();
    sim.add_queries(&[QuerySpec {
        start: SimTime::ZERO,
        target,
        responders,
        response_bytes: 50_000,
    }]);
    let mut r = sim.run();
    (
        r.qct_ms.percentile(1.0).unwrap_or(f64::NAN),
        r.counters.total_drops(),
        r.counters.detours,
    )
}

fn main() {
    let gbit = LinkSpec::gbit(1);
    let mut rng = SimRng::new(7);

    let topologies: Vec<(&str, Topology)> = vec![
        (
            "fat-tree K=4",
            fat_tree(FatTreeParams {
                k: 4,
                ..FatTreeParams::paper_default()
            }),
        ),
        (
            "jellyfish 15x4",
            jellyfish(
                JellyfishParams {
                    switches: 15,
                    degree: 4,
                    hosts_per_switch: 2,
                    host_link: gbit,
                    fabric_link: gbit,
                },
                &mut rng,
            ),
        ),
        (
            "hyperx 3x3",
            hyperx(HyperXParams {
                shape: &[3, 3],
                hosts_per_switch: 2,
                host_link: gbit,
                fabric_link: gbit,
            }),
        ),
        ("linear chain x6", linear(6, 3, gbit)),
    ];

    println!("30-way incast of 50 KB responses into host 0\n");
    println!(
        "{:<16} {:>7} {:>7}   {:>12} {:>7} {:>9}   {:>12} {:>7} {:>9}",
        "topology",
        "hosts",
        "switch",
        "QCT(ms) base",
        "drops",
        "detours",
        "QCT(ms) dibs",
        "drops",
        "detours"
    );
    for (name, topo) in topologies {
        let (hosts, switches) = (topo.num_hosts(), topo.num_switches());
        let (qb, db, _) = run_incast(topo.clone(), SimConfig::dctcp_baseline(), 30);
        let (qd, dd, det) = run_incast(topo, SimConfig::dctcp_dibs(), 30);
        println!(
            "{name:<16} {hosts:>7} {switches:>7}   {qb:>12.2} {db:>7} {:>9}   {qd:>12.2} {dd:>7} {det:>9}",
            0
        );
    }
    println!(
        "\nDIBS eliminates drops on every topology; richer neighborhoods (HyperX,\n\
         Jellyfish) give it more places to park overflow, while even the linear\n\
         chain works by bouncing packets back along the reverse path."
    );
}
