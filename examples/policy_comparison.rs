//! Comparing detour policies (§7 "Other detouring policies").
//!
//! The paper's default policy is parameterless random detouring; §7
//! sketches load-aware, flow-based, and probabilistic variants. This
//! example runs the same incast-heavy workload under each policy.
//!
//! ```text
//! cargo run --release --example policy_comparison
//! ```

use dibs::presets::{mixed_workload_sim, MixedWorkload};
use dibs::SimConfig;
use dibs_engine::time::SimDuration;
use dibs_net::builders::FatTreeParams;
use dibs_switch::DibsPolicy;

fn main() {
    let workload = MixedWorkload {
        qps: 1500.0,
        duration: SimDuration::from_millis(300),
        drain: SimDuration::from_millis(500),
        ..MixedWorkload::paper_default()
    };
    let tree = FatTreeParams::paper_default();

    let policies: [(&str, DibsPolicy); 5] = [
        ("none (droptail)", DibsPolicy::Disabled),
        ("random", DibsPolicy::Random),
        ("load-aware", DibsPolicy::LoadAware),
        ("flow-based", DibsPolicy::FlowBased),
        ("probabilistic", DibsPolicy::Probabilistic { onset: 0.85 }),
    ];

    println!(
        "{:<18} {:>14} {:>16} {:>8} {:>10}",
        "policy", "QCT p99 (ms)", "BG FCT p99 (ms)", "drops", "detours"
    );
    for (name, policy) in policies {
        let cfg = SimConfig::dctcp_dibs().with_policy(policy);
        let mut r = mixed_workload_sim(tree, cfg, workload).run();
        println!(
            "{:<18} {:>14.2} {:>16.2} {:>8} {:>10}",
            name,
            r.qct_p99_ms().unwrap_or(f64::NAN),
            r.bg_fct_p99_ms().unwrap_or(f64::NAN),
            r.counters.total_drops(),
            r.counters.detours,
        );
    }
    println!(
        "\nAll detouring variants eliminate drops; random needs no tuning, which is\n\
         why the paper adopts it. Load-aware detouring spreads overflow toward the\n\
         emptiest neighbor; probabilistic detouring starts before queues fill."
    );
}
