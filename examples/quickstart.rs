//! Quickstart: reproduce the paper's core claim in ~30 lines.
//!
//! Runs the §5.2 incast (five servers each send ten simultaneous 32 KB
//! flows to a sixth server) under three switch configurations and prints
//! query completion time and loss counts.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dibs::presets::testbed_incast_sim;
use dibs::SimConfig;
use dibs_switch::BufferConfig;

fn main() {
    let mut infinite = SimConfig::dctcp_baseline();
    infinite.switch.buffer = BufferConfig::Infinite;

    let configs = [
        ("infinite buffers ", infinite),
        ("droptail (100pkt) ", SimConfig::dctcp_baseline()),
        ("DIBS     (100pkt) ", SimConfig::dctcp_dibs()),
    ];

    println!("incast: 5 senders x 10 flows x 32 KB -> one receiver\n");
    println!(
        "{:<20} {:>10} {:>8} {:>9} {:>9}",
        "configuration", "QCT (ms)", "drops", "detours", "timeouts"
    );
    for (name, cfg) in configs {
        let mut results = testbed_incast_sim(cfg, 5, 10, 32_000).run();
        println!(
            "{:<20} {:>10.2} {:>8} {:>9} {:>9}",
            name,
            results.qct_ms.percentile(1.0).unwrap(),
            results.counters.total_drops(),
            results.counters.detours,
            results.counters.rto_timeouts,
        );
    }
    println!(
        "\nDIBS absorbs the burst by borrowing neighbors' buffers: \
         no losses, no timeouts,\nand a completion time that matches \
         infinitely deep buffers."
    );
}
